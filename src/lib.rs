//! **laminar** — a Rust reproduction of *Laminar 2.0: Serverless Stream
//! Processing with Enhanced Code Search and Recommendations* (SC 2024).
//!
//! This facade crate re-exports the whole workspace; see the README for the
//! architecture map and DESIGN.md for the reproduction methodology.
//!
//! ```
//! use laminar::core::{Laminar, LaminarConfig};
//!
//! let laminar = Laminar::deploy(LaminarConfig::default());
//! let mut client = laminar.client();
//! client.register("quickstart", "pw").unwrap();
//! let reg = client
//!     .register_workflow("isprime_wf", laminar::core::ISPRIME_WORKFLOW_SOURCE)
//!     .unwrap();
//! assert!(client.run(reg.workflow.1, 5).unwrap().ok);
//! ```

/// The Laminar 2.0 facade (deployment, configuration).
pub use laminar_core as core;

/// Client library + CLI (paper Table I, Fig. 5).
pub use laminar_client as client;

/// Server: controllers, services, search indexes, resource cache.
pub use laminar_server as server;

/// Relational registry (paper Fig. 6 / Table II).
pub use laminar_registry as registry;

/// Serverless execution engine: containers, auto-imports, streaming.
pub use laminar_execengine as execengine;

/// dispel4py-style stream dataflow engine.
pub use d4py;

/// Python-subset parser (ANTLR substitute).
pub use pyparse;

/// Simplified parse trees + Aroma features.
pub use spt;

/// Aroma structural search & recommendation.
pub use aroma;

/// Model substitutes (CodeT5 / UniXcoder / ReACC).
pub use embed;

/// Synthetic CodeSearchNet-PE dataset + retrieval metrics.
pub use csn;
