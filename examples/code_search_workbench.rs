//! Code-search workbench: populate a registry from the synthetic
//! CodeSearchNet-PE corpus and compare the three search modalities —
//! literal, semantic (text-to-code) and structural (code-to-code) — plus
//! the Aroma-vs-ReACC contrast on *partial* snippets that motivates the
//! paper's §VI.
//!
//! ```text
//! cargo run --example code_search_workbench --release
//! ```

use laminar::core::{EmbeddingType, Laminar, LaminarConfig, SearchScope};
use laminar::csn::{Dataset, DatasetConfig};

fn main() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("workbench", "pw").expect("register");

    // Populate the registry with 10 families × 6 variants.
    let corpus = Dataset::generate(DatasetConfig {
        families: 10,
        variants_per_family: 6,
        seed: 7,
        ..DatasetConfig::default()
    });
    for e in &corpus.entries {
        client
            .register_pe(&e.name, &e.code, None)
            .expect("register PE");
    }
    println!("registered {} PEs from {} families\n", corpus.len(), 10);

    // 1. Literal search (Fig. 7).
    let (pes, _) = client
        .search_registry_literal(SearchScope::Pe, "average")
        .expect("literal");
    println!(
        "literal_search pe average → {} hits (name/description term match)",
        pes.len()
    );

    // 2. Semantic search (Fig. 8): a paraphrase, not a literal term.
    let hits = client
        .search_registry_semantic(SearchScope::Pe, "calculate the mean of some values")
        .expect("semantic");
    println!("\nsemantic_search pe \"calculate the mean of some values\"");
    for h in hits.iter().take(3) {
        println!("  {:<22} cosine {:.4}", h.name, h.cosine_similarity);
    }

    // 3. Structural recommendation from a *partial* snippet (§VI): the
    //    developer has typed the beginning of an accumulator loop.
    let partial = "def _process(self, data):\n    total = 0\n    for item in data:";
    println!("\ncode_recommendation pe <partial accumulator loop>");
    let spt_hits = client
        .code_recommendation(SearchScope::Pe, partial, EmbeddingType::Spt)
        .expect("spt reco");
    println!("  --embedding_type spt (Aroma, 2.0 default):");
    for h in spt_hits.iter().take(3) {
        println!("    {:<22} score {:>5.1}", h.name, h.score);
    }
    let llm_hits = client
        .code_recommendation(SearchScope::Pe, partial, EmbeddingType::Llm)
        .expect("llm reco");
    println!("  --embedding_type llm (ReACC, 1.0 behaviour):");
    if llm_hits.is_empty() {
        println!("    (no hits above threshold — exact-token matching collapses on partial code)");
    }
    for h in llm_hits.iter().take(3) {
        println!("    {:<22} score {:>5.3}", h.name, h.score);
    }

    // The paper's point, in one assertion: structural search keeps finding
    // the accumulator family from the fragment.
    assert!(
        spt_hits.iter().any(|h| h.name.starts_with("SumList")
            || h.name.starts_with("AverageList")
            || h.name.starts_with("ProductList")
            || h.name.starts_with("CountEvens")),
        "{spt_hits:?}"
    );
    println!("\nAroma-style SPT search recommends completed PEs from the incomplete fragment ✓");
}
