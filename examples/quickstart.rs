//! Quickstart: deploy Laminar 2.0, register the paper's `isprime_wf`
//! (Fig. 5), search the registry, get a code recommendation, and run the
//! workflow with all three mappings.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use laminar::core::{EmbeddingType, Laminar, LaminarConfig, SearchScope, ISPRIME_WORKFLOW_SOURCE};

fn main() {
    // 1. Deploy the full serverless stack (registry + server + engine).
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client
        .register("quickstart", "secret")
        .expect("register user");

    // 2. Register the workflow file: the client finds the PEs (Fig. 5a).
    let reg = client
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .expect("register workflow");
    println!("Found PEs...");
    for (name, id) in &reg.pes {
        println!("• {name} - type (ID {id})");
    }
    println!("Found workflows...");
    println!("• {} - Workflow (ID {})\n", reg.workflow.0, reg.workflow.1);

    // 3. Semantic text-to-code search (Fig. 8).
    let hits = client
        .search_registry_semantic(
            SearchScope::Pe,
            "a pe that checks whether numbers are prime",
        )
        .expect("semantic search");
    println!("semantic_search pe \"a pe that checks whether numbers are prime\"");
    for h in &hits {
        println!("  {:>3}  {:<16} {:.6}", h.id, h.name, h.cosine_similarity);
    }
    println!();

    // 4. Structural code recommendation from a partial snippet (Fig. 9).
    let recos = client
        .code_recommendation(
            SearchScope::Pe,
            "random.randint(1, 1000)",
            EmbeddingType::Spt,
        )
        .expect("code recommendation");
    println!("code_recommendation pe \"random.randint(1, 1000)\"");
    for r in &recos {
        println!(
            "  {:>3}  {:<16} score {:.1}  {}",
            r.id, r.name, r.score, r.similar_code
        );
    }
    println!();

    // 5. Run: sequential, static-parallel (Fig. 5b), and dynamic — note
    //    the Listing-3 one-liner for the dynamic case.
    let seq = client.run(reg.workflow.1, 10).expect("sequential run");
    println!(
        "run {} -i 10          → {} primes",
        reg.workflow.1,
        seq.lines.len()
    );

    let par = client
        .run_multiprocess(reg.workflow.1, 10, 9)
        .expect("multiprocess run");
    println!(
        "run {} -i 10 --multi 9 → {} primes; rank summaries:",
        reg.workflow.1,
        par.lines.len()
    );
    for s in par.summaries.iter().take(4) {
        println!("  {s}");
    }

    let dynamic = client.run_dynamic(reg.workflow.1, 10).expect("dynamic run");
    println!(
        "run_dynamic(graph, input=10)   → {} primes (no broker parameters!)",
        dynamic.lines.len()
    );

    println!("\nSample output:");
    for line in seq.lines.iter().take(3) {
        println!("  {line}");
    }
}
