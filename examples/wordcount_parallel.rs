//! Direct d4py usage: author an abstract workflow in Rust — the word-count
//! pipeline with a `GroupBy` edge — and enact it with every mapping,
//! verifying the results agree (paper §II-A's mapping portability).
//!
//! ```text
//! cargo run --example wordcount_parallel
//! ```

use laminar::d4py::mapping::{run, DynamicConfig, Mapping, RunInput};
use laminar::d4py::prelude::*;
use std::collections::BTreeMap;

fn build() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("wordcount_wf");
    let sentences = [
        "laminar runs dispel4py stream workflows",
        "stream processing with laminar",
        "dispel4py maps workflows onto processes",
    ];
    let src = g.add(ProducerPE::new("Sentences", move |i| {
        Some(Data::from(sentences[(i as usize) % sentences.len()]))
    }));
    let split = g.add(GenericPE::new(
        "Splitter",
        PortSpec::iterative(),
        |input: Option<(String, Data)>, ctx: &mut Context<'_>| {
            if let Some((_, d)) = input {
                if let Some(s) = d.as_str() {
                    for w in s.split_whitespace() {
                        ctx.write(Data::record([("word", Data::from(w))]));
                    }
                }
            }
        },
    ));
    let count = g.add(StatefulPE::new(
        "Counter",
        BTreeMap::<String, i64>::new(),
        |state: &mut BTreeMap<String, i64>, d: Data, ctx: &mut Context<'_>| {
            if let Some(w) = d.get("word").and_then(Data::as_str) {
                let c = state.entry(w.to_string()).or_insert(0);
                *c += 1;
                ctx.write(Data::from(format!("{w} {c}")));
            }
        },
    ));
    let sink = g.add(ConsumerPE::new(
        "Print",
        |d: Data, ctx: &mut Context<'_>| {
            ctx.log(d.to_string());
        },
    ));
    g.connect(src, OUTPUT, split, INPUT).unwrap();
    // Equal words must reach the same counter rank — GroupBy does that.
    g.connect_grouped(
        split,
        OUTPUT,
        count,
        INPUT,
        Grouping::GroupBy("word".into()),
    )
    .unwrap();
    g.connect(count, OUTPUT, sink, INPUT).unwrap();
    g
}

/// Final count per word = maximum emitted count.
fn final_counts(lines: &[String]) -> BTreeMap<String, i64> {
    let mut m = BTreeMap::new();
    for l in lines {
        let mut parts = l.rsplitn(2, ' ');
        let n: i64 = parts.next().unwrap().parse().unwrap();
        let w = parts.next().unwrap().to_string();
        let e = m.entry(w).or_insert(0);
        *e = (*e).max(n);
    }
    m
}

fn main() {
    let mappings: Vec<(&str, Mapping)> = vec![
        ("simple", Mapping::Simple),
        ("multi(8)", Mapping::Multi { processes: 8 }),
        ("dynamic", Mapping::Dynamic(DynamicConfig::default())),
    ];
    let mut reference: Option<BTreeMap<String, i64>> = None;
    for (name, mapping) in mappings {
        let result = run(&build(), RunInput::Iterations(9), &mapping).expect("run");
        let counts = final_counts(result.lines());
        println!(
            "# {name} — {} output lines in {:?}",
            result.lines().len(),
            result.duration
        );
        for (w, c) in &counts {
            println!("  {w:<12} {c}");
        }
        if let Some(p) = &result.partition {
            let pretty: Vec<String> = p
                .iter()
                .map(|r| format!("{}..{}", r.start, r.end))
                .collect();
            println!("  rank partition: [{}]", pretty.join(", "));
        }
        match &reference {
            None => reference = Some(counts),
            Some(r) => assert_eq!(r, &counts, "{name} disagrees with the sequential reference"),
        }
        println!();
    }
    println!("all mappings agree on the final word counts ✓");
}
