//! Domain scenario: real-time anomaly detection over a sensor stream —
//! the workload behind the paper's Fig. 8 registry content.
//!
//! Shows the two §IV-E/§IV-F improvements in action:
//! * **true streaming**: alert lines are consumed as they are produced,
//!   not after the run completes;
//! * **resource negotiation**: a calibration file is staged once, cached by
//!   content hash, and never re-uploaded.
//!
//! ```text
//! cargo run --example anomaly_pipeline
//! ```

use laminar::core::{Laminar, LaminarConfig, SearchScope, ANOMALY_WORKFLOW_SOURCE};
use laminar::server::protocol::{Ident, RunInputWire, RunMode, WireFrame};

fn main() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("ops", "secret").expect("register");

    // Register the anomaly workflow; its runnable twin ships with the
    // engine's stock library as `anomaly_wf`.
    let reg = client
        .register_workflow("anomaly_wf", ANOMALY_WORKFLOW_SOURCE)
        .expect("register workflow");
    println!("registered {} with {} PEs", reg.workflow.0, reg.pes.len());

    // Fig. 8: find the anomaly detector by natural language.
    let hits = client
        .search_registry_semantic(SearchScope::Pe, "a pe that is able to detect anomalies")
        .expect("search");
    println!(
        "\nsemantic search → top hit: {} (cosine {:.4})",
        hits[0].name, hits[0].cosine_similarity
    );

    // Stage a calibration resource (uploaded once, then cache hits).
    client.stage_resource(
        "calibration.csv",
        b"sensor,offset\ns0,0.5\ns1,-0.25\n".to_vec(),
    );

    // Stream the run: consume alerts as they arrive (§IV-E).
    println!("\nstreaming run (alerts appear as they are detected):");
    let rx = client
        .run_stream(
            Ident::Name("anomaly_wf".into()),
            RunInputWire::Iterations(120),
            RunMode::Sequential,
            false,
        )
        .expect("streaming run");
    let mut alerts = 0usize;
    for frame in rx.iter() {
        match frame {
            WireFrame::Line(l) => {
                alerts += 1;
                if alerts <= 5 {
                    println!("  {l}");
                }
            }
            WireFrame::Info(i) => println!("  [engine] {i}"),
            WireFrame::End { ok, millis } => {
                println!("  [done] ok={ok} after {millis} ms");
                break;
            }
            _ => {}
        }
    }
    println!("total alerts: {alerts} of 120 readings");

    // Second run: the calibration file is already cached server-side.
    let out = client.run("anomaly_wf", 60).expect("second run");
    let stats = laminar.server().resources().stats();
    println!(
        "\nsecond run ok={}; resource bytes received by server so far: {} (uploaded once)",
        out.ok, stats.bytes_received
    );
    assert_eq!(stats.uploads, 1, "calibration.csv must not be re-uploaded");
}
