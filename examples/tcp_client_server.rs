//! Client and server as separate endpoints over TCP — the paper's
//! Dockerised client/server split (Fig. 4), minus Docker: length-prefixed
//! JSON frames on a loopback socket, with the §IV-E streaming semantics
//! preserved end-to-end (each output line is flushed as its own frame).
//!
//! ```text
//! cargo run --example tcp_client_server
//! ```

use laminar::client::LaminarClient;
use laminar::core::{Laminar, LaminarConfig, SearchScope, ISPRIME_WORKFLOW_SOURCE};
use laminar::server::NetServer;

fn main() {
    // Server side: deploy the stack and expose it on an ephemeral port.
    let laminar = Laminar::deploy(LaminarConfig::default());
    let net = NetServer::bind("127.0.0.1:0", laminar.server()).expect("bind");
    println!("server listening on {}", net.addr());

    // Client side: a *separate* endpoint that only knows the address.
    let mut client = LaminarClient::connect_tcp(net.addr());
    client
        .register("remote", "secret")
        .expect("register over TCP");

    let reg = client
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .expect("register workflow over TCP");
    println!(
        "registered {} PEs + workflow id {}",
        reg.pes.len(),
        reg.workflow.1
    );

    // Search and completion across the wire.
    let hits = client
        .search_registry_semantic(SearchScope::Pe, "checks whether a given number is prime")
        .expect("semantic search over TCP");
    println!(
        "top semantic hit: {} ({:.4})",
        hits[0].name, hits[0].cosine_similarity
    );

    let (source, lines, progress) = client
        .code_completion("class P(IterativePE):\n    def _process(self, num):\n        if all(num % i != 0 for i in range(2, num)):")
        .expect("completion over TCP");
    let (_, name) = source.expect("a completion source");
    println!("completion from {name} ({:.0}% typed):", progress * 100.0);
    for l in &lines {
        println!("  + {l}");
    }

    // A streamed parallel run: frames cross the socket as produced.
    let out = client
        .run_multiprocess(reg.workflow.1, 15, 9)
        .expect("run over TCP");
    println!(
        "\nparallel run over TCP: ok={} with {} primes",
        out.ok,
        out.lines.len()
    );
    for l in out.lines.iter().take(3) {
        println!("  {l}");
    }

    // The serving path keeps per-endpoint metrics; the `metrics` endpoint
    // (and the `laminar metrics` CLI verb) exposes the live snapshot.
    let snapshot = client.metrics().expect("metrics over TCP");
    println!("\n{}", snapshot.render());

    // Stop accepting and drain in-flight work before exiting.
    let drained = net.graceful_shutdown();
    println!("drained cleanly: {drained}");
}
