# Laminar 2.0 (Rust reproduction) — server / CLI image.
#
# The paper's §III "Dockerized architecture": the same image serves as the
# server container (default command) and as the client container
# (`laminar --connect server:7878`).

FROM rust:1.95-slim AS build
WORKDIR /src
COPY . .
RUN cargo build --release -p laminar-core --bins

FROM debian:stable-slim
COPY --from=build /src/target/release/laminar /usr/local/bin/laminar
COPY --from=build /src/target/release/laminar-server /usr/local/bin/laminar-server
EXPOSE 7878
CMD ["laminar-server", "0.0.0.0:7878"]
