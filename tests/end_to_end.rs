//! Cross-crate integration: full client → server → registry → engine →
//! d4py flows through the public facade.

use laminar::core::{EmbeddingType, Laminar, LaminarConfig, SearchScope, ISPRIME_WORKFLOW_SOURCE};
use laminar::server::protocol::{Ident, RunInputWire, RunMode, WireFrame};

fn deployed() -> (Laminar, laminar::client::LaminarClient) {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("it", "pw").unwrap();
    (laminar, client)
}

#[test]
fn figure5_full_transcript() {
    let (_laminar, client) = deployed();
    // 5a: register_workflow finds the three PEs.
    let reg = client
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .unwrap();
    assert_eq!(
        reg.pes.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        vec!["NumberProducer", "IsPrime", "PrintPrime"]
    );
    // 5b: run with multiprocessing, 9 processes, verbose.
    let out = client.run_multiprocess(reg.workflow.1, 10, 9).unwrap();
    assert!(out.ok);
    assert!(out
        .lines
        .iter()
        .all(|l| l.starts_with("the num {'input': ")));
    assert!(out
        .summaries
        .iter()
        .any(|s| s.starts_with("NumberProducer0 (rank 0): Processed 10 iterations")));
    // Sum of IsPrime rank iterations equals the produced items.
    let isprime_total: u64 = out
        .summaries
        .iter()
        .filter(|s| s.starts_with("IsPrime1"))
        .map(|s| {
            s.split("Processed ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    assert_eq!(isprime_total, 10);
}

#[test]
fn executions_recorded_per_run() {
    let (laminar, client) = deployed();
    let reg = client
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .unwrap();
    client.run(reg.workflow.1, 3).unwrap();
    client.run_dynamic(reg.workflow.1, 3).unwrap();
    let execs = laminar.server().registry().executions_for(reg.workflow.1);
    assert_eq!(execs.len(), 2);
    let mappings: Vec<&str> = execs.iter().map(|e| e.mapping.as_str()).collect();
    assert!(mappings.contains(&"simple"));
    assert!(mappings.contains(&"dynamic"));
    for e in &execs {
        let resps = laminar.server().registry().responses_for(e.id);
        assert_eq!(resps.len(), 1);
    }
}

#[test]
fn search_modalities_agree_on_obvious_target() {
    let (_laminar, client) = deployed();
    client
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .unwrap();
    // Literal.
    let (pes, _) = client
        .search_registry_literal(SearchScope::Pe, "prime")
        .unwrap();
    assert!(pes.iter().any(|p| p.name == "IsPrime"));
    // Semantic.
    let hits = client
        .search_registry_semantic(SearchScope::Pe, "checks whether a given number is prime")
        .unwrap();
    assert_eq!(hits[0].name, "IsPrime", "{hits:?}");
    // Structural (both embedding types must find the near-clone).
    let snippet = "if all(num % i != 0 for i in range(2, num)):\n    return num\n";
    let spt = client
        .code_recommendation(SearchScope::Pe, snippet, EmbeddingType::Spt)
        .unwrap();
    assert_eq!(spt[0].name, "IsPrime", "{spt:?}");
}

#[test]
fn streaming_frames_arrive_in_order_with_terminal_end() {
    let (_laminar, client) = deployed();
    client
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .unwrap();
    let rx = client
        .run_stream(
            Ident::Name("isprime_wf".into()),
            RunInputWire::Iterations(25),
            RunMode::Multiprocess { processes: 9 },
            true,
        )
        .unwrap();
    let mut saw_line = false;
    let mut ended = false;
    for frame in rx.iter() {
        assert!(!ended, "no frames after End");
        match frame {
            WireFrame::Line(l) => {
                saw_line = true;
                assert!(l.contains("is prime"));
            }
            WireFrame::End { ok, .. } => {
                assert!(ok);
                ended = true;
                break;
            }
            _ => {}
        }
    }
    assert!(saw_line);
    assert!(ended);
}

#[test]
fn multi_user_isolation_and_name_reuse() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut alice = laminar.client();
    alice.register("alice", "a").unwrap();
    let mut bob = laminar.client();
    bob.register("bob", "b").unwrap();
    // Same PE name under different users is allowed (per-user uniqueness).
    alice
        .register_pe(
            "Shared",
            "class Shared(IterativePE):\n    def _process(self, x):\n        return x\n",
            None,
        )
        .unwrap();
    bob.register_pe(
        "Shared",
        "class Shared(IterativePE):\n    def _process(self, y):\n        return y * 2\n",
        None,
    )
    .unwrap();
    let (pes, _) = alice.get_registry().unwrap();
    assert_eq!(pes.iter().filter(|p| p.name == "Shared").count(), 2);
}

#[test]
fn cli_session_against_deployed_stack() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut cli = laminar.cli();
    cli.client().register("cliuser", "pw").unwrap();
    let dir = std::env::temp_dir().join(format!("laminar-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("isprime_wf.py");
    std::fs::write(&path, ISPRIME_WORKFLOW_SOURCE).unwrap();

    let out = cli.execute(&format!("register_workflow {}", path.display()));
    assert!(out.contains("isprime_wf - Workflow"), "{out}");
    let out = cli.execute("run isprime_wf -i 10 --multi 9 -v");
    assert!(out.contains("is prime"), "{out}");
    assert!(out.contains("Processed"), "{out}");
    let out = cli.execute("semantic_search pe \"check whether numbers are prime\"");
    assert!(out.contains("IsPrime"), "{out}");
    let out = cli.execute("code_recommendation workflow \"random.randint(1, 1000)\"");
    assert!(out.contains("isprime_wf"), "{out}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn engine_pool_warm_after_first_run() {
    let (laminar, client) = deployed();
    client
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .unwrap();
    client.run("isprime_wf", 2).unwrap();
    client.run("isprime_wf", 2).unwrap();
    let stats = laminar.server().engine().pool().stats();
    assert!(stats.warm_hits >= 1, "{stats:?}");
}
