//! Cross-crate integration of the search pipeline: registration populates
//! embeddings (registry CLOBs + server indexes), and all three search
//! modalities answer consistently on a CSN corpus.

use laminar::core::{EmbeddingType, Laminar, LaminarConfig, SearchScope};
use laminar::csn::{Dataset, DatasetConfig};
use laminar::spt::FeatureVec;

fn corpus() -> Dataset {
    Dataset::generate(DatasetConfig {
        families: 8,
        variants_per_family: 4,
        seed: 11,
        ..DatasetConfig::default()
    })
}

#[test]
fn registration_persists_embeddings_in_registry() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("u", "p").unwrap();
    let e = &corpus().entries[0];
    let id = client.register_pe(&e.name, &e.code, None).unwrap();
    let row = laminar.server().registry().get_pe(id).unwrap();
    // Both embedding CLOBs present and decodable (Fig. 6's columns).
    assert!(!row.description_embedding.is_empty());
    assert!(!row.spt_embedding.is_empty());
    let spt_vec = FeatureVec::from_json(&row.spt_embedding).unwrap();
    assert!(spt_vec.len() > 10);
    let desc_vec: Vec<f32> = serde_json::from_str(&row.description_embedding).unwrap();
    assert_eq!(desc_vec.len(), 256);
    // Auto-generated description is non-trivial (§IV-C).
    assert!(row.description.len() > 10);
}

#[test]
fn semantic_search_finds_family_for_every_query() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("u", "p").unwrap();
    let corpus = corpus();
    for e in &corpus.entries {
        client.register_pe(&e.name, &e.code, None).unwrap();
    }
    // Each family's canonical description must retrieve ≥1 family member
    // in the top 5 for a large majority of families.
    let mut ok = 0;
    let total = corpus.family_keys.len();
    for fam in 0..total {
        let entry = corpus.entries.iter().find(|e| e.family == fam).unwrap();
        let hits = client
            .search_registry_semantic(SearchScope::Pe, &entry.description)
            .unwrap();
        let family_prefix = entry
            .name
            .trim_end_matches(|c: char| c.is_ascii_digit())
            .to_string();
        if hits.iter().any(|h| h.name.starts_with(&family_prefix)) {
            ok += 1;
        }
    }
    assert!(ok * 10 >= total * 8, "only {ok}/{total} families retrieved");
}

#[test]
fn structural_search_robust_to_partial_queries_unlike_llm() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("u", "p").unwrap();
    let corpus = corpus();
    for e in &corpus.entries {
        client.register_pe(&e.name, &e.code, None).unwrap();
    }
    // Query: half of a sum-family PE.
    let sum_entry = corpus
        .entries
        .iter()
        .find(|e| e.name.starts_with("SumList"))
        .unwrap();
    let partial = laminar::pyparse::drop_suffix_fraction(&sum_entry.code, 0.5);

    let spt_hits = client
        .code_recommendation(SearchScope::Pe, &partial, EmbeddingType::Spt)
        .unwrap();
    assert!(
        !spt_hits.is_empty(),
        "Aroma must recommend from partial code"
    );

    // The LLM path may return fewer/weaker hits — the documented 1.0
    // limitation. We only require that SPT is at least as productive.
    let llm_hits = client
        .code_recommendation(SearchScope::Pe, &partial, EmbeddingType::Llm)
        .unwrap();
    assert!(spt_hits.len() >= llm_hits.len());
}

#[test]
fn update_description_moves_search_results() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("u", "p").unwrap();
    let id = client
        .register_pe(
            "Opaque",
            "class Opaque(IterativePE):\n    def _process(self, q):\n        return q\n",
            None,
        )
        .unwrap();
    let before = client
        .search_registry_semantic(SearchScope::Pe, "quantum flux capacitor calibration")
        .unwrap();
    let top_before = before.first().map(|h| h.cosine_similarity).unwrap_or(0.0);
    client
        .update_pe_description(id, "quantum flux capacitor calibration for time travel")
        .unwrap();
    let after = client
        .search_registry_semantic(SearchScope::Pe, "quantum flux capacitor calibration")
        .unwrap();
    assert_eq!(after[0].id, id);
    assert!(after[0].cosine_similarity > top_before + 0.2, "{after:?}");
}

#[test]
fn remove_pe_removes_it_from_search() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("u", "p").unwrap();
    let id = client
        .register_pe(
            "Ephemeral",
            "class Ephemeral(IterativePE):\n    def _process(self, z):\n        return z\n",
            Some("an utterly ephemeral component"),
        )
        .unwrap();
    let hits = client
        .search_registry_semantic(SearchScope::Pe, "utterly ephemeral component")
        .unwrap();
    assert_eq!(hits[0].id, id);
    client.remove_pe(id).unwrap();
    let hits = client
        .search_registry_semantic(SearchScope::Pe, "utterly ephemeral component")
        .unwrap();
    assert!(hits.iter().all(|h| h.id != id));
}

#[test]
fn registry_snapshot_roundtrip_preserves_search_data() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();
    client.register("u", "p").unwrap();
    for e in corpus().entries.iter().take(6) {
        client.register_pe(&e.name, &e.code, None).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("laminar-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("registry.json");
    laminar.server().registry().save_to(&path).unwrap();
    let restored = laminar::registry::Registry::load_from(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.counts().0, 6);
    for pe in restored.all_pes() {
        assert!(FeatureVec::from_json(&pe.spt_embedding).is_ok());
    }
}
