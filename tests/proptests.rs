//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use laminar::csn::{precision_recall_at_k, Dataset, DatasetConfig};
use laminar::d4py::Data;
use laminar::pyparse;
use laminar::spt::{FeatureVec, Spt};
use proptest::prelude::*;
use std::collections::HashSet;

/// Case count for the property blocks below: the pinned default, or
/// `LAMINAR_PROPTEST_CASES` when set (raise for a deeper soak, lower for
/// a quick pass). Pin the RNG itself with proptest's own
/// `PROPTEST_RNG_SEED=<n>`; the committed `.proptest-regressions` seeds
/// are always re-run first either way.
fn cases(default: u32) -> u32 {
    std::env::var("LAMINAR_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------------------
// pyparse: total robustness — the parser must never panic, and its trees
// must always satisfy structural integrity.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let tree = pyparse::parse(&src);
        prop_assert!(tree.check_integrity().is_ok());
    }

    #[test]
    fn parser_never_panics_on_python_like_input(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("x = 1".to_string()),
                Just("def f(a, b):".to_string()),
                Just("    return a + b".to_string()),
                Just("class C(Base):".to_string()),
                Just("    pass".to_string()),
                Just("for i in range(10):".to_string()),
                Just("    total += i".to_string()),
                Just("if x > 0:".to_string()),
                Just("with open(p) as fh:".to_string()),
                Just("import os".to_string()),
                Just("".to_string()),
                Just("  ".to_string()),
                Just(")".to_string()),
                Just("'unterminated".to_string()),
            ],
            0..30,
        )
    ) {
        let src = lines.join("\n");
        let tree = pyparse::parse(&src);
        prop_assert!(tree.check_integrity().is_ok());
        // SPT construction must also be total.
        let spt = Spt::from_parse_tree(&tree);
        let _ = spt.feature_vec();
    }

    #[test]
    fn lexer_balances_indents(src in "[a-z =:\n\t()0-9]{0,200}") {
        let (toks, _) = pyparse::lex(&src);
        let indents = toks.iter().filter(|t| t.kind == pyparse::TokKind::Indent).count();
        let dedents = toks.iter().filter(|t| t.kind == pyparse::TokKind::Dedent).count();
        prop_assert_eq!(indents, dedents);
        prop_assert_eq!(toks.last().map(|t| t.kind), Some(pyparse::TokKind::Eof));
    }

    #[test]
    fn truncation_always_yields_parseable_prefix(frac in 0.0f64..1.0) {
        let src = "class A(IterativePE):\n    def _process(self, data):\n        total = 0\n        for item in data:\n            total += item\n        return total\n";
        let cut = pyparse::drop_suffix_fraction(src, frac);
        prop_assert!(!cut.is_empty());
        let tree = pyparse::parse(&cut);
        prop_assert!(tree.check_integrity().is_ok());
        prop_assert!(!tree.find_kind(pyparse::SyntaxKind::ClassDef).is_empty());
    }
}

// ---------------------------------------------------------------------------
// FeatureVec algebra
// ---------------------------------------------------------------------------

fn arb_feature_vec() -> impl Strategy<Value = FeatureVec> {
    proptest::collection::vec((0u64..5000, 1u32..6), 0..60).prop_map(|pairs| {
        let mut items: Vec<(u64, f32)> = pairs.into_iter().map(|(id, c)| (id, c as f32)).collect();
        items.sort_unstable_by_key(|&(id, _)| id);
        items.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        FeatureVec { items }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    #[test]
    fn dot_symmetric_and_cosine_bounded(a in arb_feature_vec(), b in arb_feature_vec()) {
        prop_assert_eq!(a.dot(&b), b.dot(&a));
        let c = a.cosine(&b);
        prop_assert!((0.0..=1.0 + 1e-4).contains(&c), "cosine {}", c);
        prop_assert!((a.overlap(&b) - b.overlap(&a)).abs() < 1e-6);
    }

    #[test]
    fn overlap_bounded_by_totals(a in arb_feature_vec(), b in arb_feature_vec()) {
        let o = a.overlap(&b);
        prop_assert!(o <= a.total() + 1e-6);
        prop_assert!(o <= b.total() + 1e-6);
        prop_assert!(o >= 0.0);
    }

    #[test]
    fn self_cosine_is_one_unless_empty(a in arb_feature_vec()) {
        if a.is_empty() {
            prop_assert_eq!(a.cosine(&a), 0.0);
        } else {
            prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn feature_vec_json_roundtrip(a in arb_feature_vec()) {
        let back = FeatureVec::from_json(&a.to_json()).unwrap();
        prop_assert_eq!(a, back);
    }
}

// ---------------------------------------------------------------------------
// Data serde + display
// ---------------------------------------------------------------------------

fn arb_data() -> impl Strategy<Value = Data> {
    let leaf = prop_oneof![
        Just(Data::Null),
        any::<bool>().prop_map(Data::from),
        any::<i64>().prop_map(Data::from),
        (-1e9f64..1e9).prop_map(Data::from),
        "[a-z0-9 ]{0,12}".prop_map(|s| Data::from(s.as_str())),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Data::List),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Data::Map),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    #[test]
    fn data_serde_roundtrip(d in arb_data()) {
        let json = serde_json::to_string(&d).unwrap();
        let back: Data = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn group_hash_deterministic(d in arb_data()) {
        prop_assert_eq!(d.group_hash(), d.clone().group_hash());
    }
}

// ---------------------------------------------------------------------------
// Metrics invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128)))]

    #[test]
    fn precision_recall_always_in_unit_interval(
        ranked in proptest::collection::vec(0u64..50, 0..30),
        relevant in proptest::collection::hash_set(0u64..50, 0..20),
        k in 0usize..40,
    ) {
        // Rankings are id lists without duplicates (the metric's contract).
        let mut seen = HashSet::new();
        let ranked: Vec<u64> = ranked.into_iter().filter(|id| seen.insert(*id)).collect();
        let relevant: HashSet<u64> = relevant.into_iter().collect();
        let (p, r) = precision_recall_at_k(&ranked, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
    }
}

// ---------------------------------------------------------------------------
// Aroma pipeline invariants
// ---------------------------------------------------------------------------

fn arb_pe_code() -> impl Strategy<Value = String> {
    (0u64..1000, 0usize..6).prop_map(|(seed, fam)| {
        let d = Dataset::generate(DatasetConfig {
            families: 6,
            variants_per_family: 1,
            seed,
            ..DatasetConfig::default()
        });
        d.entries[fam].code.clone()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    #[test]
    fn pruned_statements_come_from_the_candidate(
        cand in arb_pe_code(),
        query in arb_pe_code(),
    ) {
        use laminar::aroma::{granulated_vec, prune_and_rerank, statement_granules};
        let q = granulated_vec(&query);
        let pruned = prune_and_rerank(1, &cand, &q);
        let granules: HashSet<String> =
            statement_granules(&cand).into_iter().map(|(t, _)| t).collect();
        for s in &pruned.kept_statements {
            prop_assert!(granules.contains(s), "{s:?} not a candidate granule");
        }
        prop_assert!(pruned.rerank_score >= 0.0);
        prop_assert!(pruned.rerank_score <= 1.0 + 1e-4);
    }

    #[test]
    fn completion_lines_come_from_the_candidate(
        cand in arb_pe_code(),
        query in arb_pe_code(),
    ) {
        use laminar::aroma::{complete_from, statement_granules};
        let c = complete_from(&query, &cand);
        prop_assert!((0.0..=1.0).contains(&c.progress));
        let granules: HashSet<String> =
            statement_granules(&cand).into_iter().map(|(t, _)| t).collect();
        for l in &c.lines {
            prop_assert!(granules.contains(l));
        }
        // lines + covered partition the granules.
        let covered = (c.progress * granules.len() as f32).round() as usize;
        prop_assert_eq!(covered + c.lines.len(), granules.len());
    }

    #[test]
    fn lsh_hits_are_true_overlap_scores(seed in 0u64..200) {
        use laminar::aroma::{LshConfig, LshIndex};
        use laminar::spt::Spt;
        let d = Dataset::generate(DatasetConfig {
            families: 5,
            variants_per_family: 3,
            seed,
            ..DatasetConfig::default()
        });
        let vecs: Vec<FeatureVec> = d
            .entries
            .iter()
            .map(|e| Spt::parse_source(&e.code).feature_vec())
            .collect();
        let mut ix = LshIndex::new(LshConfig { bands: 8, rows: 2 });
        for (i, v) in vecs.iter().enumerate() {
            ix.add(i as u64, v.clone());
        }
        let q = &vecs[0];
        let (hits, stats) = ix.search(q, 10, 0.0);
        prop_assert!(stats.candidates <= stats.indexed);
        for h in &hits {
            // Every reported score is the exact overlap, not an estimate.
            prop_assert!((h.score - q.overlap(&vecs[h.id as usize])).abs() < 1e-5);
        }
        // Scores are non-increasing.
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }
}

// ---------------------------------------------------------------------------
// Dataset generation invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    #[test]
    fn generated_corpora_always_parse(seed in 0u64..1000) {
        let d = Dataset::generate(DatasetConfig {
            families: 6,
            variants_per_family: 3,
            seed,
            ..DatasetConfig::default()
        });
        prop_assert_eq!(d.len(), 18);
        for e in &d.entries {
            let tree = pyparse::parse(&e.code);
            prop_assert!(tree.errors.is_empty(), "{}: {:?}", e.name, tree.errors);
        }
        // Names unique.
        let names: HashSet<_> = d.entries.iter().map(|e| e.name.clone()).collect();
        prop_assert_eq!(names.len(), d.len());
    }
}
