//! Serving-path lifecycle tests over real TCP: saturation and typed
//! `Busy` rejection, retry with backoff, graceful drain of in-flight
//! streams, stalled-stream cancellation with keepalives, wire-level
//! sentinel/EOF edges, and concurrent-client stress.

use laminar::client::{LaminarClient, RetryPolicy};
use laminar::core::{Laminar, LaminarConfig};
use laminar::server::protocol::{FaultPolicyWire, RunInputWire};
use laminar::server::{
    Connection, ConnectionError, Ident, LaminarServer, NetClientTransport, NetServer,
    NetServerConfig, Reply, Request, Response, RunMode, WireFrame,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn register_user(server: &LaminarServer, name: &str) -> u64 {
    match server
        .handle(Request::RegisterUser {
            username: name.into(),
            password: "p".into(),
        })
        .value()
    {
        Response::Token(t) => t,
        other => panic!("{other:?}"),
    }
}

/// Register a workflow whose middle PE sleeps `item_ms` per item, both in
/// the engine library (runnable graph) and the registry (resolvable name).
fn register_slow_workflow(server: &LaminarServer, token: u64, name: &'static str, item_ms: u64) {
    server.engine().library().register(name, move || {
        use laminar::d4py::prelude::*;
        let mut g = WorkflowGraph::new(name);
        let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
        let slow = g.add(IterativePE::new("Slow", move |d: Data| {
            std::thread::sleep(Duration::from_millis(item_ms));
            Some(d)
        }));
        let sink = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
            ctx.log(format!("{d}"));
        }));
        g.connect(src, OUTPUT, slow, INPUT).unwrap();
        g.connect(slow, OUTPUT, sink, INPUT).unwrap();
        g
    });
    let resp = server
        .handle(Request::RegisterWorkflow {
            token,
            name: name.into(),
            code: String::new(),
            description: Some("deliberately slow".into()),
            pes: vec![],
        })
        .value();
    assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
}

fn run_request(token: u64, name: &str, items: u64) -> Request {
    Request::Run {
        token,
        ident: Ident::Name(name.into()),
        input: RunInputWire::Iterations(items),
        mode: RunMode::Sequential,
        streaming: true,
        verbose: false,
        resources: vec![],
        fault: FaultPolicyWire::default(),
        task_timeout_ms: None,
    }
}

fn open_stream(addr: SocketAddr, req: Request) -> impl Iterator<Item = WireFrame> {
    let conn = NetClientTransport::new(addr);
    match conn.call(req) {
        Ok(Reply::Stream(rx)) => rx.into_iter(),
        Ok(Reply::Value(v)) => panic!("expected stream, got {v:?}"),
        Err(e) => panic!("expected stream, got error {e:?}"),
    }
}

/// With max_connections = K and K held streams, the K+1th request gets a
/// typed `Busy` rejection; a client with a retry policy absorbs it and
/// eventually succeeds; the metrics snapshot accounts for all of it.
#[test]
fn saturation_gets_typed_busy_and_retry_recovers() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let server = laminar.server();
    let token = register_user(&server, "u");
    register_slow_workflow(&server, token, "hold_wf", 5);

    let net = NetServer::bind_with(
        "127.0.0.1:0",
        server.clone(),
        NetServerConfig {
            max_connections: 2,
            retry_after_hint: Duration::from_millis(10),
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = net.addr();

    // Occupy both workers with slow streamed runs (~500 ms each).
    let holders: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let frames = open_stream(addr, run_request(token, "hold_wf", 100));
                let mut ok = false;
                for f in frames {
                    if let WireFrame::End { ok: o, .. } = f {
                        ok = o;
                    }
                }
                ok
            })
        })
        .collect();

    // Wait (in-process gauge) until both workers are genuinely busy.
    let t0 = Instant::now();
    while net.in_flight() < 2 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "workers never saturated"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // K+1th request on a bare connection: typed rejection, not a hang.
    let conn = NetClientTransport::new(addr);
    match conn.call(Request::Metrics {}) {
        Err(ConnectionError::Busy { retry_after_ms }) => assert!(retry_after_ms >= 1),
        Err(e) => panic!("expected Busy, got {e:?}"),
        Ok(Reply::Value(v)) => panic!("expected Busy, got {v:?}"),
        Ok(Reply::Stream(_)) => panic!("expected Busy, got a stream"),
    }

    // The same request through a retrying client eventually succeeds.
    let retry_client = LaminarClient::over(NetClientTransport::new(addr)).with_retry(RetryPolicy {
        max_attempts: 60,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(60),
    });
    let snap = retry_client
        .metrics()
        .expect("retry with backoff should outlast the held workers");

    for h in holders {
        assert!(h.join().unwrap(), "held stream should complete ok");
    }

    // Accounting: the rejection was counted, both at the connection level
    // and against the endpoint the rejected request targeted.
    assert!(snap.connections_rejected >= 1, "{snap:?}");
    let final_snap = server.metrics().snapshot();
    assert!(final_snap.connections_rejected >= 1);
    let metrics_ep = final_snap
        .endpoints
        .iter()
        .find(|e| e.endpoint == "Metrics")
        .expect("Metrics endpoint row");
    assert!(metrics_ep.rejections >= 1, "{metrics_ep:?}");
    let run_ep = final_snap
        .endpoints
        .iter()
        .find(|e| e.endpoint == "Run")
        .expect("Run endpoint row");
    assert!(run_ep.requests >= 2);
    assert_eq!(run_ep.in_flight, 0, "gauge must return to zero");
    assert!(
        run_ep.latency.count >= 2 && run_ep.latency.p50_us > 0,
        "{run_ep:?}"
    );
}

/// `shutdown` stops accepting while the in-flight stream keeps running;
/// `drain` waits for it and reports a clean drain.
#[test]
fn graceful_shutdown_drains_in_flight_stream() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let server = laminar.server();
    let token = register_user(&server, "u");
    register_slow_workflow(&server, token, "drain_wf", 4);

    let net = Arc::new(
        NetServer::bind_with(
            "127.0.0.1:0",
            server.clone(),
            NetServerConfig {
                max_connections: 2,
                drain_timeout: Duration::from_secs(10),
                ..NetServerConfig::default()
            },
        )
        .unwrap(),
    );
    let addr = net.addr();

    let mut frames = open_stream(addr, run_request(token, "drain_wf", 60));
    // Prove the stream is live before shutting down.
    let mut saw_line = false;
    for f in frames.by_ref() {
        match f {
            WireFrame::Line(_) => {
                saw_line = true;
                break;
            }
            WireFrame::End { .. } => break,
            _ => {}
        }
    }
    assert!(saw_line, "stream produced no lines before shutdown");

    net.shutdown();
    let drainer = {
        let net = net.clone();
        std::thread::spawn(move || net.drain(Duration::from_secs(10)))
    };

    // The in-flight stream runs to completion during the drain.
    let mut finished_ok = false;
    for f in frames {
        if let WireFrame::End { ok, .. } = f {
            finished_ok = ok;
        }
    }
    assert!(finished_ok, "in-flight stream must finish during drain");
    assert!(drainer.join().unwrap(), "drain should complete in time");
    assert_eq!(net.in_flight(), 0);

    // New connections are no longer served.
    std::thread::sleep(Duration::from_millis(20));
    let conn = NetClientTransport::new(addr);
    assert!(
        conn.call(Request::Metrics {}).is_err(),
        "server should not serve after shutdown"
    );
}

/// A stream quiet past the request deadline is cancelled with the typed
/// `TimedOut` reply, after keepalive frames kept the connection warm.
#[test]
fn stalled_stream_cancelled_with_typed_timeout_after_keepalives() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let server = laminar.server();
    let token = register_user(&server, "u");
    register_slow_workflow(&server, token, "stall_wf", 2_000);

    let net = NetServer::bind_with(
        "127.0.0.1:0",
        server.clone(),
        NetServerConfig {
            request_timeout: Duration::from_millis(200),
            keepalive_interval: Duration::from_millis(40),
            ..NetServerConfig::default()
        },
    )
    .unwrap();

    let frames = open_stream(net.addr(), run_request(token, "stall_wf", 3));
    let mut keepalives = 0u32;
    let mut timed_out = false;
    for f in frames {
        match f {
            WireFrame::Keepalive { .. } => keepalives += 1,
            WireFrame::Value(Response::TimedOut { .. }) => timed_out = true,
            _ => {}
        }
    }
    assert!(
        timed_out,
        "stalled stream must get the typed TimedOut reply"
    );
    assert!(keepalives >= 1, "keepalives must precede the cancellation");
    assert!(server.metrics().snapshot().timeouts >= 1);
}

/// Raw wire check: a bare (pre-versioning, v1) request is answered with a
/// length-prefixed `Value` frame, a zero-length sentinel, then EOF.
#[test]
fn wire_reply_ends_with_zero_length_sentinel_then_eof() {
    use std::io::{Read, Write};

    let laminar = Laminar::deploy(LaminarConfig::default());
    let net = NetServer::bind("127.0.0.1:0", laminar.server()).unwrap();

    let mut s = std::net::TcpStream::connect(net.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let body = br#"{"GetRegistry":{"token":1}}"#;
    s.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    s.write_all(body).unwrap();

    let mut len4 = [0u8; 4];
    s.read_exact(&mut len4).unwrap();
    let n = u32::from_be_bytes(len4) as usize;
    assert!(n > 0 && n < 4096, "frame length {n}");
    let mut buf = vec![0u8; n];
    s.read_exact(&mut buf).unwrap();
    let frame: serde_json::Value = serde_json::from_slice(&buf).unwrap();
    assert!(frame.get("Value").is_some(), "{frame}");

    s.read_exact(&mut len4).unwrap();
    assert_eq!(u32::from_be_bytes(len4), 0, "zero-length sentinel expected");
    assert_eq!(s.read(&mut [0u8; 8]).unwrap(), 0, "EOF after sentinel");
}

/// A client that connects and hangs up without sending anything must not
/// wedge a worker: the next request is served normally.
#[test]
fn early_disconnect_leaves_server_serving() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let net = NetServer::bind_with(
        "127.0.0.1:0",
        laminar.server(),
        NetServerConfig {
            max_connections: 1,
            ..NetServerConfig::default()
        },
    )
    .unwrap();

    drop(std::net::TcpStream::connect(net.addr()).unwrap());

    let conn = NetClientTransport::new(net.addr());
    match conn.call(Request::Metrics {}) {
        Ok(Reply::Value(Response::Metrics(_))) => {}
        Ok(Reply::Value(v)) => panic!("{v:?}"),
        Ok(Reply::Stream(_)) => panic!("unexpected stream"),
        Err(e) => panic!("{e:?}"),
    }
}

fn stress(clients: usize, requests_per_client: usize) {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let server = laminar.server();
    let net = NetServer::bind_with(
        "127.0.0.1:0",
        server.clone(),
        NetServerConfig {
            max_connections: 4,
            retry_after_hint: Duration::from_millis(5),
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = net.addr();

    let handles: Vec<_> = (0..clients)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client =
                    LaminarClient::over(NetClientTransport::new(addr)).with_retry(RetryPolicy {
                        max_attempts: 20,
                        base_delay: Duration::from_millis(5),
                        max_delay: Duration::from_millis(50),
                    });
                client.register(&format!("user{i}"), "pw").unwrap();
                for _ in 0..requests_per_client {
                    let (_pes, _wfs) = client.get_registry().unwrap();
                    let snap = client.metrics().unwrap();
                    assert!(snap.connections_accepted > 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = server.metrics().snapshot();
    let registry_ep = snap
        .endpoints
        .iter()
        .find(|e| e.endpoint == "GetRegistry")
        .expect("GetRegistry endpoint row");
    assert!(registry_ep.requests >= (clients * requests_per_client) as u64);
    for ep in &snap.endpoints {
        assert_eq!(
            ep.in_flight, 0,
            "{}: gauge must settle at zero",
            ep.endpoint
        );
        assert!(
            ep.requests >= ep.errors + ep.rejections,
            "{}: inconsistent accounting {ep:?}",
            ep.endpoint
        );
    }
}

/// Tier-1-sized concurrency: every request succeeds (retry absorbs any
/// Busy bounces) and the per-endpoint accounting stays consistent.
#[test]
fn concurrent_clients_with_retry_all_succeed() {
    stress(8, 5);
}

/// Heavy variant, excluded from tier-1: `cargo test -- --ignored`.
#[test]
#[ignore = "heavy stress; run explicitly with cargo test -- --ignored"]
fn heavy_concurrent_stress() {
    stress(16, 25);
}
