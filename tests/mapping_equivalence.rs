//! Mapping portability (paper §II-A): a deterministic abstract workflow
//! must produce the same output multiset under every mapping and process
//! count — the property that lets Laminar swap mappings per run request.

use laminar::d4py::mapping::{run, DynamicConfig, Mapping, RunInput};
use laminar::d4py::workflows;
use laminar::d4py::WorkflowGraph;

fn sorted_lines(g: &WorkflowGraph, input: RunInput, mapping: &Mapping) -> Vec<String> {
    let mut v = run(g, input, mapping).expect("run").lines().to_vec();
    v.sort();
    v
}

fn mappings() -> Vec<Mapping> {
    vec![
        Mapping::Simple,
        Mapping::Multi { processes: 3 },
        Mapping::Multi { processes: 6 },
        Mapping::Multi { processes: 11 },
        Mapping::Dynamic(DynamicConfig {
            initial_workers: 1,
            max_workers: 4,
            autoscale: true,
            scale_threshold: 2,
        }),
        Mapping::Dynamic(DynamicConfig {
            initial_workers: 4,
            max_workers: 4,
            autoscale: false,
            scale_threshold: 4,
        }),
    ]
}

#[test]
fn isprime_equivalent_under_all_mappings() {
    let reference = sorted_lines(
        &workflows::isprime_graph(),
        RunInput::Iterations(40),
        &Mapping::Simple,
    );
    assert!(!reference.is_empty());
    for mapping in mappings() {
        let got = sorted_lines(
            &workflows::isprime_graph(),
            RunInput::Iterations(40),
            &mapping,
        );
        assert_eq!(got, reference);
    }
}

#[test]
fn doubler_equivalent_under_all_mappings() {
    let reference = sorted_lines(
        &workflows::doubler_graph(),
        RunInput::Iterations(64),
        &Mapping::Simple,
    );
    assert_eq!(reference.len(), 64);
    for mapping in mappings() {
        let got = sorted_lines(
            &workflows::doubler_graph(),
            RunInput::Iterations(64),
            &mapping,
        );
        assert_eq!(got, reference);
    }
}

#[test]
fn anomaly_equivalent_under_all_mappings() {
    let reference = sorted_lines(
        &workflows::anomaly_graph(50.0),
        RunInput::Iterations(80),
        &Mapping::Simple,
    );
    for mapping in mappings() {
        // The anomaly pipeline has 4 PEs: skip process counts below its
        // static-partition minimum.
        if let Mapping::Multi { processes } = &mapping {
            if *processes < 4 {
                continue;
            }
        }
        let got = sorted_lines(
            &workflows::anomaly_graph(50.0),
            RunInput::Iterations(80),
            &mapping,
        );
        assert_eq!(got, reference);
    }
}

#[test]
fn wordcount_final_counts_equivalent() {
    // Per-line streams differ in interleaving (counter emits intermediate
    // counts), but the *final* per-word count is mapping-invariant thanks
    // to GroupBy routing.
    use std::collections::BTreeMap;
    let finals = |lines: &[String]| -> BTreeMap<String, i64> {
        let mut m = BTreeMap::new();
        for l in lines {
            let mut parts = l.rsplitn(2, ' ');
            let n: i64 = parts.next().unwrap().parse().unwrap();
            let w = parts.next().unwrap().to_string();
            let e = m.entry(w).or_insert(0);
            *e = (*e).max(n);
        }
        m
    };
    let reference = finals(
        run(
            &workflows::word_count_graph(),
            RunInput::Iterations(12),
            &Mapping::Simple,
        )
        .unwrap()
        .lines(),
    );
    // NOTE: the dynamic mapping cannot honour GroupBy (documented
    // restriction shared with the real Redis mapping), so only static
    // mappings are compared here.
    for mapping in [
        Mapping::Multi { processes: 4 },
        Mapping::Multi { processes: 9 },
    ] {
        let got = finals(
            run(
                &workflows::word_count_graph(),
                RunInput::Iterations(12),
                &mapping,
            )
            .unwrap()
            .lines(),
        );
        assert_eq!(got, reference);
    }
}

#[test]
fn iteration_counts_conserved_across_mappings() {
    // Total iterations per PE must equal the number of data items that
    // reached it, independent of the mapping.
    for mapping in mappings() {
        let r = run(
            &workflows::doubler_graph(),
            RunInput::Iterations(30),
            &mapping,
        )
        .unwrap();
        let total_for = |pe: &str| -> u64 {
            r.counts
                .iter()
                .filter(|((name, _), _)| name == pe)
                .map(|(_, n)| *n)
                .sum()
        };
        assert_eq!(total_for("Numbers0"), 30);
        assert_eq!(total_for("Double1"), 30);
        assert_eq!(total_for("Print2"), 30);
    }
}

#[test]
fn empty_input_equivalent() {
    for mapping in mappings() {
        let r = run(
            &workflows::isprime_graph(),
            RunInput::Iterations(0),
            &mapping,
        )
        .unwrap();
        assert!(r.lines().is_empty());
    }
}
