//! Stress and concurrency tests: sustained throughput through the
//! dataflow engine and concurrent executions through the serverless stack.

use laminar::core::{Laminar, LaminarConfig, ISPRIME_WORKFLOW_SOURCE};
use laminar::d4py::mapping::{run, DynamicConfig, Mapping, RunInput};
use laminar::d4py::prelude::*;
use std::sync::Arc;

/// 10k items through a 3-stage pipeline under each mapping — checks
/// throughput sanity, backpressure (bounded channels), and exact counts.
#[test]
fn ten_thousand_items_every_mapping() {
    fn graph() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("stress_wf");
        let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
        let stage = g.add(IterativePE::new("Stage", |d: Data| {
            Some(Data::from(d.as_int().unwrap_or(0) ^ 0x5a))
        }));
        let sink = g.add(AggregatePE::new(
            "Count",
            0i64,
            |acc: &mut i64, _d: Data| *acc += 1,
            |acc: &i64| Some(Data::from(*acc)),
        ));
        let out = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
            ctx.log(format!("count {d}"));
        }));
        g.connect(src, OUTPUT, stage, INPUT).unwrap();
        g.connect(stage, OUTPUT, sink, INPUT).unwrap();
        g.connect_grouped(sink, OUTPUT, out, INPUT, Grouping::AllToOne)
            .unwrap();
        g
    }

    const N: u64 = 10_000;
    for mapping in [
        Mapping::Simple,
        Mapping::Multi { processes: 8 },
        Mapping::Dynamic(DynamicConfig {
            initial_workers: 4,
            max_workers: 4,
            autoscale: false,
            scale_threshold: 8,
        }),
    ] {
        let t0 = std::time::Instant::now();
        let r = run(&graph(), RunInput::Iterations(N), &mapping).unwrap();
        let total: i64 = r
            .lines()
            .iter()
            .map(|l| l.strip_prefix("count ").unwrap().parse::<i64>().unwrap())
            .sum();
        assert_eq!(total, N as i64, "{:?}", r.lines());
        // Generous sanity bound: 10k trivial items in < 30 s.
        assert!(t0.elapsed().as_secs() < 30);
    }
}

/// Many clients running workflows concurrently through one deployment:
/// the container pool is bounded, every execution completes, every
/// response is recorded.
#[test]
fn concurrent_executions_through_the_stack() {
    let laminar = Laminar::deploy(LaminarConfig {
        max_containers: 3,
        cold_start: std::time::Duration::from_millis(1),
        prewarmed: 1,
        ..LaminarConfig::default()
    });
    let mut boot = laminar.client();
    boot.register("stress", "pw").unwrap();
    let reg = boot
        .register_workflow("isprime_wf", ISPRIME_WORKFLOW_SOURCE)
        .unwrap();
    let server = laminar.server();
    let wf_id = reg.workflow.1;

    let ok_runs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..6 {
            let server = server.clone();
            let ok_runs = ok_runs.clone();
            s.spawn(move || {
                let mut client = laminar::client::LaminarClient::connect(server);
                client.login("stress", "pw").unwrap();
                for _ in 0..3 {
                    let out = client.run(wf_id, 5).unwrap();
                    assert!(out.ok);
                    ok_runs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(ok_runs.load(std::sync::atomic::Ordering::SeqCst), 18);
    // Every execution recorded with a response.
    let execs = server.registry().executions_for(wf_id);
    assert_eq!(execs.len(), 18);
    for e in &execs {
        assert_eq!(server.registry().responses_for(e.id).len(), 1);
    }
    // The pool never exceeded its bound.
    let stats = server.engine().pool().stats();
    assert!(stats.created <= 3, "{stats:?}");
    assert!(stats.warm_hits > 0);
}

/// Concurrent searches while registrations mutate the indexes: no panics,
/// no torn reads, monotone registry growth.
#[test]
fn concurrent_search_and_registration() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut boot = laminar.client();
    boot.register("mixer", "pw").unwrap();
    let server = laminar.server();
    std::thread::scope(|s| {
        // Writers.
        for t in 0..3 {
            let server = server.clone();
            s.spawn(move || {
                let mut client = laminar::client::LaminarClient::connect(server);
                client.login("mixer", "pw").unwrap();
                for i in 0..20 {
                    client
                        .register_pe(
                            &format!("Gen{t}_{i}"),
                            &format!(
                                "class Gen{t}_{i}(IterativePE):\n    def _process(self, x):\n        return x * {i} + {t}\n"
                            ),
                            None,
                        )
                        .unwrap();
                }
            });
        }
        // Readers.
        for _ in 0..3 {
            let server = server.clone();
            s.spawn(move || {
                let mut client = laminar::client::LaminarClient::connect(server);
                client.login("mixer", "pw").unwrap();
                for _ in 0..30 {
                    let _ = client
                        .search_registry_semantic(
                            laminar::core::SearchScope::Pe,
                            "multiplies the input by a constant",
                        )
                        .unwrap();
                    let _ = client
                        .code_recommendation(
                            laminar::core::SearchScope::Pe,
                            "def _process(self, x):\n    return x * 3\n",
                            laminar::core::EmbeddingType::Spt,
                        )
                        .unwrap();
                }
            });
        }
    });
    assert_eq!(server.registry().counts().0, 60);
    assert_eq!(server.indexes().len(), 60);
}
