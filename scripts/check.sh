#!/usr/bin/env bash
# CI gate for the serving path: formatting, lints, build, tests.
#
#   ./scripts/check.sh          # the tier-1 gate
#   ./scripts/check.sh --heavy  # additionally runs the #[ignore]d stress tests
#
# fmt stays scoped to the serving-path crates (server, client, core,
# facade); the remaining crates predate the formatting gate. clippy runs
# workspace-wide.

set -euo pipefail
cd "$(dirname "$0")/.."

SCOPED=(-p laminar-server -p laminar-client -p laminar-core -p laminar)

echo "==> cargo fmt --check (serving-path crates)"
cargo fmt --check "${SCOPED[@]}"

echo "==> cargo clippy -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo bench --no-run (benches stay compilable)"
cargo bench --no-run -p laminar-bench

# `cargo bench --no-run` covers the Criterion benches; the report bins
# (bench_ingest and friends) are built by the release build above, but
# keep an explicit gate so a broken ingest bench names itself.
echo "==> bench_ingest builds"
cargo build --release -p laminar-bench --bin bench_ingest

# The chaos suite is seeded (pinned seed inside the test file), so this is
# a deterministic gate, not a flaky soak: same-seed runs must produce
# bit-identical dead-letter queues on every mapping.
echo "==> chaos suite (seeded fault injection, all mappings x all policies)"
cargo test -q -p d4py --test chaos

# Crash-recovery gate: random mutation scripts, the WAL cut at every byte
# of the tail record, recovery compared against the acknowledged prefix.
echo "==> registry recovery suite (WAL torn-tail property tests)"
cargo test -q -p laminar-registry --test recovery

# Batch ≡ sequential equivalence, and all-or-nothing recovery of the
# group-commit frame when the WAL is cut at every byte across it.
echo "==> batch ingestion equivalence suite"
cargo test -q -p laminar-registry --test batch_equivalence

# Quantized tier invariants: int8 round-trip idempotence, widening-kernel
# equivalence, and two-phase recall (== 1.0 at the 4·k window, ≥ 0.99 at
# 2·k) against the exact f32 scan.
echo "==> quantized search kernel suite"
cargo test -q -p embed --test quant_props

# Index-level quantized properties: quantized hits ≡ exact hits, slab
# bit-identity across per-row / bulk / registry-replay construction, and
# the ≥ 3× bytes/row acceptance bar.
echo "==> quantized index + replay suite"
cargo test -q -p laminar-server --test quant_props

echo "==> bench_quant builds"
cargo build --release -p laminar-bench --bin bench_quant

# Storage chaos: one injected fault at every WAL/snapshot IO site x every
# fault kind, persistent-ENOSPC rejection, and seeded determinism
# (same seed => bit-identical fault schedule and recovered registry).
echo "==> storage chaos suite (disk-fault injection at every IO site)"
cargo test -q -p laminar-registry --test iofault_recovery

# Degraded-mode end-to-end over TCP: ENOSPC -> typed Degraded rejections
# while reads/metrics/health keep serving -> probe recovery -> writes land.
echo "==> degraded-mode server suite (read-only degradation + recovery)"
cargo test -q -p laminar-server --test degraded

echo "==> bench_degraded builds"
cargo build --release -p laminar-bench --bin bench_degraded

# Aroma pipeline invariants: clustering covers every pruned input exactly
# once, seeds are best-ranked, parallel prune/rerank ≡ serial bit-identical,
# and the engine's recommendations survive the full retrieve → prune →
# cluster → intersect path.
echo "==> aroma pipeline property suite"
cargo test -q -p aroma --test pipeline_props

# Served recommendations: full-pipeline responses ≡ direct engine output on
# the same snapshot, Both scope merges PE + workflow hits, generation-keyed
# cache hits, and the reco index stays in lockstep with registry mutations.
echo "==> server recommendation suite"
cargo test -q -p laminar-server --lib -- reco recommendation both_scope

echo "==> bench_recommend builds"
cargo build --release -p laminar-bench --bin bench_recommend

# Network-fault wrapper in isolation: every fault kind on either side of
# a frame exchange surfaces as a typed error or a successful retry —
# never a wedged call — and the journal records true server-side effects.
echo "==> network-fault wrapper suite"
cargo test -q -p laminar-sim --test netfault

# The simulation oracle's own contract: a clean seeded run is
# violation-free and bit-identical on replay, and a deliberately broken
# invariant (losing the WAL) is caught.
echo "==> simulation oracle suite"
cargo test -q -p laminar-sim --test oracle

# Whole-system simulation smoke: pinned seeds, every fault plane armed
# (disk faults, execution chaos, network faults, crash-restart). Each
# seed runs twice and the full stdout is diffed: the same seed must
# print bit-identical traces, journals and verdicts.
echo "==> simulation smoke (pinned seeds, bit-identity replay)"
cargo build --release -p laminar-sim
SIM_BIN=target/release/laminar-sim
SIM_TMP="$(mktemp -d)"
trap 'rm -rf "$SIM_TMP"' EXIT
for seed in 1 7 1337; do
    for rep in a b; do
        if ! "$SIM_BIN" --seed "$seed" --episodes 2 --ops 30 \
                > "$SIM_TMP/sim-$seed-$rep.out"; then
            cat "$SIM_TMP/sim-$seed-$rep.out"
            echo "sim smoke failed — replay with:" \
                 "cargo run -p laminar-sim --release -- --seed $seed --episodes 2 --ops 30"
            exit 1
        fi
    done
    if ! diff "$SIM_TMP/sim-$seed-a.out" "$SIM_TMP/sim-$seed-b.out"; then
        echo "sim seed $seed did not replay bit-identically"
        exit 1
    fi
done

if [[ "${1:-}" == "--heavy" ]]; then
    echo "==> heavy stress tests (#[ignore]d)"
    cargo test -q -p laminar heavy_ -- --ignored

    # Randomised simulation soak: a fresh seed each run (or SIM_SEED=<n>
    # to pin one), printed up front so any failure is replayable.
    SOAK_SEED="${SIM_SEED:-$(date +%s)}"
    echo "==> simulation soak (SIM_SEED=$SOAK_SEED)"
    if ! "$SIM_BIN" --seed "$SOAK_SEED" --episodes 4 --ops 80; then
        echo "sim soak failed — replay with:" \
             "cargo run -p laminar-sim --release -- --seed $SOAK_SEED --episodes 4 --ops 80"
        exit 1
    fi
fi

echo "OK"
