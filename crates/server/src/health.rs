//! The storage-health state machine behind read-only degraded mode.
//!
//! The server starts `Healthy`. The first persistence error observed on
//! any mutation path — a failed WAL append, snapshot write, or WAL
//! truncate — flips it to `Degraded`: mutating endpoints are rejected
//! with the typed [`Response::Degraded`] while searches, runs, metrics,
//! and resource-cache reads keep serving from the in-memory state (which
//! is still correct: the registry never applies a mutation whose WAL
//! frame failed). A background recovery probe periodically re-verifies
//! the storage ([`Registry::verify_storage`]: WAL replay CRC audit +
//! scratch test append) and transitions back to `Healthy` once it
//! passes. Every transition and rejection is counted for the
//! `storage_health` metrics row group.
//!
//! [`Response::Degraded`]: crate::protocol::Response::Degraded
//! [`Registry::verify_storage`]: laminar_registry::Registry::verify_storage

use crate::obs::StorageHealthSnapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared storage-health state. All counters are relaxed atomics — the
/// only lock guards the last-error string, taken off the hot path.
#[derive(Debug, Default)]
pub struct StorageHealth {
    degraded: AtomicBool,
    degraded_entries: AtomicU64,
    degraded_exits: AtomicU64,
    probe_attempts: AtomicU64,
    probe_failures: AtomicU64,
    rejected_while_degraded: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl StorageHealth {
    pub fn new() -> StorageHealth {
        StorageHealth::default()
    }

    /// True while the server is in read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// A persistence error was observed on a mutation path: record it
    /// and enter degraded mode (idempotent — only the Healthy→Degraded
    /// edge counts as a transition).
    pub fn record_persist_error(&self, error: &str) {
        *self.last_error.lock() = Some(error.to_string());
        if !self.degraded.swap(true, Ordering::SeqCst) {
            self.degraded_entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A mutating request was rejected with `Response::Degraded`.
    pub fn note_rejected(&self) {
        self.rejected_while_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// A recovery probe passed: leave degraded mode (idempotent; probes
    /// run only while degraded, but a pass while already healthy is a
    /// harmless no-op transition-wise).
    pub fn probe_passed(&self) {
        self.probe_attempts.fetch_add(1, Ordering::Relaxed);
        if self.degraded.swap(false, Ordering::SeqCst) {
            self.degraded_exits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A recovery probe failed: storage is still bad, stay (or enter)
    /// degraded.
    pub fn probe_failed(&self, error: &str) {
        self.probe_attempts.fetch_add(1, Ordering::Relaxed);
        self.probe_failures.fetch_add(1, Ordering::Relaxed);
        self.record_persist_error(error);
    }

    /// Healthy→Degraded transitions since start (the `Health` response's
    /// `degraded_transitions`).
    pub fn degraded_entries(&self) -> u64 {
        self.degraded_entries.load(Ordering::Relaxed)
    }

    /// Most recent persistence error, if any has ever occurred.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Snapshot of the state machine's own counters. The server merges
    /// in the registry-side `io_errors` and fault-injector site counters
    /// before shipping it in the metrics snapshot.
    pub fn snapshot(&self) -> StorageHealthSnapshot {
        StorageHealthSnapshot {
            degraded: self.is_degraded(),
            degraded_entries: self.degraded_entries.load(Ordering::Relaxed),
            degraded_exits: self.degraded_exits.load(Ordering::Relaxed),
            probe_attempts: self.probe_attempts.load(Ordering::Relaxed),
            probe_failures: self.probe_failures.load(Ordering::Relaxed),
            rejected_while_degraded: self.rejected_while_degraded.load(Ordering::Relaxed),
            io_errors: 0,
            last_error: self.last_error(),
            fault_sites: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_enters_degraded_once() {
        let h = StorageHealth::new();
        assert!(!h.is_degraded());
        h.record_persist_error("wal append: injected ENOSPC");
        h.record_persist_error("wal append: injected ENOSPC");
        assert!(h.is_degraded());
        assert_eq!(h.degraded_entries(), 1, "idempotent entry");
        assert_eq!(
            h.last_error().as_deref(),
            Some("wal append: injected ENOSPC")
        );
    }

    #[test]
    fn probe_cycle_counts_transitions() {
        let h = StorageHealth::new();
        h.record_persist_error("boom");
        h.probe_failed("still broken");
        assert!(h.is_degraded());
        h.probe_passed();
        assert!(!h.is_degraded());
        h.record_persist_error("boom again");
        h.probe_passed();
        let snap = h.snapshot();
        assert_eq!(snap.degraded_entries, 2);
        assert_eq!(snap.degraded_exits, 2);
        assert_eq!(snap.probe_attempts, 3);
        assert_eq!(snap.probe_failures, 1);
        assert!(!snap.degraded);
    }

    #[test]
    fn rejections_are_counted() {
        let h = StorageHealth::new();
        h.record_persist_error("boom");
        h.note_rejected();
        h.note_rejected();
        assert_eq!(h.snapshot().rejected_while_degraded, 2);
    }
}
