//! The client↔server wire model.
//!
//! JSON-serialisable request/response types covering every client function
//! of Table I, plus the streamed frame type used by run responses. A real
//! HTTP layer would put `Request` in the body and stream `WireFrame`s; the
//! in-process and TCP transports do exactly that minus the HTTP headers.
//!
//! # Wire format
//!
//! Every message on the TCP transport is **length-prefixed JSON**: a
//! `u32` big-endian byte length followed by that many bytes of JSON.
//! A zero length is the **sentinel** marking end-of-response; it carries
//! no payload. Messages longer than `MAX_FRAME` (16 MiB) are rejected
//! with a typed `Response::Error` before the payload is read.
//!
//! The client sends one [`RequestEnvelope`] per connection; the server
//! answers with a sequence of [`WireFrame`]s terminated by the sentinel.
//! Synchronous replies are a single [`WireFrame::Value`]; streamed
//! replies open with [`WireFrame::Begin`] (carrying the request id minted
//! at ingress), interleave payload frames with [`WireFrame::Keepalive`]s
//! during quiet periods, and end with [`WireFrame::End`] (or a terminal
//! [`WireFrame::Value`] holding an error).
//!
//! # Version rules
//!
//! [`RequestEnvelope::protocol_version`] is serde-defaulted to `1`, so a
//! pre-versioning payload (a bare [`Request`] object) still parses — the
//! envelope's fields are flattened alongside the request's own tag. The
//! server accepts any version `<=` [`PROTOCOL_VERSION`] and answers a
//! newer one with the typed [`Response::Unsupported`] instead of an
//! opaque serde failure. Version history:
//!
//! * `1` — the original unversioned protocol (implicit).
//! * `2` — adds `Begin`/`Keepalive` frames, typed `Busy`/`TimedOut`/
//!   `Unsupported` rejections and the `Metrics` endpoint. All additions
//!   are backwards-compatible for version-1 readers that ignore unknown
//!   frames.
//! * `3` — adds the serde-defaulted `top_n` result cap to the search
//!   requests (`SearchLiteral`/`SearchSemantic`/`CodeRecommendation`).
//!   Version-2 payloads parse unchanged (`top_n: None` ⇒ server default).
//! * `4` — fault-tolerant enactment: `Run` gains the serde-defaulted
//!   `fault` policy ([`FaultPolicyWire`], default `FailFast`) and
//!   `task_timeout_ms`; run streams may carry the new `DeadLetter` and
//!   `Faults` frames. Version-3 payloads parse unchanged, and version-3
//!   readers that ignore unknown frames keep working.
//! * `5` — durable registry: adds the `Compact` request (fold the
//!   registry WAL into an atomic snapshot) and its `Compacted` response,
//!   and the metrics snapshot grows a serde-defaulted `persistence` row
//!   group. Version-4 payloads parse unchanged.
//! * `6` — batched ingestion: adds the `RegisterBatch` request (N
//!   PE/workflow registrations in one round-trip, committed through the
//!   group-commit WAL and one index snapshot swap) with its per-item
//!   `BatchRegistered` response, and the metrics snapshot grows a
//!   serde-defaulted `ingest` row group. Version-5 payloads parse
//!   unchanged.
//! * `7` — quantized two-phase search: the metrics snapshot grows a
//!   serde-defaulted `search_quant` row group (query-cache hit/miss
//!   counters, rescore-window sizing, per-phase scan latency, f32-vs-i8
//!   tier bytes). No request or frame changes; version-6 payloads parse
//!   unchanged.
//! * `8` — storage health: adds the tokenless `Health` request and its
//!   `Health` response (liveness, readiness, storage state, last persist
//!   error, uptime, degraded-transition count), the typed `Degraded`
//!   rejection returned by mutating endpoints while the server is in
//!   read-only degraded mode, and a serde-defaulted `storage_health`
//!   metrics row group (io faults by site, degraded entries/exits, probe
//!   attempts, rejected-while-degraded counts). Version-7 payloads parse
//!   unchanged.
//! * `9` — full Aroma recommendations: [`RecommendationHit`] grows the
//!   serde-defaulted `cluster_size` and `common_core` fields (how many
//!   pruned snippets agreed on the hit, and the intersected idiom they
//!   share), and the metrics snapshot grows a serde-defaulted `reco` row
//!   group (per-stage pipeline latency, LSH candidate counts, result-cache
//!   hit/miss). No request changes; version-8 payloads parse unchanged and
//!   version-8 readers see the old fields untouched.

use crate::obs::MetricsSnapshot;
use d4py::Data;
/// Re-exported so wire consumers can name the frame payload types without
/// depending on `d4py` directly.
pub use d4py::{DeadLetterEntry, FaultStats};
use serde::{Deserialize, Serialize};

/// The protocol version this build speaks (see the module doc's version
/// rules).
pub const PROTOCOL_VERSION: u16 = 9;

/// Session token handed out by register/login.
pub type Token = u64;

/// Id-or-name identifier (the CLI accepts both: `run 169` / `run isprime_wf`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ident {
    Id(u64),
    Name(String),
}

impl From<u64> for Ident {
    fn from(id: u64) -> Self {
        Ident::Id(id)
    }
}

impl From<&str> for Ident {
    fn from(name: &str) -> Self {
        Ident::Name(name.to_string())
    }
}

/// What a search covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchScope {
    Pe,
    Workflow,
    Both,
}

/// Which embedding backs a code recommendation (paper Fig. 9:
/// `--embedding_type spt | llm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmbeddingType {
    /// Aroma SPT structural features (the 2.0 default).
    Spt,
    /// ReACC-py-retriever-style dense code embedding (the 1.0 behaviour).
    Llm,
}

/// Execution mapping requested by the client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// `client.run` — sequential.
    Sequential,
    /// `client.run_multiprocess` — static parallel with `processes` ranks.
    Multiprocess { processes: usize },
    /// `client.run_dynamic` — Redis-style dynamic allocation. The paper's
    /// headline usability win: no broker parameters needed (Listing 3).
    Dynamic,
}

/// A PE extracted from a workflow file at registration time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeSubmission {
    pub name: String,
    pub code: String,
    pub description: Option<String>,
}

/// One registration unit of a `RegisterBatch` (v6): either a standalone
/// PE or a workflow with its member PEs — the same shapes `RegisterPe`
/// and `RegisterWorkflow` carry, minus the per-request token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchItemWire {
    Pe(PeSubmission),
    Workflow {
        name: String,
        code: String,
        description: Option<String>,
        pes: Vec<PeSubmission>,
    },
}

/// Per-item result of a `RegisterBatch` (v6). The batch is *partially
/// successful* by design: item k can fail validation while the rest
/// commit, so the response carries one outcome per submitted item, in
/// submission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchOutcomeWire {
    /// The item committed — same shape as `Response::Registered`.
    Registered {
        pe_ids: Vec<(String, u64)>,
        workflow_id: Option<(String, u64)>,
    },
    /// The item failed; member PEs registered before the failure stay
    /// (matching the sequential path's partial-progress behaviour), and
    /// any that did commit are listed.
    Failed {
        pe_ids: Vec<(String, u64)>,
        error: String,
    },
}

/// Enactment fault policy as transmitted (mirrors `d4py::FaultPolicy`,
/// with the backoff in milliseconds so the payload stays flat JSON).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultPolicyWire {
    /// Abort the run on the first PE failure (the pre-v4 behaviour).
    #[default]
    FailFast,
    /// Re-invoke up to `max_attempts` times with jittered backoff.
    Retry { max_attempts: u32, backoff_ms: u64 },
    /// After `max_attempts`, drop the datum into the dead-letter queue
    /// and keep the stream flowing.
    DeadLetter { max_attempts: u32 },
}

impl From<FaultPolicyWire> for d4py::FaultPolicy {
    fn from(w: FaultPolicyWire) -> Self {
        match w {
            FaultPolicyWire::FailFast => d4py::FaultPolicy::FailFast,
            FaultPolicyWire::Retry {
                max_attempts,
                backoff_ms,
            } => d4py::FaultPolicy::Retry {
                max_attempts,
                backoff: std::time::Duration::from_millis(backoff_ms),
            },
            FaultPolicyWire::DeadLetter { max_attempts } => {
                d4py::FaultPolicy::DeadLetter { max_attempts }
            }
        }
    }
}

/// Run input as transmitted (mirrors `d4py::RunInput`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunInputWire {
    Iterations(u64),
    Data(Vec<Data>),
}

impl From<RunInputWire> for d4py::RunInput {
    fn from(w: RunInputWire) -> Self {
        match w {
            RunInputWire::Iterations(n) => d4py::RunInput::Iterations(n),
            RunInputWire::Data(v) => d4py::RunInput::Data(v),
        }
    }
}

/// Reference to a resource the workflow needs (paper §IV-F): name +
/// FNV-64 content hash, so the server can answer from its cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRefWire {
    pub name: String,
    pub content_hash: u64,
}

/// Every server operation. One variant per client function of Table I
/// (plus resource upload, which Table I folds into `run`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    RegisterUser {
        username: String,
        password: String,
    },
    Login {
        username: String,
        password: String,
    },
    RegisterPe {
        token: Token,
        pe: PeSubmission,
    },
    RegisterWorkflow {
        token: Token,
        name: String,
        code: String,
        description: Option<String>,
        pes: Vec<PeSubmission>,
    },
    /// Bulk ingestion (v6): N PE/workflow registrations in one
    /// round-trip, analysed in parallel and committed through one
    /// group-commit WAL frame + one index snapshot swap. Answered with
    /// `Response::BatchRegistered` carrying per-item outcomes.
    RegisterBatch {
        token: Token,
        items: Vec<BatchItemWire>,
    },
    GetPe {
        token: Token,
        ident: Ident,
    },
    GetWorkflow {
        token: Token,
        ident: Ident,
    },
    GetPesByWorkflow {
        token: Token,
        ident: Ident,
    },
    GetRegistry {
        token: Token,
    },
    Describe {
        token: Token,
        scope: SearchScope,
        ident: Ident,
    },
    UpdatePeDescription {
        token: Token,
        ident: Ident,
        description: String,
    },
    UpdateWorkflowDescription {
        token: Token,
        ident: Ident,
        description: String,
    },
    RemovePe {
        token: Token,
        ident: Ident,
    },
    RemoveWorkflow {
        token: Token,
        ident: Ident,
    },
    RemoveAll {
        token: Token,
    },
    SearchLiteral {
        token: Token,
        scope: SearchScope,
        term: String,
        /// Result cap; `None` applies the server's default.
        #[serde(default)]
        top_n: Option<usize>,
    },
    SearchSemantic {
        token: Token,
        scope: SearchScope,
        query: String,
        /// Result cap; `None` applies the server's default.
        #[serde(default)]
        top_n: Option<usize>,
    },
    CodeRecommendation {
        token: Token,
        scope: SearchScope,
        snippet: String,
        embedding_type: EmbeddingType,
        /// Result cap; `None` applies the server's default.
        #[serde(default)]
        top_n: Option<usize>,
    },
    /// Context-aware code completion (§III): complete a partially-typed PE
    /// from the most structurally-similar registered PE.
    CodeCompletion {
        token: Token,
        snippet: String,
    },
    /// Execution history of a workflow (the registry's Execution/Response
    /// tables, Table II).
    GetExecutions {
        token: Token,
        ident: Ident,
    },
    Run {
        token: Token,
        ident: Ident,
        input: RunInputWire,
        mode: RunMode,
        streaming: bool,
        verbose: bool,
        /// Resources the workflow needs, by reference (2.0 path).
        resources: Vec<ResourceRefWire>,
        /// Enactment fault policy (v4; v3 payloads default to `FailFast`).
        #[serde(default)]
        fault: FaultPolicyWire,
        /// Per-task timeout for the dynamic mapping, in milliseconds
        /// (v4; `None` ⇒ no timeout).
        #[serde(default)]
        task_timeout_ms: Option<u64>,
    },
    /// Multipart resource upload (2.0 path, after a NeedResources reply).
    UploadResource {
        token: Token,
        name: String,
        bytes: Vec<u8>,
    },
    /// Laminar 1.0-style run: all resources inline on every request
    /// (kept for experiment E9's baseline).
    RunWithInlineResources {
        token: Token,
        ident: Ident,
        input: RunInputWire,
        mode: RunMode,
        resources: Vec<(String, Vec<u8>)>,
    },
    /// Observability endpoint: a point-in-time [`MetricsSnapshot`].
    /// Tokenless by design — it is the ops surface, not user data.
    Metrics {},
    /// Fold the registry's write-ahead log into a fresh atomic snapshot
    /// and truncate the WAL (v5). Errors when the server runs without a
    /// data directory.
    Compact {
        token: Token,
    },
    /// Health probe (v8): liveness, readiness, and the storage state
    /// machine. Tokenless like `Metrics` — it is the surface load
    /// balancers and healthchecks poll, not user data.
    Health {},
}

impl Request {
    /// Stable endpoint name, used as the per-endpoint metrics key and in
    /// log lines.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::RegisterUser { .. } => "RegisterUser",
            Request::Login { .. } => "Login",
            Request::RegisterPe { .. } => "RegisterPe",
            Request::RegisterWorkflow { .. } => "RegisterWorkflow",
            Request::RegisterBatch { .. } => "RegisterBatch",
            Request::GetPe { .. } => "GetPe",
            Request::GetWorkflow { .. } => "GetWorkflow",
            Request::GetPesByWorkflow { .. } => "GetPesByWorkflow",
            Request::GetRegistry { .. } => "GetRegistry",
            Request::Describe { .. } => "Describe",
            Request::UpdatePeDescription { .. } => "UpdatePeDescription",
            Request::UpdateWorkflowDescription { .. } => "UpdateWorkflowDescription",
            Request::RemovePe { .. } => "RemovePe",
            Request::RemoveWorkflow { .. } => "RemoveWorkflow",
            Request::RemoveAll { .. } => "RemoveAll",
            Request::SearchLiteral { .. } => "SearchLiteral",
            Request::SearchSemantic { .. } => "SearchSemantic",
            Request::CodeRecommendation { .. } => "CodeRecommendation",
            Request::CodeCompletion { .. } => "CodeCompletion",
            Request::GetExecutions { .. } => "GetExecutions",
            Request::Run { .. } => "Run",
            Request::UploadResource { .. } => "UploadResource",
            Request::RunWithInlineResources { .. } => "RunWithInlineResources",
            Request::Metrics {} => "Metrics",
            Request::Compact { .. } => "Compact",
            Request::Health {} => "Health",
        }
    }
}

/// The versioned envelope every request travels in (see the module doc).
/// `protocol_version` defaults to `1` so pre-versioning payloads — a bare
/// externally-tagged [`Request`] object — still deserialise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    #[serde(default = "default_protocol_version")]
    pub protocol_version: u16,
    #[serde(flatten)]
    pub body: Request,
}

fn default_protocol_version() -> u16 {
    1
}

impl RequestEnvelope {
    /// Wrap a request at the current [`PROTOCOL_VERSION`].
    pub fn new(body: Request) -> Self {
        RequestEnvelope {
            protocol_version: PROTOCOL_VERSION,
            body,
        }
    }

    /// Wrap a request at an explicit version (connection-level config).
    pub fn versioned(body: Request, protocol_version: u16) -> Self {
        RequestEnvelope {
            protocol_version,
            body,
        }
    }
}

impl From<Request> for RequestEnvelope {
    fn from(body: Request) -> Self {
        RequestEnvelope::new(body)
    }
}

/// One registry row as returned to clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeInfo {
    pub id: u64,
    pub name: String,
    pub description: String,
    pub code: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowInfo {
    pub id: u64,
    pub name: String,
    pub description: String,
    pub code: String,
    pub pe_ids: Vec<u64>,
}

/// One execution-history row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionInfo {
    pub id: u64,
    pub mapping: String,
    pub input: String,
    pub status: String,
    /// First line of the recorded response, if any.
    pub output_preview: String,
}

/// A semantic-search hit (the Fig. 8 result rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticHit {
    pub id: u64,
    pub name: String,
    pub description: String,
    pub cosine_similarity: f32,
}

/// A code-recommendation hit (the Fig. 9 result rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendationHit {
    pub id: u64,
    pub name: String,
    pub description: String,
    pub score: f32,
    /// For workflow recommendations: matching member PEs ("occurrences").
    pub occurrences: usize,
    /// The most similar function/snippet, for display.
    pub similar_code: String,
    /// v9: how many pruned snippets clustered behind this hit (1 for a
    /// singleton, 0 on paths that don't cluster, e.g. workflow hits).
    #[serde(default)]
    pub cluster_size: usize,
    /// v9: the cluster-intersected common idiom (Aroma stage 5), one kept
    /// statement per line. Empty on non-pipeline paths.
    #[serde(default)]
    pub common_core: String,
}

/// Synchronous responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Token(Token),
    /// Fig. 5a's "Found PEs … Found workflows" registration summary.
    Registered {
        pe_ids: Vec<(String, u64)>,
        workflow_id: Option<(String, u64)>,
    },
    Pe(PeInfo),
    Workflow(WorkflowInfo),
    Pes(Vec<PeInfo>),
    Registry {
        pes: Vec<PeInfo>,
        workflows: Vec<WorkflowInfo>,
    },
    Description(String),
    SemanticResults(Vec<SemanticHit>),
    Recommendations(Vec<RecommendationHit>),
    /// Code-completion result: source PE + the suggested continuation.
    Completion {
        /// `None` when nothing in the registry is similar enough.
        source: Option<(u64, String)>,
        /// Suggested statements, in source order.
        lines: Vec<String>,
        /// Fraction of the source PE the snippet already covers.
        progress: f32,
    },
    /// Per-item outcomes of a `RegisterBatch` (v6), in submission order.
    BatchRegistered {
        outcomes: Vec<BatchOutcomeWire>,
    },
    /// Execution history rows.
    Executions(Vec<ExecutionInfo>),
    /// §IV-F: the server lacks these resources; upload then retry.
    NeedResources(Vec<String>),
    ResourceStored {
        name: String,
        deduplicated: bool,
    },
    Ok,
    Error(String),
    /// Typed saturation rejection: the worker pool is full. The request
    /// was **not** dispatched, so a retry after the hint is always safe.
    Busy {
        retry_after_ms: u64,
    },
    /// Typed version-mismatch rejection (see the module doc).
    Unsupported {
        server_version: u16,
        client_version: u16,
    },
    /// The server cancelled this request after its deadline elapsed with
    /// no progress.
    TimedOut {
        request_id: u64,
    },
    /// Point-in-time observability snapshot (boxed: it is much larger
    /// than the other variants).
    Metrics(Box<MetricsSnapshot>),
    /// Result of a `Compact` request (v5): what the snapshot absorbed.
    Compacted {
        /// WAL records folded into the snapshot (and truncated away).
        wal_records: u64,
        /// WAL bytes folded in.
        wal_bytes: u64,
        /// Size of the snapshot written.
        snapshot_bytes: u64,
    },
    /// Typed read-only rejection (v8): the storage layer failed a persist
    /// and the server is in degraded mode. Only mutating endpoints get
    /// this; reads keep serving. The request was **not** applied, so a
    /// retry after the hint is safe for idempotent endpoints.
    Degraded {
        reason: String,
        retry_after_ms: u64,
    },
    /// Health report (v8). `live` is always true when the server can
    /// answer at all; `ready` means it is accepting mutations (storage
    /// healthy).
    Health {
        live: bool,
        ready: bool,
        /// The storage state machine's current state.
        storage: StorageStateWire,
        /// Most recent persistence error, if any has ever occurred.
        last_persist_error: Option<String>,
        uptime_ms: u64,
        /// Healthy→Degraded transitions since the server started.
        degraded_transitions: u64,
    },
}

/// The storage state machine's state as transmitted (v8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageStateWire {
    /// Persists are succeeding; mutations are accepted.
    Healthy,
    /// A persist failed; mutations are rejected until a recovery probe
    /// passes.
    Degraded,
}

/// One frame of a (possibly streamed) reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireFrame {
    /// Complete synchronous response.
    Value(Response),
    /// First frame of a streamed reply, carrying the request id minted at
    /// ingress. Lets the TCP client classify value-vs-stream replies
    /// unambiguously and correlate frames with server-side log lines.
    Begin { request_id: u64 },
    /// One output line of a running workflow.
    Line(String),
    /// Engine-side note (container, imports).
    Info(String),
    /// Per-rank summary (verbose runs).
    Summary(String),
    /// Liveness beacon sent during quiet stretches of a stream so the
    /// client's read deadline does not fire while the engine works.
    Keepalive { request_id: u64 },
    /// One datum the enactment supervisor gave up on (v4, `DeadLetter`
    /// fault policy). Pre-v4 readers ignore it like any unknown frame.
    DeadLetter(DeadLetterEntry),
    /// Fault/retry/timeout counters for the run; sent once before `End`
    /// when the run was not fault-free (v4).
    Faults(FaultStats),
    /// Terminal frame of a run stream.
    End { ok: bool, millis: u64 },
}

/// A reply: either a single value or a frame stream.
#[derive(Debug)]
pub enum Reply {
    Value(Response),
    Stream(crossbeam_channel::Receiver<WireFrame>),
}

impl Reply {
    /// Unwrap a synchronous value (panics on a stream — test helper).
    pub fn value(self) -> Response {
        match self {
            Reply::Value(v) => v,
            Reply::Stream(_) => panic!("expected a value reply, got a stream"),
        }
    }

    /// Drain a stream reply into (lines, infos, summaries, ok).
    pub fn drain(self) -> (Vec<String>, Vec<String>, Vec<String>, bool) {
        match self {
            Reply::Value(v) => panic!("expected a stream reply, got {v:?}"),
            Reply::Stream(rx) => {
                let mut lines = Vec::new();
                let mut infos = Vec::new();
                let mut summaries = Vec::new();
                let mut ok = false;
                for f in rx.iter() {
                    match f {
                        WireFrame::Begin { .. } | WireFrame::Keepalive { .. } => {}
                        WireFrame::Line(l) => lines.push(l),
                        WireFrame::Info(i) => infos.push(i),
                        WireFrame::Summary(s) => summaries.push(s),
                        WireFrame::Value(Response::Error(e)) => {
                            infos.push(format!("error: {e}"));
                            break;
                        }
                        WireFrame::Value(Response::TimedOut { request_id }) => {
                            infos.push(format!("error: request req-{request_id} timed out"));
                            break;
                        }
                        WireFrame::Value(_) => {}
                        WireFrame::DeadLetter(d) => {
                            infos.push(format!(
                                "dead-letter: pe={} port={} attempts={} error={}",
                                d.pe,
                                d.port.as_deref().unwrap_or("-"),
                                d.attempts,
                                d.error
                            ));
                        }
                        WireFrame::Faults(s) => {
                            infos.push(format!(
                                "faults: {} faults, {} retries, {} dead-lettered, {} timeouts, {} workers replaced",
                                s.faults, s.retries, s.dead_letters, s.task_timeouts, s.worker_replacements
                            ));
                        }
                        WireFrame::End { ok: o, .. } => {
                            ok = o;
                            break;
                        }
                    }
                }
                (lines, infos, summaries, ok)
            }
        }
    }
}

/// FNV-64 content hash shared by both resource paths.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_as_json() {
        let reqs = vec![
            Request::RegisterUser {
                username: "rosa".into(),
                password: "pw".into(),
            },
            Request::SearchSemantic {
                token: 1,
                scope: SearchScope::Pe,
                query: "a pe that is able to detect anomalies".into(),
                top_n: Some(3),
            },
            Request::Run {
                token: 1,
                ident: Ident::Id(169),
                input: RunInputWire::Iterations(10),
                mode: RunMode::Multiprocess { processes: 9 },
                streaming: true,
                verbose: true,
                resources: vec![ResourceRefWire {
                    name: "input.csv".into(),
                    content_hash: 42,
                }],
                fault: FaultPolicyWire::Retry {
                    max_attempts: 3,
                    backoff_ms: 5,
                },
                task_timeout_ms: Some(2_000),
            },
        ];
        for r in reqs {
            let json = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn responses_roundtrip_as_json() {
        let resp = Response::SemanticResults(vec![SemanticHit {
            id: 178,
            name: "AnomalyDetectionPE".into(),
            description: "Anomaly detection PE.".into(),
            cosine_similarity: 0.74017,
        }]);
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
    }

    #[test]
    fn ident_conversions() {
        assert_eq!(Ident::from(5u64), Ident::Id(5));
        assert_eq!(Ident::from("isprime_wf"), Ident::Name("isprime_wf".into()));
    }

    #[test]
    fn content_hash_distinguishes() {
        assert_ne!(content_hash(b"a"), content_hash(b"b"));
        assert_eq!(content_hash(b"same"), content_hash(b"same"));
    }

    #[test]
    fn wireframes_serialise() {
        let f = WireFrame::End {
            ok: true,
            millis: 12,
        };
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<WireFrame>(&json).unwrap(), f);
        let f = WireFrame::Begin { request_id: 7 };
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<WireFrame>(&json).unwrap(), f);
    }

    #[test]
    fn version_two_search_payload_parses_without_top_n() {
        // A v2 client omits `top_n`; serde's default keeps it parsing.
        let json = r#"{"SearchSemantic":{"token":1,"scope":"Pe","query":"anomaly"}}"#;
        let req: Request = serde_json::from_str(json).unwrap();
        assert_eq!(
            req,
            Request::SearchSemantic {
                token: 1,
                scope: SearchScope::Pe,
                query: "anomaly".into(),
                top_n: None,
            }
        );
        let json = r#"{"CodeRecommendation":{"token":1,"scope":"Both","snippet":"x = 1","embedding_type":"Spt"}}"#;
        let req: Request = serde_json::from_str(json).unwrap();
        assert!(matches!(
            req,
            Request::CodeRecommendation { top_n: None, .. }
        ));
    }

    #[test]
    fn version_three_run_payload_parses_without_fault_fields() {
        // A v3 client omits `fault` and `task_timeout_ms`; serde defaults
        // keep it parsing with the pre-fault-model behaviour (FailFast).
        let json = r#"{"Run":{"token":1,"ident":{"Id":169},"input":{"Iterations":10},"mode":"Sequential","streaming":false,"verbose":false,"resources":[]}}"#;
        let req: Request = serde_json::from_str(json).unwrap();
        match req {
            Request::Run {
                fault,
                task_timeout_ms,
                ..
            } => {
                assert_eq!(fault, FaultPolicyWire::FailFast);
                assert_eq!(task_timeout_ms, None);
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn fault_frames_serialise() {
        let f = WireFrame::DeadLetter(DeadLetterEntry {
            pe: "IsPrime1".into(),
            port: Some("input".into()),
            datum: Some(Data::from(9i64)),
            error: "chaos: injected panic".into(),
            attempts: 3,
        });
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<WireFrame>(&json).unwrap(), f);
        let f = WireFrame::Faults(FaultStats {
            faults: 4,
            retries: 2,
            dead_letters: 1,
            task_timeouts: 1,
            worker_replacements: 1,
        });
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<WireFrame>(&json).unwrap(), f);
    }

    #[test]
    fn bare_request_parses_as_version_one_envelope() {
        // A pre-versioning client sends a bare externally-tagged Request.
        let json = r#"{"GetRegistry":{"token":9}}"#;
        let env: RequestEnvelope = serde_json::from_str(json).unwrap();
        assert_eq!(env.protocol_version, 1);
        assert_eq!(env.body, Request::GetRegistry { token: 9 });
    }

    #[test]
    fn envelope_roundtrips_at_current_version() {
        let env = RequestEnvelope::new(Request::Metrics {});
        assert_eq!(env.protocol_version, PROTOCOL_VERSION);
        let json = serde_json::to_string(&env).unwrap();
        assert!(json.contains("protocol_version"));
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn endpoint_names_are_stable() {
        assert_eq!(Request::Metrics {}.endpoint(), "Metrics");
        assert_eq!(
            Request::Login {
                username: "u".into(),
                password: "p".into()
            }
            .endpoint(),
            "Login"
        );
    }

    #[test]
    fn version_five_compact_roundtrips() {
        let req = Request::Compact { token: 7 };
        assert_eq!(req.endpoint(), "Compact");
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
        let resp = Response::Compacted {
            wal_records: 12,
            wal_bytes: 4096,
            snapshot_bytes: 1024,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
    }

    #[test]
    fn version_six_register_batch_roundtrips() {
        let req = Request::RegisterBatch {
            token: 7,
            items: vec![
                BatchItemWire::Pe(PeSubmission {
                    name: "IsPrime".into(),
                    code: "class IsPrime(IterativePE): ...".into(),
                    description: None,
                }),
                BatchItemWire::Workflow {
                    name: "isprime_wf".into(),
                    code: "# workflow".into(),
                    description: Some("prime sieve".into()),
                    pes: vec![PeSubmission {
                        name: "NumberProducer".into(),
                        code: "class NumberProducer(ProducerPE): ...".into(),
                        description: Some("produces numbers".into()),
                    }],
                },
            ],
        };
        assert_eq!(req.endpoint(), "RegisterBatch");
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
        let resp = Response::BatchRegistered {
            outcomes: vec![
                BatchOutcomeWire::Registered {
                    pe_ids: vec![("IsPrime".into(), 3)],
                    workflow_id: None,
                },
                BatchOutcomeWire::Failed {
                    pe_ids: vec![("NumberProducer".into(), 4)],
                    error: "duplicate Workflow name 'isprime_wf'".into(),
                },
            ],
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
    }

    #[test]
    fn version_five_payloads_parse_under_version_six() {
        // v6 adds a request variant; every v5 payload must keep parsing
        // byte-for-byte unchanged.
        let json = r#"{"Compact":{"token":7}}"#;
        assert_eq!(
            serde_json::from_str::<Request>(json).unwrap(),
            Request::Compact { token: 7 }
        );
        let json = r#"{"protocol_version":5,"RegisterPe":{"token":1,"pe":{"name":"A","code":"x = 1","description":null}}}"#;
        let env: RequestEnvelope = serde_json::from_str(json).unwrap();
        assert_eq!(env.protocol_version, 5);
        assert!(matches!(env.body, Request::RegisterPe { token: 1, .. }));
    }

    #[test]
    fn version_six_payloads_parse_under_version_seven() {
        // v7 only extends the metrics snapshot (serde-defaulted row
        // group); every v6 payload must keep parsing byte-for-byte
        // unchanged.
        let json = r#"{"protocol_version":6,"SearchSemantic":{"token":2,"scope":"Pe","query":"find primes","top_n":null}}"#;
        let env: RequestEnvelope = serde_json::from_str(json).unwrap();
        assert_eq!(env.protocol_version, 6);
        assert!(matches!(env.body, Request::SearchSemantic { token: 2, .. }));
    }

    #[test]
    fn version_eight_health_roundtrips() {
        let req = Request::Health {};
        assert_eq!(req.endpoint(), "Health");
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
        let resp = Response::Health {
            live: true,
            ready: false,
            storage: StorageStateWire::Degraded,
            last_persist_error: Some("wal append: injected ENOSPC".into()),
            uptime_ms: 12_345,
            degraded_transitions: 2,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
        let resp = Response::Degraded {
            reason: "storage degraded: wal append failed".into(),
            retry_after_ms: 500,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
    }

    #[test]
    fn version_seven_payloads_parse_under_version_eight() {
        // v8 adds a request variant, two response variants, and a
        // serde-defaulted metrics row group; every v7 payload must keep
        // parsing byte-for-byte unchanged.
        let json = r#"{"protocol_version":7,"Compact":{"token":7}}"#;
        let env: RequestEnvelope = serde_json::from_str(json).unwrap();
        assert_eq!(env.protocol_version, 7);
        assert_eq!(env.body, Request::Compact { token: 7 });
        let json = r#"{"protocol_version":7,"SearchSemantic":{"token":2,"scope":"Pe","query":"find primes","top_n":null}}"#;
        let env: RequestEnvelope = serde_json::from_str(json).unwrap();
        assert!(matches!(env.body, Request::SearchSemantic { token: 2, .. }));
    }

    #[test]
    fn version_eight_payloads_parse_under_version_nine() {
        // v9 only extends `RecommendationHit` and the metrics snapshot
        // (all serde-defaulted); every v8 payload must keep parsing
        // byte-for-byte unchanged.
        let json = r#"{"protocol_version":8,"CodeRecommendation":{"token":3,"scope":"Both","snippet":"x = 1","embedding_type":"Spt","top_n":null}}"#;
        let env: RequestEnvelope = serde_json::from_str(json).unwrap();
        assert_eq!(env.protocol_version, 8);
        assert!(matches!(
            env.body,
            Request::CodeRecommendation { token: 3, .. }
        ));
        // A v8 hit (no cluster fields) parses with the defaults.
        let json = r#"{"id":4,"name":"NumberProducer","description":"d","score":7.0,"occurrences":1,"similar_code":"def _process(self): ..."}"#;
        let hit: RecommendationHit = serde_json::from_str(json).unwrap();
        assert_eq!(hit.cluster_size, 0);
        assert_eq!(hit.common_core, "");
    }

    #[test]
    fn typed_rejections_roundtrip() {
        for resp in [
            Response::Busy { retry_after_ms: 50 },
            Response::Unsupported {
                server_version: 2,
                client_version: 9,
            },
            Response::TimedOut { request_id: 3 },
        ] {
            let json = serde_json::to_string(&resp).unwrap();
            assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
        }
    }
}
