//! The test-only clock seam behind the serving path's timers.
//!
//! Production code paths sleep and measure with the OS clock; the
//! deterministic simulation harness (`crates/sim`) needs those same
//! paths to run under *virtual* time so a seeded episode replays
//! bit-identically regardless of host load. [`Clock`] is the seam: the
//! recovery-probe timer and the transport's frame-latency model go
//! through it, [`SystemClock`] is the production implementation, and
//! [`SimClock`] advances a virtual counter instead of blocking.
//!
//! The seam deliberately does NOT cover observability timings (request
//! latency histograms, uptime): those are diagnostics, not behaviour,
//! and the simulation's oracle excludes them from its trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic clock the serving path's timers run on.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic nanoseconds since an arbitrary per-clock epoch.
    fn monotonic_nanos(&self) -> u64;

    /// Block (or virtually advance) for `d`.
    fn sleep(&self, d: Duration);
}

/// Shared handle to a clock.
pub type SharedClock = Arc<dyn Clock>;

/// The production clock: OS monotonic time and real `thread::sleep`.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl SystemClock {
    pub fn new() -> SystemClock {
        SystemClock::default()
    }
}

impl Clock for SystemClock {
    fn monotonic_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A virtual clock for deterministic simulation: `sleep` advances the
/// counter instantly (plus a scheduler yield so a timer loop driven by
/// it cannot starve other threads), so time depends only on the
/// sequence of operations, never on the host.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Advance virtual time by `d` without sleeping.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn monotonic_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone_and_sleeps() {
        let c = SystemClock::new();
        let a = c.monotonic_nanos();
        c.sleep(Duration::from_millis(2));
        let b = c.monotonic_nanos();
        assert!(b > a, "{b} must exceed {a}");
    }

    #[test]
    fn sim_clock_advances_without_blocking() {
        let c = SimClock::new();
        assert_eq!(c.monotonic_nanos(), 0);
        let t0 = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(t0.elapsed() < Duration::from_secs(1), "virtual sleep");
        assert_eq!(c.monotonic_nanos(), 3_600_000_000_000);
        c.advance(Duration::from_nanos(7));
        assert_eq!(c.monotonic_nanos(), 3_600_000_000_007);
    }
}
