//! The unified client↔server connection abstraction.
//!
//! Historically the in-process [`Transport`](crate::transport::Transport)
//! and the TCP [`NetClientTransport`](crate::net::NetClientTransport)
//! exposed two different call surfaces and the client branched between
//! them. [`Connection`] is the single trait both implement now:
//! `call` takes a [`Request`] and returns either a [`Reply`] (value or
//! frame stream) or a typed [`ConnectionError`]. Delivery shaping — the
//! §IV-E batch-vs-streaming discipline and the simulated per-frame
//! latency — is trait-level configuration via [`ConnOptions`], not a
//! property of one concrete transport.
//!
//! Error taxonomy (drives the client's retry policy):
//!
//! * [`ConnectionError::Unavailable`] — the request never reached the
//!   server (connect refused, endpoint gone). Always safe to retry.
//! * [`ConnectionError::Busy`] — typed saturation rejection from the
//!   server's bounded worker pool, issued before the request was
//!   dispatched. Always safe to retry, after the hinted delay.
//! * [`ConnectionError::TimedOut`] — no reply within the deadline; the
//!   request may have executed, so only idempotent requests retry.
//! * [`ConnectionError::Degraded`] — the server is in read-only degraded
//!   mode and rejected a mutation before applying it. The server may
//!   recover (a background probe restores it), so idempotent requests
//!   retry after the hinted delay; non-idempotent requests surface the
//!   error — NOT `is_transient`, because whether a retry is safe depends
//!   on the endpoint, not the connection.
//! * [`ConnectionError::UnsupportedVersion`] / [`ConnectionError::Protocol`]
//!   — never retried.

use crate::protocol::{Reply, Request, Response, PROTOCOL_VERSION};
use crate::transport::DeliveryMode;
use std::fmt;
use std::time::Duration;

/// Trait-level connection configuration, shared by every transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnOptions {
    /// Frame-delivery discipline (§IV-E): HTTP/1.1-style batch or
    /// HTTP/2-style streaming.
    pub delivery: DeliveryMode,
    /// Simulated one-way latency applied per delivered frame (Batch pays
    /// it once for the aggregate, Streaming once per frame).
    pub frame_latency: Duration,
    /// Protocol version stamped on every outgoing request envelope.
    pub protocol_version: u16,
    /// Client-side per-request deadline (TCP read timeout). The server's
    /// keepalive frames reset it, so only a truly stalled or dead server
    /// trips it.
    pub request_timeout: Duration,
}

impl Default for ConnOptions {
    fn default() -> Self {
        ConnOptions {
            delivery: DeliveryMode::Streaming,
            frame_latency: Duration::ZERO,
            protocol_version: PROTOCOL_VERSION,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// Typed connection-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectionError {
    /// The request never reached a server (connect refused, DNS, closed
    /// listener). Safe to retry.
    Unavailable(String),
    /// The server's worker pool is saturated; retry after the hint.
    Busy { retry_after_ms: u64 },
    /// No reply within the deadline.
    TimedOut { request_id: u64 },
    /// The server is in read-only degraded mode (storage fault) and
    /// rejected the mutation without applying it. Idempotent requests
    /// may retry after the hint — the server probes its storage in the
    /// background and recovers.
    Degraded { reason: String, retry_after_ms: u64 },
    /// The server does not speak this protocol version.
    UnsupportedVersion {
        server_version: u16,
        client_version: u16,
    },
    /// Malformed traffic or a mid-exchange transport failure (bytes may
    /// already have flowed — never retried).
    Protocol(String),
}

impl ConnectionError {
    /// Whether a retry can never duplicate work: the request provably
    /// did not start executing.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ConnectionError::Unavailable(_) | ConnectionError::Busy { .. }
        )
    }
}

impl fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectionError::Unavailable(m) => write!(f, "server unavailable: {m}"),
            ConnectionError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms} ms)")
            }
            ConnectionError::TimedOut { request_id } => {
                write!(f, "request req-{request_id} timed out")
            }
            ConnectionError::Degraded {
                reason,
                retry_after_ms,
            } => write!(
                f,
                "server degraded, read-only: {reason} (retry after {retry_after_ms} ms)"
            ),
            ConnectionError::UnsupportedVersion {
                server_version,
                client_version,
            } => write!(
                f,
                "protocol version {client_version} unsupported (server speaks ≤ {server_version})"
            ),
            ConnectionError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ConnectionError {}

/// One client↔server connection. Implemented by the in-process
/// [`Transport`](crate::transport::Transport) and the TCP
/// [`NetClientTransport`](crate::net::NetClientTransport); everything
/// above (client library, CLI, examples, tests) is written once against
/// this trait.
pub trait Connection: Send + Sync {
    /// Send one request; synchronous replies come back as
    /// `Reply::Value`, streamed replies as `Reply::Stream`. Typed
    /// rejections ([`Response::Busy`], [`Response::Unsupported`]) are
    /// surfaced as `Err`, never as values.
    fn call(&self, req: Request) -> Result<Reply, ConnectionError>;

    /// The connection's current options.
    fn options(&self) -> ConnOptions;

    /// Replace the connection's options (delivery mode, frame latency,
    /// protocol version, deadline).
    fn set_options(&mut self, opts: ConnOptions);

    /// Human-readable endpoint description (for error messages).
    fn endpoint(&self) -> String {
        "in-process".to_string()
    }
}

/// Map typed rejection values onto [`ConnectionError`]s — shared by every
/// transport so callers never see `Response::Busy` as a success value.
pub fn classify(reply: Reply) -> Result<Reply, ConnectionError> {
    match reply {
        Reply::Value(Response::Busy { retry_after_ms }) => {
            Err(ConnectionError::Busy { retry_after_ms })
        }
        Reply::Value(Response::Degraded {
            reason,
            retry_after_ms,
        }) => Err(ConnectionError::Degraded {
            reason,
            retry_after_ms,
        }),
        Reply::Value(Response::Unsupported {
            server_version,
            client_version,
        }) => Err(ConnectionError::UnsupportedVersion {
            server_version,
            client_version,
        }),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_typed_rejections() {
        let busy = classify(Reply::Value(Response::Busy { retry_after_ms: 7 }));
        assert!(matches!(
            busy,
            Err(ConnectionError::Busy { retry_after_ms: 7 })
        ));
        let vers = classify(Reply::Value(Response::Unsupported {
            server_version: 2,
            client_version: 9,
        }));
        assert!(matches!(
            vers,
            Err(ConnectionError::UnsupportedVersion {
                server_version: 2,
                client_version: 9
            })
        ));
        let ok = classify(Reply::Value(Response::Ok));
        assert!(matches!(ok, Ok(Reply::Value(Response::Ok))));
    }

    #[test]
    fn transient_classification() {
        assert!(ConnectionError::Unavailable("x".into()).is_transient());
        assert!(ConnectionError::Busy { retry_after_ms: 1 }.is_transient());
        assert!(!ConnectionError::TimedOut { request_id: 1 }.is_transient());
        assert!(!ConnectionError::Protocol("x".into()).is_transient());
        // Degraded is endpoint-dependent (idempotent-only retry), so it
        // must NOT ride the unconditional transient path.
        assert!(!ConnectionError::Degraded {
            reason: "disk".into(),
            retry_after_ms: 100
        }
        .is_transient());
    }

    #[test]
    fn classify_maps_degraded() {
        let deg = classify(Reply::Value(Response::Degraded {
            reason: "wal append: injected ENOSPC".into(),
            retry_after_ms: 250,
        }));
        match deg {
            Err(ConnectionError::Degraded {
                reason,
                retry_after_ms: 250,
            }) => assert!(reason.contains("ENOSPC")),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn default_options() {
        let o = ConnOptions::default();
        assert_eq!(o.delivery, DeliveryMode::Streaming);
        assert_eq!(o.protocol_version, PROTOCOL_VERSION);
        assert!(o.frame_latency.is_zero());
    }
}
