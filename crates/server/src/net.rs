//! TCP loopback transport: the client-server split over a real socket.
//!
//! The in-process [`Transport`](crate::transport::Transport) models the
//! §IV-E framing disciplines; this module carries the same protocol over
//! TCP so the client and server genuinely run as separate endpoints (the
//! paper's Dockerised client/server deployment, minus Docker).
//!
//! Wire format: length-prefixed JSON. Each message is a `u32` big-endian
//! byte length followed by that many bytes of JSON. The client sends one
//! [`Request`] per connection; the server answers with a sequence of
//! [`WireFrame`]s terminated by a zero-length sentinel frame. Streamed
//! frames are flushed individually — that *is* the HTTP/2-style behaviour;
//! a batch-mode client simply buffers until the sentinel.

use crate::protocol::{Reply, Request, Response, WireFrame};
use crate::server::LaminarServer;
use bytes::{Buf, BufMut, BytesMut};
use crossbeam_channel::unbounded;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Maximum accepted message size (16 MiB — resources travel inline).
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Write one length-prefixed JSON message.
fn write_msg<T: serde::Serialize>(stream: &mut TcpStream, msg: &T) -> std::io::Result<()> {
    let json = serde_json::to_vec(msg).map_err(std::io::Error::other)?;
    let mut buf = BytesMut::with_capacity(4 + json.len());
    buf.put_u32(json.len() as u32);
    buf.put_slice(&json);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Write the end-of-response sentinel (zero-length frame).
fn write_sentinel(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(&0u32.to_be_bytes())?;
    stream.flush()
}

/// Read one length-prefixed message; `Ok(None)` on the sentinel.
fn read_msg<T: serde::de::DeserializeOwned>(stream: &mut TcpStream) -> std::io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME {
        return Err(std::io::Error::other(format!("frame too large: {len}")));
    }
    let mut buf = BytesMut::zeroed(len);
    stream.read_exact(&mut buf)?;
    let value = serde_json::from_slice(buf.chunk()).map_err(std::io::Error::other)?;
    Ok(Some(value))
}

/// A running TCP server. Dropping the handle (or calling
/// [`NetServer::shutdown`]) stops the accept loop.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl NetServer {
    /// Bind and serve `server` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`NetServer::addr`]).
    pub fn bind(addr: &str, server: Arc<LaminarServer>) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        listener.set_nonblocking(true)?;
        std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let server = server.clone();
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &server);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(NetServer { addr: bound, stop })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, server: &LaminarServer) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    // One request per connection (HTTP-like).
    let Some(request): Option<Request> = read_msg(&mut stream)? else {
        return Ok(());
    };
    match server.handle(request) {
        Reply::Value(v) => {
            write_msg(&mut stream, &WireFrame::Value(v))?;
            write_sentinel(&mut stream)
        }
        Reply::Stream(rx) => {
            for frame in rx.iter() {
                let done = matches!(frame, WireFrame::End { .. })
                    || matches!(frame, WireFrame::Value(Response::Error(_)));
                write_msg(&mut stream, &frame)?;
                if done {
                    break;
                }
            }
            write_sentinel(&mut stream)
        }
    }
}

/// Client-side TCP transport: one connection per request, frames streamed
/// as the server flushes them.
#[derive(Clone)]
pub struct NetClientTransport {
    addr: SocketAddr,
}

impl NetClientTransport {
    pub fn new(addr: SocketAddr) -> Self {
        NetClientTransport { addr }
    }

    /// Send a request and return the reply. A single `Value` frame becomes
    /// `Reply::Value`; anything else becomes a frame stream fed by a
    /// reader thread.
    pub fn send(&self, req: Request) -> std::io::Result<Reply> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        write_msg(&mut stream, &req)?;

        // Read the first frame synchronously to classify the reply.
        let first: Option<WireFrame> = read_msg(&mut stream)?;
        match first {
            None => Ok(Reply::Value(Response::Error("empty reply".into()))),
            Some(WireFrame::Value(v)) => {
                // Synchronous response; consume the sentinel.
                let _: Option<WireFrame> = read_msg(&mut stream).unwrap_or(None);
                Ok(Reply::Value(v))
            }
            Some(frame) => {
                let (tx, rx) = unbounded::<WireFrame>();
                let _ = tx.send(frame);
                std::thread::spawn(move || {
                    while let Ok(Some(f)) = read_msg::<WireFrame>(&mut stream) {
                        if tx.send(f).is_err() {
                            break;
                        }
                    }
                });
                Ok(Reply::Stream(rx))
            }
        }
    }
}

/// Transport abstraction shared by the in-process and TCP clients.
pub trait RequestTransport: Send + Sync {
    fn send_request(&self, req: Request) -> Reply;
}

impl RequestTransport for crate::transport::Transport {
    fn send_request(&self, req: Request) -> Reply {
        self.send(req)
    }
}

impl RequestTransport for NetClientTransport {
    fn send_request(&self, req: Request) -> Reply {
        match self.send(req) {
            Ok(reply) => reply,
            Err(e) => Reply::Value(Response::Error(format!("transport error: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Ident, PeSubmission, RunInputWire, RunMode};

    fn serve() -> (NetServer, NetClientTransport) {
        let server = Arc::new(LaminarServer::with_stock());
        let net = NetServer::bind("127.0.0.1:0", server).expect("bind");
        let client = NetClientTransport::new(net.addr());
        (net, client)
    }

    fn token_of(reply: Reply) -> u64 {
        match reply.value() {
            Response::Token(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sync_request_over_tcp() {
        let (_srv, client) = serve();
        let token = token_of(
            client.send_request(Request::RegisterUser {
                username: "tcp".into(),
                password: "pw".into(),
            }),
        );
        assert!(token > 0);
        let reply = client.send_request(Request::GetRegistry { token });
        match reply.value() {
            Response::Registry { pes, workflows } => {
                assert!(pes.is_empty());
                assert!(workflows.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn auth_error_over_tcp() {
        let (_srv, client) = serve();
        let reply = client.send_request(Request::GetRegistry { token: 42 });
        assert!(matches!(reply.value(), Response::Error(_)));
    }

    #[test]
    fn streaming_run_over_tcp() {
        let (_srv, client) = serve();
        let token = token_of(client.send_request(Request::RegisterUser {
            username: "tcp".into(),
            password: "pw".into(),
        }));
        client
            .send_request(Request::RegisterWorkflow {
                token,
                name: "isprime_wf".into(),
                code: String::new(),
                description: Some("prime pipeline".into()),
                pes: vec![PeSubmission {
                    name: "IsPrime".into(),
                    code: "class IsPrime(IterativePE):\n    def _process(self, n):\n        return n\n".into(),
                    description: None,
                }],
            })
            .value();
        let reply = client.send_request(Request::Run {
            token,
            ident: Ident::Name("isprime_wf".into()),
            input: RunInputWire::Iterations(15),
            mode: RunMode::Multiprocess { processes: 9 },
            streaming: true,
            verbose: true,
            resources: vec![],
        });
        let (lines, _infos, summaries, ok) = reply.drain();
        assert!(ok);
        assert!(!lines.is_empty());
        for l in &lines {
            assert!(l.contains("is prime"), "{l}");
        }
        assert!(!summaries.is_empty());
    }

    #[test]
    fn concurrent_tcp_clients() {
        let (_srv, client) = serve();
        let token = token_of(client.send_request(Request::RegisterUser {
            username: "tcp".into(),
            password: "pw".into(),
        }));
        std::thread::scope(|s| {
            for i in 0..8 {
                let client = client.clone();
                s.spawn(move || {
                    let reply = client.send_request(Request::RegisterPe {
                        token,
                        pe: PeSubmission {
                            name: format!("PE{i}"),
                            code: format!("class PE{i}(IterativePE):\n    def _process(self, x):\n        return x + {i}\n"),
                            description: None,
                        },
                    });
                    assert!(matches!(reply.value(), Response::Registered { .. }));
                });
            }
        });
        let reply = client.send_request(Request::GetRegistry { token });
        match reply.value() {
            Response::Registry { pes, .. } => assert_eq!(pes.len(), 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn large_payload_roundtrip() {
        let (_srv, client) = serve();
        let token = token_of(client.send_request(Request::RegisterUser {
            username: "tcp".into(),
            password: "pw".into(),
        }));
        // A 1 MiB resource travels fine under the 16 MiB cap.
        let bytes = vec![7u8; 1024 * 1024];
        let reply = client.send_request(Request::UploadResource {
            token,
            name: "big.bin".into(),
            bytes,
        });
        assert!(matches!(reply.value(), Response::ResourceStored { .. }));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let (srv, client) = serve();
        srv.shutdown();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Either refused or reset — but never a hang.
        let result = client.send(Request::Login {
            username: "x".into(),
            password: "y".into(),
        });
        let _ = result; // both Ok(Error-reply) and Err are acceptable here
    }
}
