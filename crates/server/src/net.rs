//! TCP loopback transport: the client-server split over a real socket,
//! with a production-shaped request lifecycle.
//!
//! The in-process [`Transport`](crate::transport::Transport) models the
//! §IV-E framing disciplines; this module carries the same protocol over
//! TCP so the client and server genuinely run as separate endpoints (the
//! paper's Dockerised client/server deployment, minus Docker).
//!
//! Wire format: length-prefixed JSON (see [`crate::protocol`] for the
//! full frame and version rules). The client sends one
//! [`RequestEnvelope`] per connection; the server answers with a
//! sequence of [`WireFrame`]s terminated by a zero-length sentinel.
//!
//! Request lifecycle:
//!
//! * **Backpressure** — a bounded pool of [`NetServerConfig::max_connections`]
//!   workers serves connections handed over a rendezvous channel. When
//!   every worker is busy the accept loop bounces the connection to a
//!   dedicated rejection thread, which reads the request (so the reply is
//!   not lost to a TCP reset) and answers with the typed
//!   [`Response::Busy`] carrying a retry hint. Nothing queues invisibly.
//! * **Deadlines** — the request frame must arrive within
//!   [`NetServerConfig::handshake_timeout`]. Streamed replies send
//!   [`WireFrame::Keepalive`] during quiet stretches; a stream quiet for
//!   [`NetServerConfig::request_timeout`] is cancelled with the typed
//!   [`Response::TimedOut`] and its producer is torn down.
//! * **Disconnect propagation** — any write failure drops the frame
//!   receiver immediately, so the server-side relay and the engine
//!   observe the disconnect and stop doing work.
//! * **Graceful drain** — [`NetServer::shutdown`] stops the accept loop;
//!   [`NetServer::drain`] then waits for in-flight connections to finish
//!   up to a drain deadline.
//!
//! Everything is accounted in the server's [`Metrics`](crate::obs::Metrics)
//! registry: connection counters, per-endpoint rejection counts, timeout
//! and disconnect counters.

use crate::connection::{classify, ConnOptions, Connection, ConnectionError};
use crate::protocol::{FaultPolicyWire, Reply, Request, RequestEnvelope, Response, WireFrame};
use crate::server::LaminarServer;
use crate::transport::DeliveryMode;
use bytes::{Buf, BufMut, BytesMut};
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, TrySendError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum accepted message size (16 MiB — resources travel inline).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Serving-path tunables.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Size of the bounded worker pool — the hard cap on concurrently
    /// served connections. Excess connections get a typed `Busy` reply.
    pub max_connections: usize,
    /// A streamed reply quiet for this long is cancelled with the typed
    /// `TimedOut` reply.
    pub request_timeout: Duration,
    /// Interval between keepalive frames on a quiet stream.
    pub keepalive_interval: Duration,
    /// How long `graceful_shutdown` waits for in-flight connections.
    pub drain_timeout: Duration,
    /// How long a freshly accepted connection may take to deliver its
    /// request frame.
    pub handshake_timeout: Duration,
    /// Retry hint carried in `Busy` rejections.
    pub retry_after_hint: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 32,
            request_timeout: Duration::from_secs(30),
            keepalive_interval: Duration::from_secs(1),
            drain_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(2),
            retry_after_hint: Duration::from_millis(50),
        }
    }
}

/// Why a frame read failed (drives the typed error replies).
#[derive(Debug)]
enum ReadError {
    Io(std::io::Error),
    /// Length prefix exceeded [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload was not valid JSON for the expected type.
    Malformed(String),
}

/// Write one length-prefixed JSON message.
fn write_msg<T: serde::Serialize>(stream: &mut TcpStream, msg: &T) -> std::io::Result<()> {
    let json = serde_json::to_vec(msg).map_err(std::io::Error::other)?;
    let mut buf = BytesMut::with_capacity(4 + json.len());
    buf.put_u32(json.len() as u32);
    buf.put_slice(&json);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Write the end-of-response sentinel (zero-length frame).
fn write_sentinel(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(&0u32.to_be_bytes())?;
    stream.flush()
}

/// Read one length-prefixed message; `Ok(None)` on the sentinel.
fn read_frame<T: serde::de::DeserializeOwned>(
    stream: &mut TcpStream,
) -> Result<Option<T>, ReadError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).map_err(ReadError::Io)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME {
        return Err(ReadError::TooLarge(len));
    }
    let mut buf = BytesMut::zeroed(len);
    stream.read_exact(&mut buf).map_err(ReadError::Io)?;
    let value =
        serde_json::from_slice(buf.chunk()).map_err(|e| ReadError::Malformed(e.to_string()))?;
    Ok(Some(value))
}

/// A running TCP server with a bounded worker pool. Dropping the handle
/// (or calling [`NetServer::shutdown`]) stops the accept loop; call
/// [`NetServer::drain`] afterwards to wait for in-flight connections.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    config: NetServerConfig,
    server: Arc<LaminarServer>,
}

impl NetServer {
    /// Bind and serve `server` on `addr` with the default config (use
    /// port 0 for an ephemeral port; the bound address is available via
    /// [`NetServer::addr`]).
    pub fn bind(addr: &str, server: Arc<LaminarServer>) -> std::io::Result<NetServer> {
        NetServer::bind_with(addr, server, NetServerConfig::default())
    }

    /// Bind and serve with an explicit [`NetServerConfig`].
    pub fn bind_with(
        addr: &str,
        server: Arc<LaminarServer>,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));

        // Rendezvous channel: a handoff succeeds only when a worker is
        // actually free, so `try_send` failing *is* the saturation signal.
        let (work_tx, work_rx) = bounded::<TcpStream>(0);
        // Rejections are served off the accept thread by one bouncer;
        // its small buffer bounds the bounce backlog too.
        let (busy_tx, busy_rx) = bounded::<TcpStream>(64);

        for _ in 0..config.max_connections.max(1) {
            let work_rx: Receiver<TcpStream> = work_rx.clone();
            let server = server.clone();
            let config = config.clone();
            let active = active.clone();
            std::thread::spawn(move || {
                while let Ok(stream) = work_rx.recv() {
                    active.fetch_add(1, Ordering::SeqCst);
                    server.metrics().connections_active.inc();
                    let _ = handle_connection(stream, &server, &config);
                    server.metrics().connections_active.dec();
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            });
        }

        {
            let server = server.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                for stream in busy_rx.iter() {
                    reject_busy(stream, &server, &config);
                }
            });
        }

        let stop2 = stop.clone();
        let server_handle = server.clone();
        listener.set_nonblocking(true)?;
        std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        server.metrics().connections_accepted.inc();
                        match work_tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(stream)) => {
                                server.metrics().connections_rejected.inc();
                                // Bounce; if even the bouncer is backed
                                // up, drop the connection outright.
                                let _ = busy_tx.try_send(stream);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            // Dropping work_tx/busy_tx here lets idle workers and the
            // bouncer exit once their current connection finishes.
        });
        Ok(NetServer {
            addr: bound,
            stop,
            active,
            config,
            server: server_handle,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn config(&self) -> &NetServerConfig {
        &self.config
    }

    /// Number of connections currently being served.
    pub fn in_flight(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stop accepting new connections (non-blocking; in-flight
    /// connections keep running).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for in-flight connections to finish, up to `timeout`.
    /// Returns `true` if the server fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.active.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stop accepting, then drain up to the configured drain deadline,
    /// then fold the WAL into a snapshot with whatever drain budget is
    /// left — best-effort (skipped under degraded storage, and never
    /// blocking past the deadline), so the next start recovers from a
    /// snapshot instead of a long WAL replay.
    pub fn graceful_shutdown(&self) -> bool {
        self.shutdown();
        let start = Instant::now();
        let drained = self.drain(self.config.drain_timeout);
        let remaining = self.config.drain_timeout.saturating_sub(start.elapsed());
        if !remaining.is_zero() {
            let _ = self.server.shutdown_compact(remaining);
        }
        drained
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one bounced connection: read its request (so closing the socket
/// does not reset away the reply), account the rejection, answer `Busy`.
fn reject_busy(mut stream: TcpStream, server: &LaminarServer, config: &NetServerConfig) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .ok();
    if let Ok(Some(env)) = read_frame::<RequestEnvelope>(&mut stream) {
        let ep = server.metrics().endpoint(env.body.endpoint());
        ep.requests.inc();
        ep.rejections.inc();
    }
    let busy = WireFrame::Value(Response::Busy {
        retry_after_ms: config.retry_after_hint.as_millis() as u64,
    });
    let _ = write_msg(&mut stream, &busy);
    let _ = write_sentinel(&mut stream);
}

fn handle_connection(
    mut stream: TcpStream,
    server: &LaminarServer,
    config: &NetServerConfig,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    // One request per connection (HTTP-like); it must arrive promptly.
    stream.set_read_timeout(Some(config.handshake_timeout)).ok();
    let env: RequestEnvelope = match read_frame(&mut stream) {
        Ok(Some(env)) => env,
        Ok(None) => return Ok(()),
        Err(ReadError::TooLarge(len)) => {
            let err = WireFrame::Value(Response::Error(format!(
                "frame too large: {len} bytes (max {MAX_FRAME})"
            )));
            write_msg(&mut stream, &err)?;
            return write_sentinel(&mut stream);
        }
        Err(ReadError::Malformed(m)) => {
            let err = WireFrame::Value(Response::Error(format!("malformed request: {m}")));
            write_msg(&mut stream, &err)?;
            return write_sentinel(&mut stream);
        }
        Err(ReadError::Io(_)) => return Ok(()),
    };
    stream.set_read_timeout(None).ok();

    let (id, reply) = server.handle_envelope(env);
    match reply {
        Reply::Value(v) => {
            write_msg(&mut stream, &WireFrame::Value(v))?;
            write_sentinel(&mut stream)
        }
        Reply::Stream(rx) => {
            let mut quiet = Duration::ZERO;
            loop {
                match rx.recv_timeout(config.keepalive_interval) {
                    Ok(frame) => {
                        quiet = Duration::ZERO;
                        let done = matches!(
                            frame,
                            WireFrame::End { .. } | WireFrame::Value(Response::Error(_))
                        );
                        if write_msg(&mut stream, &frame).is_err() {
                            // Client hung up: dropping `rx` propagates the
                            // disconnect to the relay and the engine.
                            server.metrics().disconnects.inc();
                            return Ok(());
                        }
                        if done {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        quiet += config.keepalive_interval;
                        if quiet >= config.request_timeout {
                            // Stalled stream: cancel it. Dropping `rx`
                            // tears down the producer.
                            server.metrics().timeouts.inc();
                            let cancel = WireFrame::Value(Response::TimedOut { request_id: id.0 });
                            let _ = write_msg(&mut stream, &cancel);
                            break;
                        }
                        let beat = WireFrame::Keepalive { request_id: id.0 };
                        if write_msg(&mut stream, &beat).is_err() {
                            server.metrics().disconnects.inc();
                            return Ok(());
                        }
                    }
                    // Producer vanished without a terminal frame; end the
                    // response so the client is not left hanging.
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            write_sentinel(&mut stream)
        }
    }
}

/// Client-side TCP [`Connection`]: one socket per request, frames
/// delivered per the connection's [`ConnOptions`].
#[derive(Clone)]
pub struct NetClientTransport {
    addr: SocketAddr,
    opts: ConnOptions,
}

impl NetClientTransport {
    pub fn new(addr: SocketAddr) -> Self {
        NetClientTransport {
            addr,
            opts: ConnOptions::default(),
        }
    }

    pub fn with_options(mut self, opts: ConnOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Send a request and classify the reply. A reply opening with
    /// [`WireFrame::Begin`] (or any non-`Value` frame, for version-1
    /// servers) becomes a frame stream; a single `Value` frame becomes
    /// `Reply::Value`.
    pub fn send(&self, req: Request) -> Result<Reply, ConnectionError> {
        let mut stream = TcpStream::connect(self.addr)
            .map_err(|e| ConnectionError::Unavailable(e.to_string()))?;
        stream.set_nodelay(true).ok();
        // The server's keepalives arrive at least every
        // keepalive_interval, so a read timeout a bit beyond the request
        // deadline means the server is stalled or gone.
        stream
            .set_read_timeout(Some(self.opts.request_timeout + Duration::from_secs(5)))
            .ok();
        let env = RequestEnvelope::versioned(req, self.opts.protocol_version);
        write_msg(&mut stream, &env)
            .map_err(|e| ConnectionError::Unavailable(format!("send failed: {e}")))?;

        // Read the first frame synchronously to classify the reply.
        let first: Option<WireFrame> = read_frame(&mut stream).map_err(first_read_error)?;
        match first {
            None => Ok(Reply::Value(Response::Error("empty reply".into()))),
            Some(WireFrame::Value(v)) => {
                // Synchronous response; consume the sentinel.
                let _: Result<Option<WireFrame>, _> = read_frame(&mut stream);
                Ok(Reply::Value(v))
            }
            Some(frame) => Ok(Reply::Stream(self.deliver(stream, frame))),
        }
    }

    /// Feed the remaining frames of a streamed reply through a channel,
    /// honouring the configured delivery mode and frame latency.
    fn deliver(
        &self,
        mut stream: TcpStream,
        first: WireFrame,
    ) -> crossbeam_channel::Receiver<WireFrame> {
        let (tx, rx) = unbounded::<WireFrame>();
        let mode = self.opts.delivery;
        let latency = self.opts.frame_latency;
        std::thread::spawn(move || match mode {
            DeliveryMode::Streaming => {
                if !latency.is_zero() {
                    std::thread::sleep(latency);
                }
                if tx.send(first).is_err() {
                    return;
                }
                while let Ok(Some(f)) = read_frame::<WireFrame>(&mut stream) {
                    if !latency.is_zero() {
                        std::thread::sleep(latency);
                    }
                    if tx.send(f).is_err() {
                        // Receiver gone; dropping `stream` closes the
                        // socket so the server observes the disconnect.
                        break;
                    }
                }
            }
            DeliveryMode::Batch => {
                let mut held = vec![first];
                while let Ok(Some(f)) = read_frame::<WireFrame>(&mut stream) {
                    held.push(f);
                }
                if !latency.is_zero() {
                    std::thread::sleep(latency);
                }
                for f in held {
                    if tx.send(f).is_err() {
                        break;
                    }
                }
            }
        });
        rx
    }
}

/// Map a failure reading the *first* reply frame onto the retry taxonomy:
/// before any frame arrives the request provably produced no output for
/// us, and an EOF there means the server never started the reply.
fn first_read_error(e: ReadError) -> ConnectionError {
    match e {
        ReadError::Io(io)
            if io.kind() == std::io::ErrorKind::WouldBlock
                || io.kind() == std::io::ErrorKind::TimedOut =>
        {
            ConnectionError::TimedOut { request_id: 0 }
        }
        ReadError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
            ConnectionError::Unavailable("connection closed before reply".into())
        }
        ReadError::Io(io) => ConnectionError::Protocol(format!("read failed: {io}")),
        ReadError::TooLarge(n) => ConnectionError::Protocol(format!("oversized frame: {n} bytes")),
        ReadError::Malformed(m) => ConnectionError::Protocol(format!("malformed frame: {m}")),
    }
}

impl Connection for NetClientTransport {
    fn call(&self, req: Request) -> Result<Reply, ConnectionError> {
        classify(self.send(req)?)
    }

    fn options(&self) -> ConnOptions {
        self.opts
    }

    fn set_options(&mut self, opts: ConnOptions) {
        self.opts = opts;
    }

    fn endpoint(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Ident, PeSubmission, RunInputWire, RunMode};

    fn serve() -> (NetServer, NetClientTransport) {
        let server = Arc::new(LaminarServer::with_stock());
        let net = NetServer::bind("127.0.0.1:0", server).expect("bind");
        let client = NetClientTransport::new(net.addr());
        (net, client)
    }

    fn token_of(reply: Reply) -> u64 {
        match reply.value() {
            Response::Token(t) => t,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sync_request_over_tcp() {
        let (_srv, client) = serve();
        let token = token_of(
            client
                .call(Request::RegisterUser {
                    username: "tcp".into(),
                    password: "pw".into(),
                })
                .unwrap(),
        );
        assert!(token > 0);
        let reply = client.call(Request::GetRegistry { token }).unwrap();
        match reply.value() {
            Response::Registry { pes, workflows } => {
                assert!(pes.is_empty());
                assert!(workflows.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn auth_error_over_tcp() {
        let (_srv, client) = serve();
        let reply = client.call(Request::GetRegistry { token: 42 }).unwrap();
        assert!(matches!(reply.value(), Response::Error(_)));
    }

    #[test]
    fn streaming_run_over_tcp() {
        let (_srv, client) = serve();
        let token = token_of(
            client
                .call(Request::RegisterUser {
                    username: "tcp".into(),
                    password: "pw".into(),
                })
                .unwrap(),
        );
        client
            .call(Request::RegisterWorkflow {
                token,
                name: "isprime_wf".into(),
                code: String::new(),
                description: Some("prime pipeline".into()),
                pes: vec![PeSubmission {
                    name: "IsPrime".into(),
                    code: "class IsPrime(IterativePE):\n    def _process(self, n):\n        return n\n".into(),
                    description: None,
                }],
            })
            .unwrap()
            .value();
        let reply = client
            .call(Request::Run {
                token,
                ident: Ident::Name("isprime_wf".into()),
                input: RunInputWire::Iterations(15),
                mode: RunMode::Multiprocess { processes: 9 },
                streaming: true,
                verbose: true,
                resources: vec![],
                fault: FaultPolicyWire::default(),
                task_timeout_ms: None,
            })
            .unwrap();
        let (lines, _infos, summaries, ok) = reply.drain();
        assert!(ok);
        assert!(!lines.is_empty());
        for l in &lines {
            assert!(l.contains("is prime"), "{l}");
        }
        assert!(!summaries.is_empty());
    }

    #[test]
    fn concurrent_tcp_clients() {
        let (_srv, client) = serve();
        let token = token_of(
            client
                .call(Request::RegisterUser {
                    username: "tcp".into(),
                    password: "pw".into(),
                })
                .unwrap(),
        );
        std::thread::scope(|s| {
            for i in 0..8 {
                let client = client.clone();
                s.spawn(move || {
                    let reply = client
                        .call(Request::RegisterPe {
                            token,
                            pe: PeSubmission {
                                name: format!("PE{i}"),
                                code: format!("class PE{i}(IterativePE):\n    def _process(self, x):\n        return x + {i}\n"),
                                description: None,
                            },
                        })
                        .unwrap();
                    assert!(matches!(reply.value(), Response::Registered { .. }));
                });
            }
        });
        let reply = client.call(Request::GetRegistry { token }).unwrap();
        match reply.value() {
            Response::Registry { pes, .. } => assert_eq!(pes.len(), 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn large_payload_roundtrip() {
        let (_srv, client) = serve();
        let token = token_of(
            client
                .call(Request::RegisterUser {
                    username: "tcp".into(),
                    password: "pw".into(),
                })
                .unwrap(),
        );
        // A 1 MiB resource travels fine under the 16 MiB cap.
        let bytes = vec![7u8; 1024 * 1024];
        let reply = client
            .call(Request::UploadResource {
                token,
                name: "big.bin".into(),
                bytes,
            })
            .unwrap();
        assert!(matches!(reply.value(), Response::ResourceStored { .. }));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let (srv, client) = serve();
        assert!(srv.graceful_shutdown(), "no in-flight work to drain");
        std::thread::sleep(Duration::from_millis(20));
        // Either refused (typed Unavailable) or an error reply — never a
        // hang.
        let result = client.call(Request::Login {
            username: "x".into(),
            password: "y".into(),
        });
        match result {
            Err(ConnectionError::Unavailable(_)) | Err(ConnectionError::Protocol(_)) => {}
            Ok(reply) => {
                let _ = reply.value();
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_gets_typed_error() {
        let (_srv, client) = serve();
        // Hand-roll a connection that claims a 32 MiB frame.
        let mut stream = TcpStream::connect(client.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        stream
            .write_all(&((32 * 1024 * 1024) as u32).to_be_bytes())
            .unwrap();
        stream.flush().unwrap();
        let frame: Option<WireFrame> = read_frame(&mut stream).unwrap();
        match frame {
            Some(WireFrame::Value(Response::Error(e))) => {
                assert!(e.contains("frame too large"), "{e}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_request_gets_typed_error() {
        let (_srv, client) = serve();
        let mut stream = TcpStream::connect(client.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let garbage = b"this is not json";
        stream
            .write_all(&(garbage.len() as u32).to_be_bytes())
            .unwrap();
        stream.write_all(garbage).unwrap();
        stream.flush().unwrap();
        let frame: Option<WireFrame> = read_frame(&mut stream).unwrap();
        match frame {
            Some(WireFrame::Value(Response::Error(e))) => {
                assert!(e.contains("malformed request"), "{e}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn version_one_payload_still_served() {
        // A pre-versioning client: bare Request JSON, no envelope field.
        let (_srv, client) = serve();
        let mut stream = TcpStream::connect(client.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let raw = serde_json::to_vec(&Request::Login {
            username: "ghost".into(),
            password: "pw".into(),
        })
        .unwrap();
        stream.write_all(&(raw.len() as u32).to_be_bytes()).unwrap();
        stream.write_all(&raw).unwrap();
        stream.flush().unwrap();
        let frame: Option<WireFrame> = read_frame(&mut stream).unwrap();
        // Unknown user → a served (not protocol-level) error reply.
        match frame {
            Some(WireFrame::Value(Response::Error(_))) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn future_version_gets_typed_unsupported_over_tcp() {
        let (_srv, client) = serve();
        let mut opts = client.options();
        opts.protocol_version = 99;
        let client = client.clone().with_options(opts);
        let err = client
            .call(Request::Login {
                username: "x".into(),
                password: "y".into(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ConnectionError::UnsupportedVersion {
                client_version: 99,
                ..
            }
        ));
    }
}
