//! The search service's in-memory embedding indexes — a top-k vector
//! engine over three modalities.
//!
//! The registry persists embeddings as JSON CLOBs; serving queries from
//! parsed JSON on every search would dominate latency, so the server keeps
//! decoded copies here, updated incrementally on every registration or
//! removal. Three indexes, one per search modality:
//!
//! * description embeddings (UniXcoderSim) — text-to-code search (§V-B);
//! * SPT feature vectors (Aroma) — structural code recommendation (§VI);
//! * ReACC code embeddings — the `--embedding_type llm` path (Fig. 9).
//!
//! # Architecture
//!
//! **Storage** is structure-of-arrays: each dense modality is one
//! contiguous `DIM`-strided `f32` slab (row `i` at `[i*DIM, (i+1)*DIM)`),
//! so a query scan is a single forward sweep over flat memory instead of a
//! pointer chase through per-entry `Vec`s. An id→slot map gives O(1)
//! upsert (in-place overwrite of the row) and O(DIM) deletion
//! (swap-remove: the last row is copied into the vacated slot).
//!
//! **Concurrency** is read-copy-update: the whole state lives in an
//! `Arc<IndexState>` behind a lock held only long enough to clone the
//! `Arc`. Queries scan their snapshot entirely lock-free; writers mutate
//! through [`Arc::make_mut`], which is in-place when no query holds a
//! snapshot and a copy-on-write clone when one does. Registrations
//! therefore never block searches and vice versa.
//!
//! **Selection** is bounded: every ranking API takes `k` and runs a
//! size-k heap over the scan ([`embed::topk::TopK`]), O(n log k) time and
//! O(k) memory — no full-corpus sort, no per-query allocation
//! proportional to the corpus. Large corpora partition the scan across
//! rayon workers; the total `(score, key)` order makes the merged result
//! identical to the serial scan.
//!
//! **Prefiltering** (opt-in): an [`aroma::lsh::LshPrefilter`] shadows the
//! SPT modality and, past a size threshold, shrinks the exact-rescore set
//! from the whole corpus to the band-colliding candidate pool.
//!
//! **Quantized tier** (opt-in): each dense modality additionally keeps an
//! `i8` code slab plus per-row `f32` scales (per-row symmetric
//! quantization, ~4× fewer bytes per scanned row). Dense rankings then run
//! **two-phase**: a quantized candidate pass over all rows selects a
//! rescore window of `rescore_window · k` rows, and only those are scored
//! against the `f32` slab — final scores and ranking stay full precision.
//! The quantized slabs live inside [`IndexState`], so the RCU snapshot
//! swap publishes both tiers atomically, and a monotone `generation`
//! counter (bumped per published write) lets the server's result cache
//! scope entries to one snapshot — publication invalidates by key miss,
//! with no explicit invalidation protocol.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::Arc;

use aroma::lsh::{LshConfig, LshPrefilter, LshSearchStats};
use embed::dense::{dot, slab_scan_above, slab_topk, PAR_SCAN_THRESHOLD};
use embed::quant::{quantize_into, two_phase_topk, QuantizedVec, TwoPhaseStats};
use embed::topk::{ScoredRow, TopK};
use embed::{DenseVec, ReaccSim, DIM};
use parking_lot::RwLock;
use rayon::prelude::*;
use spt::FeatureVec;

/// What kind of registry row an index entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    Pe,
    Workflow,
}

/// Encode `(id, kind)` into the stable ranking/tie-break key. Keeps id
/// order primary so ties still break by ascending id, with kind as the
/// final discriminant (the old full-sort left same-score same-id
/// cross-kind order unspecified).
#[inline]
fn entry_key(id: u64, kind: EntryKind) -> u64 {
    debug_assert!(id < u64::MAX / 2, "registry ids stay far below 2^63");
    (id << 1) | matches!(kind, EntryKind::Workflow) as u64
}

#[inline]
fn key_id(key: u64) -> u64 {
    key >> 1
}

#[inline]
fn key_kind(key: u64) -> EntryKind {
    if key & 1 == 0 {
        EntryKind::Pe
    } else {
        EntryKind::Workflow
    }
}

/// The opt-in int8 tier: per-row symmetric quantizations of both dense
/// slabs, row-aligned with them and maintained through the exact same
/// upsert / swap-remove / clear motions.
#[derive(Clone, Default)]
struct QuantState {
    /// `i8` codes, `keys.len() * DIM` per modality.
    desc_codes: Vec<i8>,
    reacc_codes: Vec<i8>,
    /// Per-row quantization scales (`max|v| / 127`).
    desc_scales: Vec<f32>,
    reacc_scales: Vec<f32>,
}

impl QuantState {
    /// Quantize one row into the tier — append when `row` is the new
    /// tail, overwrite in place otherwise (mirrors the slab upsert).
    fn set_row(&mut self, row: usize, desc: &[f32], reacc: &[f32]) {
        let mut dc = [0i8; DIM];
        let mut rc = [0i8; DIM];
        let ds = quantize_into(desc, &mut dc);
        let rs = quantize_into(reacc, &mut rc);
        if row == self.desc_scales.len() {
            self.desc_scales.push(ds);
            self.desc_codes.extend_from_slice(&dc);
            self.reacc_scales.push(rs);
            self.reacc_codes.extend_from_slice(&rc);
        } else {
            self.desc_scales[row] = ds;
            self.desc_codes[row * DIM..(row + 1) * DIM].copy_from_slice(&dc);
            self.reacc_scales[row] = rs;
            self.reacc_codes[row * DIM..(row + 1) * DIM].copy_from_slice(&rc);
        }
    }

    /// Mirror of the slab swap-remove: last row into the vacated stride.
    fn swap_remove(&mut self, row: usize, last: usize) {
        self.desc_codes
            .copy_within(last * DIM..(last + 1) * DIM, row * DIM);
        self.desc_codes.truncate(last * DIM);
        self.desc_scales.swap_remove(row);
        self.reacc_codes
            .copy_within(last * DIM..(last + 1) * DIM, row * DIM);
        self.reacc_codes.truncate(last * DIM);
        self.reacc_scales.swap_remove(row);
    }

    fn clear(&mut self) {
        self.desc_codes.clear();
        self.desc_scales.clear();
        self.reacc_codes.clear();
        self.reacc_scales.clear();
    }
}

/// One immutable snapshot of all three modalities. Cloned (copy-on-write)
/// only when a writer mutates while a query still holds the previous
/// snapshot.
#[derive(Clone, Default)]
struct IndexState {
    /// `entry_key(id, kind)` per row — ranking tie-break + slot-map key.
    keys: Vec<u64>,
    kinds: Vec<EntryKind>,
    /// Description-embedding slab, `keys.len() * DIM` values.
    desc: Vec<f32>,
    /// ReACC code-embedding slab, `keys.len() * DIM` values.
    reacc: Vec<f32>,
    /// Sparse SPT feature vectors, row-aligned with the slabs.
    spt: Vec<FeatureVec>,
    /// entry key → row.
    slots: HashMap<u64, usize>,
    pes: usize,
    workflows: usize,
    /// Opt-in MinHash prefilter shadowing the SPT modality.
    lsh: Option<LshPrefilter>,
    /// Opt-in int8 tier shadowing both dense slabs.
    quant: Option<QuantState>,
    /// Monotone snapshot generation, bumped once per published write.
    /// Result-cache entries key on it, so a new publication invalidates
    /// them by construction.
    generation: u64,
}

impl IndexState {
    fn upsert(
        &mut self,
        id: u64,
        kind: EntryKind,
        desc: DenseVec,
        spt: FeatureVec,
        reacc: DenseVec,
    ) {
        debug_assert_eq!(desc.values.len(), DIM);
        debug_assert_eq!(reacc.values.len(), DIM);
        let key = entry_key(id, kind);
        if let Some(lsh) = &mut self.lsh {
            lsh.insert(key, &spt);
        }
        let row = match self.slots.entry(key) {
            MapEntry::Occupied(e) => {
                let row = *e.get();
                self.desc[row * DIM..(row + 1) * DIM].copy_from_slice(&desc.values);
                self.reacc[row * DIM..(row + 1) * DIM].copy_from_slice(&reacc.values);
                self.spt[row] = spt;
                row
            }
            MapEntry::Vacant(e) => {
                let row = self.keys.len();
                e.insert(row);
                self.keys.push(key);
                self.kinds.push(kind);
                self.desc.extend_from_slice(&desc.values);
                self.reacc.extend_from_slice(&reacc.values);
                self.spt.push(spt);
                match kind {
                    EntryKind::Pe => self.pes += 1,
                    EntryKind::Workflow => self.workflows += 1,
                }
                row
            }
        };
        if let Some(q) = &mut self.quant {
            q.set_row(
                row,
                &self.desc[row * DIM..(row + 1) * DIM],
                &self.reacc[row * DIM..(row + 1) * DIM],
            );
        }
    }

    fn remove(&mut self, id: u64, kind: EntryKind) {
        let key = entry_key(id, kind);
        let Some(row) = self.slots.remove(&key) else {
            return;
        };
        if let Some(lsh) = &mut self.lsh {
            lsh.remove(key);
        }
        match kind {
            EntryKind::Pe => self.pes -= 1,
            EntryKind::Workflow => self.workflows -= 1,
        }
        let last = self.keys.len() - 1;
        self.keys.swap_remove(row);
        self.kinds.swap_remove(row);
        self.spt.swap_remove(row);
        // Slab swap-remove: move the last row into the vacated stride,
        // then shrink. With `row == last` the copy is a no-op onto itself.
        self.desc
            .copy_within(last * DIM..(last + 1) * DIM, row * DIM);
        self.desc.truncate(last * DIM);
        self.reacc
            .copy_within(last * DIM..(last + 1) * DIM, row * DIM);
        self.reacc.truncate(last * DIM);
        if let Some(q) = &mut self.quant {
            q.swap_remove(row, last);
        }
        if row != last {
            self.slots.insert(self.keys[row], row);
        }
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.kinds.clear();
        self.desc.clear();
        self.reacc.clear();
        self.spt.clear();
        self.slots.clear();
        self.pes = 0;
        self.workflows = 0;
        if let Some(lsh) = &mut self.lsh {
            lsh.clear();
        }
        if let Some(q) = &mut self.quant {
            q.clear();
        }
    }

    #[inline]
    fn accepts(&self, row: usize, kind: Option<EntryKind>) -> bool {
        kind.is_none_or(|k| self.kinds[row] == k)
    }
}

/// Construction-time options for [`SearchIndexes`].
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Build a MinHash-LSH prefilter on the SPT modality.
    pub lsh: Option<LshConfig>,
    /// Corpus size at which the prefilter engages.
    pub lsh_min_entries: usize,
    /// Maintain the int8 tier and answer dense rankings two-phase.
    pub quantized: bool,
    /// Exact-rescore window as a multiple of `k` (clamped to ≥ 1).
    pub rescore_window: usize,
}

/// Default rescore window: rescore `4·k` candidates per query.
pub const DEFAULT_RESCORE_WINDOW: usize = 4;

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            lsh: None,
            lsh_min_entries: usize::MAX,
            quantized: false,
            rescore_window: DEFAULT_RESCORE_WINDOW,
        }
    }
}

/// Per-modality index footprint: bytes each scan tier streams for the
/// current row count (`i8` tier bytes are 0 when the tier is off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierBytes {
    pub rows: usize,
    pub desc_f32: usize,
    pub desc_i8: usize,
    pub reacc_f32: usize,
    pub reacc_i8: usize,
}

/// Which dense modality a ranking runs over.
#[derive(Clone, Copy)]
enum DenseSlab {
    Desc,
    Reacc,
}

/// The three search indexes, kept consistent with the registry by the
/// server's write paths.
pub struct SearchIndexes {
    state: RwLock<Arc<IndexState>>,
    /// SPT corpus size at which the LSH prefilter (when built) engages.
    lsh_min_entries: usize,
    /// Two-phase rescore window multiple (`Some` ⇒ quantized tier on).
    rescore_window: Option<usize>,
}

impl Default for SearchIndexes {
    fn default() -> Self {
        SearchIndexes::new()
    }
}

/// A scored index hit.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexHit {
    pub id: u64,
    pub kind: EntryKind,
    pub score: f32,
}

impl SearchIndexes {
    /// Exact-scan indexes (no LSH prefilter, no quantized tier).
    pub fn new() -> Self {
        SearchIndexes::with_options(IndexOptions::default())
    }

    /// Indexes with a MinHash-LSH prefilter on the SPT modality that
    /// engages once the corpus reaches `min_entries` (below that, exact
    /// scanning is both faster and lossless).
    pub fn with_spt_prefilter(config: LshConfig, min_entries: usize) -> Self {
        SearchIndexes::with_options(IndexOptions {
            lsh: Some(config),
            lsh_min_entries: min_entries,
            ..IndexOptions::default()
        })
    }

    /// Indexes with the full option set (LSH prefilter and/or the int8
    /// two-phase tier).
    pub fn with_options(opts: IndexOptions) -> Self {
        SearchIndexes {
            state: RwLock::new(Arc::new(IndexState {
                lsh: opts.lsh.map(LshPrefilter::new),
                quant: opts.quantized.then(QuantState::default),
                ..IndexState::default()
            })),
            lsh_min_entries: opts.lsh_min_entries,
            rescore_window: opts.quantized.then(|| opts.rescore_window.max(1)),
        }
    }

    /// Whether the int8 two-phase tier is maintained.
    pub fn quantized(&self) -> bool {
        self.rescore_window.is_some()
    }

    /// Current snapshot generation (bumped once per published write).
    /// Cache entries keyed on it go stale — and therefore miss — the
    /// moment a new snapshot publishes.
    pub fn generation(&self) -> u64 {
        self.state.read().generation
    }

    /// Bytes each scan tier holds for the current corpus (feeds the
    /// `search_quant` byte gauges; the i8 tier counts codes + scales).
    pub fn tier_bytes(&self) -> TierBytes {
        let st = self.state.read();
        let rows = st.keys.len();
        let f32_bytes = rows * DIM * std::mem::size_of::<f32>();
        let i8_bytes = if st.quant.is_some() {
            rows * (DIM * std::mem::size_of::<i8>() + std::mem::size_of::<f32>())
        } else {
            0
        };
        TierBytes {
            rows,
            desc_f32: f32_bytes,
            desc_i8: i8_bytes,
            reacc_f32: f32_bytes,
            reacc_i8: i8_bytes,
        }
    }

    /// Test/bench introspection: clones of the quantized tier's slabs as
    /// `(desc scales, desc codes, reacc scales, reacc codes)`. The slab
    /// bit-identity property suite compares these across construction
    /// orders (per-row vs bulk vs registry replay).
    pub fn quant_slabs(&self) -> Option<(Vec<f32>, Vec<i8>, Vec<f32>, Vec<i8>)> {
        let st = self.state.read();
        st.quant.as_ref().map(|q| {
            (
                q.desc_scales.clone(),
                q.desc_codes.clone(),
                q.reacc_scales.clone(),
                q.reacc_codes.clone(),
            )
        })
    }

    /// Clone the current snapshot (an `Arc` bump — queries then scan it
    /// without holding any lock).
    fn snapshot(&self) -> Arc<IndexState> {
        self.state.read().clone()
    }

    /// Insert or replace the entry for `(kind, id)`, embedding `code` for
    /// the ReACC modality.
    pub fn upsert(
        &self,
        id: u64,
        kind: EntryKind,
        desc: DenseVec,
        spt_vec: FeatureVec,
        code: &str,
    ) {
        let reacc = ReaccSim::new().embed_code(code);
        self.upsert_embedded(id, kind, desc, spt_vec, reacc);
    }

    /// Insert or replace with a pre-computed ReACC embedding (the warm-load
    /// path embeds registry rows in parallel before touching the index).
    pub fn upsert_embedded(
        &self,
        id: u64,
        kind: EntryKind,
        desc: DenseVec,
        spt_vec: FeatureVec,
        reacc: DenseVec,
    ) {
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut *guard);
        st.upsert(id, kind, desc, spt_vec, reacc);
        st.generation = st.generation.wrapping_add(1);
    }

    /// Insert or replace many pre-embedded entries under a *single*
    /// copy-on-write clone — the batched-ingestion path publishes one RCU
    /// snapshot swap per batch instead of one per row. Row-for-row
    /// equivalent to calling [`upsert_embedded`](Self::upsert_embedded) in
    /// order.
    pub fn bulk_upsert_embedded(
        &self,
        rows: Vec<(u64, EntryKind, DenseVec, FeatureVec, DenseVec)>,
    ) {
        if rows.is_empty() {
            return;
        }
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut *guard);
        for (id, kind, desc, spt_vec, reacc) in rows {
            st.upsert(id, kind, desc, spt_vec, reacc);
        }
        st.generation = st.generation.wrapping_add(1);
    }

    pub fn remove(&self, id: u64, kind: EntryKind) {
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut *guard);
        st.remove(id, kind);
        st.generation = st.generation.wrapping_add(1);
    }

    pub fn clear(&self) {
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut *guard);
        st.clear();
        st.generation = st.generation.wrapping_add(1);
    }

    pub fn len(&self) -> usize {
        self.state.read().keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.read().keys.is_empty()
    }

    /// `(PE entries, workflow entries)` — feeds the index-size gauges.
    pub fn counts(&self) -> (usize, usize) {
        let st = self.state.read();
        (st.pes, st.workflows)
    }

    /// One dense ranking for both modalities. Zero queries short-circuit
    /// (a zero vector scores 0 against everything — scanning would return
    /// `k` arbitrary zero-scored rows). When the quantized tier is on and
    /// the corpus outgrows the rescore window, the scan runs two-phase:
    /// int8 candidate pass, then exact `f32` rescore of the window — final
    /// scores are always full-precision dots.
    fn rank_dense(
        &self,
        slab: DenseSlab,
        query: &DenseVec,
        kind: Option<EntryKind>,
        k: usize,
    ) -> (Vec<IndexHit>, Option<TwoPhaseStats>) {
        if query.is_zero() {
            return (Vec::new(), None);
        }
        let st = self.snapshot();
        let values = match slab {
            DenseSlab::Desc => &st.desc,
            DenseSlab::Reacc => &st.reacc,
        };
        if let (Some(factor), Some(q)) = (self.rescore_window, &st.quant) {
            let window = k.saturating_mul(factor).max(k);
            if k > 0 && st.keys.len() > window {
                let (codes, scales) = match slab {
                    DenseSlab::Desc => (&q.desc_codes, &q.desc_scales),
                    DenseSlab::Reacc => (&q.reacc_codes, &q.reacc_scales),
                };
                let qquant = QuantizedVec::quantize(&query.values);
                let (rows, stats) = two_phase_topk(
                    &query.values,
                    &qquant,
                    values,
                    codes,
                    scales,
                    &st.keys,
                    k,
                    window,
                    |row| st.accepts(row, kind),
                );
                return (to_hits(&st, rows), Some(stats));
            }
        }
        let rows = slab_topk(&query.values, values, &st.keys, k, |row| {
            st.accepts(row, kind)
        });
        (to_hits(&st, rows), None)
    }

    /// Top-`k` by cosine of description embeddings (semantic text search).
    pub fn rank_semantic(
        &self,
        query: &DenseVec,
        kind: Option<EntryKind>,
        k: usize,
    ) -> Vec<IndexHit> {
        self.rank_semantic_with_stats(query, kind, k).0
    }

    /// Like [`rank_semantic`](Self::rank_semantic), also reporting the
    /// two-phase scan stats when the quantized tier answered the query
    /// (`None` ⇒ exact `f32` scan).
    pub fn rank_semantic_with_stats(
        &self,
        query: &DenseVec,
        kind: Option<EntryKind>,
        k: usize,
    ) -> (Vec<IndexHit>, Option<TwoPhaseStats>) {
        self.rank_dense(DenseSlab::Desc, query, kind, k)
    }

    /// Top-`k` by ReACC code-embedding cosine (`--embedding_type llm`).
    pub fn rank_reacc(&self, query: &DenseVec, kind: Option<EntryKind>, k: usize) -> Vec<IndexHit> {
        self.rank_reacc_with_stats(query, kind, k).0
    }

    /// Like [`rank_reacc`](Self::rank_reacc), also reporting the two-phase
    /// scan stats when the quantized tier answered the query.
    pub fn rank_reacc_with_stats(
        &self,
        query: &DenseVec,
        kind: Option<EntryKind>,
        k: usize,
    ) -> (Vec<IndexHit>, Option<TwoPhaseStats>) {
        self.rank_dense(DenseSlab::Reacc, query, kind, k)
    }

    /// Top-`k` by SPT feature overlap (structural code search).
    pub fn rank_spt(&self, query: &FeatureVec, kind: Option<EntryKind>, k: usize) -> Vec<IndexHit> {
        self.rank_spt_with_stats(query, kind, k).0
    }

    /// Like [`rank_spt`](Self::rank_spt), also reporting the LSH candidate
    /// pool when the prefilter engaged (`None` ⇒ exact scan).
    pub fn rank_spt_with_stats(
        &self,
        query: &FeatureVec,
        kind: Option<EntryKind>,
        k: usize,
    ) -> (Vec<IndexHit>, Option<LshSearchStats>) {
        let st = self.snapshot();
        if let Some(lsh) = &st.lsh {
            if st.keys.len() >= self.lsh_min_entries && !query.is_empty() {
                let candidates = lsh.candidates(query);
                let stats = LshSearchStats {
                    candidates: candidates.len(),
                    indexed: lsh.len(),
                };
                let mut top = TopK::new(k);
                for key in candidates {
                    if kind.is_some_and(|kf| key_kind(key) != kf) {
                        continue;
                    }
                    // The prefilter shadows the slot map, so a candidate
                    // always resolves; guard anyway.
                    let Some(&row) = st.slots.get(&key) else {
                        continue;
                    };
                    top.push(query.overlap(&st.spt[row]), key, row);
                }
                return (to_hits(&st, top.into_sorted()), Some(stats));
            }
        }
        (to_hits(&st, spt_topk(&st, query, kind, k)), None)
    }

    /// *All* SPT hits with overlap ≥ `min_score`, best first. The
    /// workflow-scope recommendation aggregates member PEs and therefore
    /// needs every match above threshold, not a fixed k; the allocation is
    /// proportional to the number of matches, not the corpus.
    pub fn rank_spt_above(
        &self,
        query: &FeatureVec,
        kind: Option<EntryKind>,
        min_score: f32,
    ) -> Vec<IndexHit> {
        let st = self.snapshot();
        let rows = slab_scan_above(
            st.spt.len(),
            |row| query.overlap(&st.spt[row]),
            |row| st.accepts(row, kind),
            &st.keys,
            min_score,
        );
        to_hits(&st, rows)
    }

    /// *All* ReACC hits with cosine ≥ `min_score`, best first — the dense
    /// counterpart of [`rank_spt_above`](Self::rank_spt_above), used by the
    /// workflow-scope `--embedding_type llm` recommendation. Zero queries
    /// short-circuit like the top-k paths.
    pub fn rank_reacc_above(
        &self,
        query: &DenseVec,
        kind: Option<EntryKind>,
        min_score: f32,
    ) -> Vec<IndexHit> {
        if query.is_zero() {
            return Vec::new();
        }
        let st = self.snapshot();
        let rows = slab_scan_above(
            st.keys.len(),
            |row| dot(&query.values, &st.reacc[row * DIM..(row + 1) * DIM]),
            |row| st.accepts(row, kind),
            &st.keys,
            min_score,
        );
        to_hits(&st, rows)
    }
}

/// Exact bounded SPT scan, partitioned across rayon workers past the
/// threshold (each worker folds an O(k) accumulator).
fn spt_topk(
    st: &IndexState,
    query: &FeatureVec,
    kind: Option<EntryKind>,
    k: usize,
) -> Vec<ScoredRow> {
    if st.spt.len() >= PAR_SCAN_THRESHOLD {
        st.spt
            .par_iter()
            .enumerate()
            .fold(
                || TopK::new(k),
                |mut top, (row, v)| {
                    if st.accepts(row, kind) {
                        top.push(query.overlap(v), st.keys[row], row);
                    }
                    top
                },
            )
            .reduce(|| TopK::new(k), TopK::merge)
            .into_sorted()
    } else {
        let mut top = TopK::new(k);
        for (row, v) in st.spt.iter().enumerate() {
            if st.accepts(row, kind) {
                top.push(query.overlap(v), st.keys[row], row);
            }
        }
        top.into_sorted()
    }
}

fn to_hits(st: &IndexState, rows: Vec<ScoredRow>) -> Vec<IndexHit> {
    rows.into_iter()
        .map(|r| IndexHit {
            id: key_id(r.key),
            kind: st.kinds[r.row],
            score: r.score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use embed::{Embedder, UniXcoderSim};
    use spt::Spt;

    const ALL: usize = usize::MAX;

    fn add(ix: &SearchIndexes, id: u64, kind: EntryKind, desc: &str, code: &str) {
        ix.upsert(
            id,
            kind,
            UniXcoderSim::new().embed(desc),
            Spt::parse_source(code).feature_vec(),
            code,
        );
    }

    #[test]
    fn semantic_ranking() {
        let ix = SearchIndexes::new();
        add(
            &ix,
            1,
            EntryKind::Pe,
            "detects anomalies in sensor data",
            "class A: pass",
        );
        add(
            &ix,
            2,
            EntryKind::Pe,
            "checks whether a number is prime",
            "class B: pass",
        );
        let q = UniXcoderSim::new().embed("a pe that is able to detect anomalies");
        let hits = ix.rank_semantic(&q, Some(EntryKind::Pe), ALL);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].score > hits[1].score);
        // Bounded k keeps the best hit only.
        assert_eq!(ix.rank_semantic(&q, Some(EntryKind::Pe), 1), hits[..1]);
    }

    #[test]
    fn spt_ranking_and_kind_filter() {
        let ix = SearchIndexes::new();
        add(
            &ix,
            1,
            EntryKind::Pe,
            "",
            "def f(x):\n    return random.randint(1, 1000)\n",
        );
        add(
            &ix,
            2,
            EntryKind::Workflow,
            "",
            "def g(y):\n    return y + 1\n",
        );
        let q = Spt::parse_source("random.randint(1, 1000)").feature_vec();
        let pe_hits = ix.rank_spt(&q, Some(EntryKind::Pe), ALL);
        assert_eq!(pe_hits.len(), 1);
        assert_eq!(pe_hits[0].id, 1);
        let all = ix.rank_spt(&q, None, ALL);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, 1);
    }

    #[test]
    fn upsert_replaces() {
        let ix = SearchIndexes::new();
        add(&ix, 1, EntryKind::Pe, "old", "x = 1\n");
        add(
            &ix,
            1,
            EntryKind::Pe,
            "new description about words",
            "x = 1\n",
        );
        assert_eq!(ix.len(), 1);
        let q = UniXcoderSim::new().embed("words");
        let hits = ix.rank_semantic(&q, None, ALL);
        assert!(hits[0].score > 0.0, "new embedding in effect");
    }

    #[test]
    fn remove_and_clear() {
        let ix = SearchIndexes::new();
        add(&ix, 1, EntryKind::Pe, "a", "x = 1\n");
        add(&ix, 2, EntryKind::Workflow, "b", "y = 2\n");
        assert_eq!(ix.counts(), (1, 1));
        ix.remove(1, EntryKind::Pe);
        assert_eq!(ix.len(), 1);
        ix.remove(1, EntryKind::Workflow); // no-op: wrong kind
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.counts(), (0, 1));
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.counts(), (0, 0));
    }

    #[test]
    fn reacc_ranking_prefers_clones() {
        let ix = SearchIndexes::new();
        let code = "def f(a):\n    return a * 2\n";
        add(&ix, 1, EntryKind::Pe, "", code);
        add(
            &ix,
            2,
            EntryKind::Pe,
            "",
            "class Other:\n    def g(self):\n        pass\n",
        );
        let q = ReaccSim::new().embed_code(code);
        let hits = ix.rank_reacc(&q, None, ALL);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].score > 0.99);
    }

    #[test]
    fn swap_remove_keeps_rows_consistent() {
        // Remove from the middle, then verify every surviving entry still
        // ranks itself first on its own code — i.e. slabs, spt rows, and
        // slot map all moved together.
        let ix = SearchIndexes::new();
        let codes: Vec<String> = (0..8)
            .map(|i| format!("def f{i}(a):\n    return a * {i} + {i}\n"))
            .collect();
        for (i, code) in codes.iter().enumerate() {
            add(
                &ix,
                i as u64,
                EntryKind::Pe,
                &format!("pe number {i}"),
                code,
            );
        }
        ix.remove(3, EntryKind::Pe);
        ix.remove(0, EntryKind::Pe);
        assert_eq!(ix.len(), 6);
        for (i, code) in codes.iter().enumerate() {
            if i == 3 || i == 0 {
                continue;
            }
            let q = ReaccSim::new().embed_code(code);
            let hits = ix.rank_reacc(&q, None, 1);
            assert_eq!(hits[0].id, i as u64, "self-retrieval after swap-remove");
        }
        // The removed ids never surface again.
        let q = ReaccSim::new().embed_code(&codes[3]);
        assert!(ix.rank_reacc(&q, None, ALL).iter().all(|h| h.id != 3));
    }

    #[test]
    fn rank_spt_above_returns_all_matches() {
        let ix = SearchIndexes::new();
        let shared = "def f(data):\n    total = 0\n    for item in data:\n        total += item\n    return total\n";
        add(&ix, 1, EntryKind::Pe, "", shared);
        add(&ix, 2, EntryKind::Pe, "", shared);
        add(&ix, 3, EntryKind::Pe, "", "x = 1\n");
        let q = Spt::parse_source(shared).feature_vec();
        let above = ix.rank_spt_above(&q, Some(EntryKind::Pe), 6.0);
        assert_eq!(above.len(), 2);
        assert_eq!(above[0].id, 1, "tie broken by id");
        assert_eq!(above[1].id, 2);
        // Must equal filtering the full ranking.
        let full: Vec<IndexHit> = ix
            .rank_spt(&q, Some(EntryKind::Pe), ALL)
            .into_iter()
            .filter(|h| h.score >= 6.0)
            .collect();
        assert_eq!(above, full);
    }

    #[test]
    fn rank_reacc_above_matches_filtered_ranking() {
        let ix = SearchIndexes::new();
        let shared = "def f(a):\n    return a * 2\n";
        add(&ix, 1, EntryKind::Pe, "", shared);
        add(&ix, 2, EntryKind::Pe, "", shared);
        add(
            &ix,
            3,
            EntryKind::Pe,
            "",
            "class Other:\n    def g(self):\n        pass\n",
        );
        let q = ReaccSim::new().embed_code(shared);
        let above = ix.rank_reacc_above(&q, Some(EntryKind::Pe), 0.9);
        assert_eq!(above.len(), 2);
        assert_eq!(above[0].id, 1, "tie broken by id");
        let full: Vec<IndexHit> = ix
            .rank_reacc(&q, Some(EntryKind::Pe), ALL)
            .into_iter()
            .filter(|h| h.score >= 0.9)
            .collect();
        assert_eq!(above, full);
    }

    #[test]
    fn lsh_prefilter_engages_past_threshold() {
        let ix = SearchIndexes::with_spt_prefilter(LshConfig::default(), 4);
        let mk = |i: usize| {
            format!("def f{i}(data):\n    total{i} = {i}\n    for item in data:\n        total{i} += item\n    return total{i}\n")
        };
        for i in 0..3 {
            add(&ix, i as u64, EntryKind::Pe, "", &mk(i));
        }
        let q = Spt::parse_source(&mk(0)).feature_vec();
        // Below threshold: exact scan, no stats.
        let (_, stats) = ix.rank_spt_with_stats(&q, None, 5);
        assert!(stats.is_none());
        for i in 3..12 {
            add(&ix, i as u64, EntryKind::Pe, "", &mk(i));
        }
        let (hits, stats) = ix.rank_spt_with_stats(&q, None, 5);
        let stats = stats.expect("prefilter engaged");
        assert_eq!(stats.indexed, 12);
        assert!(stats.candidates <= stats.indexed);
        // The near-identical family collides; the top hit is the clone.
        assert_eq!(hits.first().map(|h| h.id), Some(0));
        // Removal propagates into the prefilter.
        ix.remove(0, EntryKind::Pe);
        let (hits, _) = ix.rank_spt_with_stats(&q, None, 5);
        assert!(hits.iter().all(|h| h.id != 0));
    }

    #[test]
    fn bulk_upsert_matches_sequential_upserts() {
        let seq = SearchIndexes::new();
        let bulk = SearchIndexes::new();
        let entries: Vec<(u64, EntryKind, String, String)> = (0..6)
            .map(|i| {
                let kind = if i % 3 == 0 {
                    EntryKind::Workflow
                } else {
                    EntryKind::Pe
                };
                (
                    i as u64,
                    kind,
                    format!("entry number {i} does thing {i}"),
                    format!("def f{i}(a):\n    return a * {i} + {i}\n"),
                )
            })
            .collect();
        let embed_row = |(id, kind, desc, code): &(u64, EntryKind, String, String)| {
            (
                *id,
                *kind,
                UniXcoderSim::new().embed(desc),
                Spt::parse_source(code).feature_vec(),
                ReaccSim::new().embed_code(code),
            )
        };
        for e in &entries {
            let (id, kind, desc, spt_vec, reacc) = embed_row(e);
            seq.upsert_embedded(id, kind, desc, spt_vec, reacc);
        }
        bulk.bulk_upsert_embedded(entries.iter().map(embed_row).collect());
        assert_eq!(seq.len(), bulk.len());
        assert_eq!(seq.counts(), bulk.counts());
        for (_, _, desc, code) in &entries {
            let dq = UniXcoderSim::new().embed(desc);
            assert_eq!(
                seq.rank_semantic(&dq, None, ALL),
                bulk.rank_semantic(&dq, None, ALL)
            );
            let sq = Spt::parse_source(code).feature_vec();
            assert_eq!(seq.rank_spt(&sq, None, ALL), bulk.rank_spt(&sq, None, ALL));
            let rq = ReaccSim::new().embed_code(code);
            assert_eq!(
                seq.rank_reacc(&rq, None, ALL),
                bulk.rank_reacc(&rq, None, ALL)
            );
        }
        // An empty bulk call is a no-op, not a snapshot churn.
        bulk.bulk_upsert_embedded(Vec::new());
        assert_eq!(bulk.len(), entries.len());
    }

    #[test]
    fn same_id_across_kinds_coexist() {
        let ix = SearchIndexes::new();
        add(&ix, 5, EntryKind::Pe, "pe five", "x = 1\n");
        add(&ix, 5, EntryKind::Workflow, "workflow five", "y = 2\n");
        assert_eq!(ix.len(), 2);
        ix.remove(5, EntryKind::Pe);
        assert_eq!(ix.len(), 1);
        let q = UniXcoderSim::new().embed("workflow five");
        let hits = ix.rank_semantic(&q, None, ALL);
        assert_eq!(hits[0].kind, EntryKind::Workflow);
    }

    fn quantized_ix(window: usize) -> SearchIndexes {
        SearchIndexes::with_options(IndexOptions {
            quantized: true,
            rescore_window: window,
            ..IndexOptions::default()
        })
    }

    #[test]
    fn zero_query_short_circuits() {
        let ix = SearchIndexes::new();
        add(&ix, 1, EntryKind::Pe, "some description", "x = 1\n");
        let zero = UniXcoderSim::new().embed("");
        assert!(zero.is_zero());
        assert!(ix.rank_semantic(&zero, None, ALL).is_empty());
        assert!(ix.rank_reacc(&zero, None, ALL).is_empty());
        assert!(ix.rank_reacc_above(&zero, None, -1.0).is_empty());
    }

    #[test]
    fn quantized_two_phase_matches_exact_when_window_covers_accepted() {
        let exact = SearchIndexes::new();
        let quant = quantized_ix(2);
        for ix in [&exact, &quant] {
            for i in 0..6u64 {
                add(
                    ix,
                    i,
                    EntryKind::Pe,
                    &format!("pe number {i} parses logs"),
                    &format!("def f{i}(a):\n    return a * {i} + {i}\n"),
                );
            }
            for i in 6..13u64 {
                add(
                    ix,
                    i,
                    EntryKind::Workflow,
                    &format!("workflow number {i} moves files"),
                    &format!("def g{i}(b):\n    return b - {i}\n"),
                );
            }
        }
        assert!(quant.quantized());
        let q = UniXcoderSim::new().embed("a pe that parses logs");
        let (hits, stats) = quant.rank_semantic_with_stats(&q, Some(EntryKind::Pe), 3);
        let stats = stats.expect("13 rows > window 6 ⇒ two-phase engaged");
        assert_eq!(stats.window, 6);
        // Window ≥ every accepted row ⇒ the rescore set is the full kind
        // slice, so the result is bit-identical to the exact scan.
        assert_eq!(hits, exact.rank_semantic(&q, Some(EntryKind::Pe), 3));
        let rq = ReaccSim::new().embed_code("def f2(a):\n    return a * 2 + 2\n");
        let (rhits, rstats) = quant.rank_reacc_with_stats(&rq, Some(EntryKind::Pe), 3);
        assert!(rstats.is_some());
        assert_eq!(rhits, exact.rank_reacc(&rq, Some(EntryKind::Pe), 3));
    }

    #[test]
    fn quantized_self_retrieval_with_tight_window() {
        // rescore_window = 1 forces the narrowest possible phase-2 set;
        // the swap-remove in the middle additionally exercises quant-slab
        // row moves staying aligned with the f32 slabs.
        let ix = quantized_ix(1);
        let codes: Vec<String> = (0..8)
            .map(|i| format!("def f{i}(a):\n    return a * {i} + {i}\n"))
            .collect();
        for (i, code) in codes.iter().enumerate() {
            add(
                &ix,
                i as u64,
                EntryKind::Pe,
                &format!("pe number {i}"),
                code,
            );
        }
        ix.remove(3, EntryKind::Pe);
        for (i, code) in codes.iter().enumerate() {
            if i == 3 {
                continue;
            }
            let q = ReaccSim::new().embed_code(code);
            let (hits, stats) = ix.rank_reacc_with_stats(&q, None, 1);
            assert!(stats.is_some(), "7 rows > window 1 ⇒ two-phase engaged");
            assert_eq!(hits[0].id, i as u64, "self-retrieval through int8 tier");
            assert!(hits[0].score > 0.99, "final score is the exact f32 dot");
        }
    }

    #[test]
    fn generation_bumps_once_per_published_write() {
        let ix = SearchIndexes::new();
        let g0 = ix.generation();
        add(&ix, 1, EntryKind::Pe, "a", "x = 1\n");
        assert_eq!(ix.generation(), g0 + 1);
        let row = |id: u64, desc: &str, code: &str| {
            (
                id,
                EntryKind::Pe,
                UniXcoderSim::new().embed(desc),
                Spt::parse_source(code).feature_vec(),
                ReaccSim::new().embed_code(code),
            )
        };
        ix.bulk_upsert_embedded(vec![row(2, "b", "y = 2\n"), row(3, "c", "z = 3\n")]);
        assert_eq!(ix.generation(), g0 + 2, "one bump per batch, not per row");
        ix.remove(1, EntryKind::Pe);
        assert_eq!(ix.generation(), g0 + 3);
        ix.clear();
        assert_eq!(ix.generation(), g0 + 4);
    }

    #[test]
    fn tier_bytes_reports_quantized_savings() {
        let ix = quantized_ix(DEFAULT_RESCORE_WINDOW);
        for i in 0..4u64 {
            add(
                &ix,
                i,
                EntryKind::Pe,
                "a description",
                &format!("v{i} = {i}\n"),
            );
        }
        let tb = ix.tier_bytes();
        assert_eq!(tb.rows, 4);
        assert_eq!(tb.desc_f32, 4 * DIM * 4);
        assert_eq!(tb.desc_i8, 4 * (DIM + 4));
        assert!(
            tb.desc_f32 >= 3 * tb.desc_i8,
            "acceptance: scan tier ≥ 3× smaller"
        );
        assert_eq!(tb.reacc_f32, tb.desc_f32);
        assert_eq!(tb.reacc_i8, tb.desc_i8);
        // Quantization is strictly opt-in: the default index carries no
        // i8 tier at all.
        let plain = SearchIndexes::new();
        assert!(!plain.quantized());
        assert_eq!(plain.tier_bytes().desc_i8, 0);
    }
}
