//! The search service's in-memory embedding indexes.
//!
//! The registry persists embeddings as JSON CLOBs; serving queries from
//! parsed JSON on every search would dominate latency, so the server keeps
//! decoded copies here, updated incrementally on every registration or
//! removal. Three indexes, one per search modality:
//!
//! * description embeddings (UniXcoderSim) — text-to-code search (§V-B);
//! * SPT feature vectors (Aroma) — structural code recommendation (§VI);
//! * ReACC code embeddings — the `--embedding_type llm` path (Fig. 9).

use embed::{DenseVec, ReaccSim};
use parking_lot::RwLock;
use spt::FeatureVec;

/// What kind of registry row an index entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    Pe,
    Workflow,
}

struct Entry {
    id: u64,
    kind: EntryKind,
    desc: DenseVec,
    spt: FeatureVec,
    reacc: DenseVec,
}

/// The three search indexes, kept consistent with the registry by the
/// server's write paths.
#[derive(Default)]
pub struct SearchIndexes {
    entries: RwLock<Vec<Entry>>,
}

/// A scored index hit.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexHit {
    pub id: u64,
    pub kind: EntryKind,
    pub score: f32,
}

impl SearchIndexes {
    pub fn new() -> Self {
        SearchIndexes::default()
    }

    /// Insert or replace the entry for `(kind, id)`.
    pub fn upsert(
        &self,
        id: u64,
        kind: EntryKind,
        desc: DenseVec,
        spt_vec: FeatureVec,
        code: &str,
    ) {
        let reacc = ReaccSim::new().embed_code(code);
        let mut entries = self.entries.write();
        entries.retain(|e| !(e.id == id && e.kind == kind));
        entries.push(Entry {
            id,
            kind,
            desc,
            spt: spt_vec,
            reacc,
        });
    }

    pub fn remove(&self, id: u64, kind: EntryKind) {
        self.entries
            .write()
            .retain(|e| !(e.id == id && e.kind == kind));
    }

    pub fn clear(&self) {
        self.entries.write().clear();
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    fn rank<F>(&self, kind_filter: Option<EntryKind>, score: F) -> Vec<IndexHit>
    where
        F: Fn(&Entry) -> f32,
    {
        let entries = self.entries.read();
        let mut hits: Vec<IndexHit> = entries
            .iter()
            .filter(|e| kind_filter.is_none_or(|k| e.kind == k))
            .map(|e| IndexHit {
                id: e.id,
                kind: e.kind,
                score: score(e),
            })
            .collect();
        hits.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits
    }

    /// Rank by cosine of description embeddings (semantic text search).
    pub fn rank_semantic(&self, query: &DenseVec, kind: Option<EntryKind>) -> Vec<IndexHit> {
        self.rank(kind, |e| query.cosine(&e.desc))
    }

    /// Rank by SPT feature overlap (structural code search).
    pub fn rank_spt(&self, query: &FeatureVec, kind: Option<EntryKind>) -> Vec<IndexHit> {
        self.rank(kind, |e| query.overlap(&e.spt))
    }

    /// Rank by ReACC-style code-embedding cosine (`--embedding_type llm`).
    pub fn rank_reacc(&self, query: &DenseVec, kind: Option<EntryKind>) -> Vec<IndexHit> {
        self.rank(kind, |e| query.cosine(&e.reacc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embed::{Embedder, UniXcoderSim};
    use spt::Spt;

    fn add(ix: &SearchIndexes, id: u64, kind: EntryKind, desc: &str, code: &str) {
        ix.upsert(
            id,
            kind,
            UniXcoderSim::new().embed(desc),
            Spt::parse_source(code).feature_vec(),
            code,
        );
    }

    #[test]
    fn semantic_ranking() {
        let ix = SearchIndexes::new();
        add(
            &ix,
            1,
            EntryKind::Pe,
            "detects anomalies in sensor data",
            "class A: pass",
        );
        add(
            &ix,
            2,
            EntryKind::Pe,
            "checks whether a number is prime",
            "class B: pass",
        );
        let q = UniXcoderSim::new().embed("a pe that is able to detect anomalies");
        let hits = ix.rank_semantic(&q, Some(EntryKind::Pe));
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn spt_ranking_and_kind_filter() {
        let ix = SearchIndexes::new();
        add(
            &ix,
            1,
            EntryKind::Pe,
            "",
            "def f(x):\n    return random.randint(1, 1000)\n",
        );
        add(
            &ix,
            2,
            EntryKind::Workflow,
            "",
            "def g(y):\n    return y + 1\n",
        );
        let q = Spt::parse_source("random.randint(1, 1000)").feature_vec();
        let pe_hits = ix.rank_spt(&q, Some(EntryKind::Pe));
        assert_eq!(pe_hits.len(), 1);
        assert_eq!(pe_hits[0].id, 1);
        let all = ix.rank_spt(&q, None);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, 1);
    }

    #[test]
    fn upsert_replaces() {
        let ix = SearchIndexes::new();
        add(&ix, 1, EntryKind::Pe, "old", "x = 1\n");
        add(
            &ix,
            1,
            EntryKind::Pe,
            "new description about words",
            "x = 1\n",
        );
        assert_eq!(ix.len(), 1);
        let q = UniXcoderSim::new().embed("words");
        let hits = ix.rank_semantic(&q, None);
        assert!(hits[0].score > 0.0, "new embedding in effect");
    }

    #[test]
    fn remove_and_clear() {
        let ix = SearchIndexes::new();
        add(&ix, 1, EntryKind::Pe, "a", "x = 1\n");
        add(&ix, 2, EntryKind::Workflow, "b", "y = 2\n");
        ix.remove(1, EntryKind::Pe);
        assert_eq!(ix.len(), 1);
        ix.remove(1, EntryKind::Workflow); // no-op: wrong kind
        assert_eq!(ix.len(), 1);
        ix.clear();
        assert!(ix.is_empty());
    }

    #[test]
    fn reacc_ranking_prefers_clones() {
        let ix = SearchIndexes::new();
        let code = "def f(a):\n    return a * 2\n";
        add(&ix, 1, EntryKind::Pe, "", code);
        add(
            &ix,
            2,
            EntryKind::Pe,
            "",
            "class Other:\n    def g(self):\n        pass\n",
        );
        let q = ReaccSim::new().embed_code(code);
        let hits = ix.rank_reacc(&q, None);
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].score > 0.99);
    }
}
