//! The served recommendation subsystem: a persistent [`AromaEngine`]
//! kept in lockstep with registry mutations.
//!
//! The engine holds PE *source code* (the Aroma pipeline reparses
//! candidates during prune & rerank), which the search indexes never
//! stored — so it is its own RCU cell rather than a fourth modality of
//! [`SearchIndexes`]. The concurrency scheme is identical: the whole
//! engine lives in an `Arc<RecoState>` behind a lock held only long
//! enough to clone the `Arc`. A recommendation runs entirely on its
//! snapshot, lock-free; writers mutate through [`Arc::make_mut`]
//! (in-place when no query holds the snapshot, copy-on-write otherwise)
//! and bump a monotone generation once per published write, so the
//! server's full-pipeline result cache scopes entries to one snapshot
//! and staleness is impossible by construction.
//!
//! Only PEs are indexed: workflow-scope recommendations aggregate PE
//! hits over workflow membership (Fig. 9 bottom), they never run the
//! pipeline against workflow code. That aggregation lives here too, as
//! [`sweep_workflows`] — the inverted-map sweep that replaced the old
//! O(workflows × hits × pe_ids) `contains` scan.
//!
//! [`SearchIndexes`]: crate::indexes::SearchIndexes

use std::collections::HashMap;
use std::sync::Arc;

use aroma::{AromaConfig, AromaEngine, Snippet};
use parking_lot::RwLock;

/// One immutable snapshot of the recommendation engine. Cloned
/// (copy-on-write) only when a writer mutates while a query still holds
/// the previous snapshot.
#[derive(Clone)]
pub struct RecoState {
    pub engine: AromaEngine,
    /// Monotone snapshot generation, bumped once per published write.
    pub generation: u64,
}

/// The RCU cell the server publishes the engine through.
pub struct RecoIndexes {
    state: RwLock<Arc<RecoState>>,
}

impl RecoIndexes {
    pub fn new(config: AromaConfig) -> Self {
        RecoIndexes {
            state: RwLock::new(Arc::new(RecoState {
                engine: AromaEngine::new(config),
                generation: 0,
            })),
        }
    }

    /// The current snapshot. Queries run against it lock-free; later
    /// writes publish new snapshots without disturbing it.
    pub fn snapshot(&self) -> Arc<RecoState> {
        self.state.read().clone()
    }

    /// Current snapshot generation (bumped once per published write).
    /// Cache keys carry it so publication invalidates by key miss.
    pub fn generation(&self) -> u64 {
        self.state.read().generation
    }

    pub fn len(&self) -> usize {
        self.state.read().engine.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.read().engine.is_empty()
    }

    /// Insert or replace one PE snippet.
    pub fn upsert(&self, id: u64, name: &str, code: &str) {
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut guard);
        st.engine.upsert(Snippet::new(id, name, code));
        st.generation = st.generation.wrapping_add(1);
    }

    /// Insert or replace many PE snippets in one published write (one
    /// snapshot swap, one generation bump — the warm-load and
    /// `RegisterBatch` path).
    pub fn bulk_upsert(&self, snippets: Vec<Snippet>) {
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut guard);
        st.engine.add_batch(snippets);
        st.generation = st.generation.wrapping_add(1);
    }

    pub fn remove(&self, id: u64) -> bool {
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut guard);
        let removed = st.engine.remove(id);
        st.generation = st.generation.wrapping_add(1);
        removed
    }

    pub fn clear(&self) {
        let mut guard = self.state.write();
        let st = Arc::make_mut(&mut guard);
        st.engine.clear();
        st.generation = st.generation.wrapping_add(1);
    }
}

/// Workflow-scope aggregation (Fig. 9 bottom): rank workflows by the
/// summed scores of their matching member PEs. Inverts `pe_hits` into a
/// hash map once, then sweeps each workflow's member list with O(1)
/// lookups — O(hits + Σ|pe_ids|) instead of the old
/// O(workflows × hits × pe_ids) nested `contains` scan. A member id
/// listed twice still counts once, exactly like the scan it replaced.
///
/// Returns `(workflow_id, summed_score, occurrences)` for every workflow
/// with at least one matching member, sorted score-descending with ties
/// broken by ascending id.
pub fn sweep_workflows<'a>(
    pe_hits: &[(u64, f32)],
    workflows: impl IntoIterator<Item = (u64, &'a [u64])>,
) -> Vec<(u64, f32, usize)> {
    // The map carries each hit's rank position so the per-workflow sum
    // runs in hit order — float addition isn't associative, and bit
    // identity with the scan this replaced is part of the contract.
    let by_id: HashMap<u64, (usize, f32)> = pe_hits
        .iter()
        .enumerate()
        .map(|(pos, &(id, score))| (id, (pos, score)))
        .collect();
    let mut out: Vec<(u64, f32, usize)> = workflows
        .into_iter()
        .filter_map(|(wf_id, pe_ids)| {
            let mut matched: Vec<(usize, f32)> = Vec::new();
            for id in pe_ids {
                if let Some(&(pos, s)) = by_id.get(id) {
                    if !matched.iter().any(|&(p, _)| p == pos) {
                        matched.push((pos, s));
                    }
                }
            }
            if matched.is_empty() {
                return None;
            }
            matched.sort_unstable_by_key(|&(pos, _)| pos);
            let score = matched.iter().map(|&(_, s)| s).sum();
            Some((wf_id, score, matched.len()))
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACC: &str = "total = 0\nfor item in data:\n    total += item\n";

    #[test]
    fn generation_bumps_once_per_published_write() {
        let reco = RecoIndexes::new(AromaConfig::default());
        let g0 = reco.generation();
        reco.upsert(1, "A", ACC);
        assert_eq!(reco.generation(), g0 + 1);
        reco.bulk_upsert(vec![
            Snippet::new(2, "B", "x = f(y)\n"),
            Snippet::new(3, "C", "with open(p) as fh:\n    fh.read()\n"),
        ]);
        assert_eq!(reco.generation(), g0 + 2, "one bump per batch, not per row");
        assert_eq!(reco.len(), 3);
        assert!(reco.remove(2));
        assert_eq!(reco.generation(), g0 + 3);
        reco.clear();
        assert_eq!(reco.generation(), g0 + 4);
        assert!(reco.is_empty());
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let reco = RecoIndexes::new(AromaConfig::default());
        reco.upsert(1, "SumPE", ACC);
        let snap = reco.snapshot();
        reco.remove(1);
        // The old snapshot still answers from its own state.
        assert_eq!(snap.engine.len(), 1);
        assert!(!snap.engine.recommend(ACC).is_empty());
        assert!(reco.snapshot().engine.recommend(ACC).is_empty());
        assert_ne!(snap.generation, reco.generation());
    }

    #[test]
    fn upsert_replaces_by_id() {
        let reco = RecoIndexes::new(AromaConfig::default());
        reco.upsert(1, "A", ACC);
        reco.upsert(1, "A2", "x = open(path)\n");
        assert_eq!(reco.len(), 1);
        let snap = reco.snapshot();
        assert_eq!(snap.engine.index().get(1).unwrap().name, "A2");
    }

    /// The pre-inversion aggregation, verbatim from the old server sweep.
    fn naive_sweep<'a>(
        pe_hits: &[(u64, f32)],
        workflows: impl IntoIterator<Item = (u64, &'a [u64])>,
    ) -> Vec<(u64, f32, usize)> {
        let mut out: Vec<(u64, f32, usize)> = workflows
            .into_iter()
            .filter_map(|(wf_id, pe_ids)| {
                let matching: Vec<&(u64, f32)> = pe_hits
                    .iter()
                    .filter(|(id, _)| pe_ids.contains(id))
                    .collect();
                if matching.is_empty() {
                    return None;
                }
                Some((wf_id, matching.iter().map(|(_, s)| s).sum(), matching.len()))
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    #[test]
    fn inverted_sweep_matches_naive_contains_scan() {
        // Deterministic synthetic membership: workflow w holds members
        // {w, w+1, … w+4} mod 40; hits cover every third PE id.
        let memberships: Vec<(u64, Vec<u64>)> = (0..50u64)
            .map(|w| (w + 1000, (0..5).map(|m| (w + m) % 40).collect()))
            .collect();
        let pe_hits: Vec<(u64, f32)> = (0..40u64)
            .filter(|id| id % 3 == 0)
            .map(|id| (id, 6.0 + id as f32 * 0.25))
            .collect();
        let wfs = || memberships.iter().map(|(id, pes)| (*id, pes.as_slice()));
        let fast = sweep_workflows(&pe_hits, wfs());
        let naive = naive_sweep(&pe_hits, wfs());
        assert_eq!(fast.len(), naive.len());
        for (f, n) in fast.iter().zip(&naive) {
            assert_eq!(f.0, n.0);
            assert_eq!(f.1.to_bits(), n.1.to_bits(), "wf {}", f.0);
            assert_eq!(f.2, n.2);
        }
        assert!(!fast.is_empty());
    }

    #[test]
    fn sweep_counts_duplicate_members_once() {
        let pe_hits = [(7u64, 6.5f32)];
        let members: &[u64] = &[7, 7, 9];
        let out = sweep_workflows(&pe_hits, [(1u64, members)]);
        assert_eq!(out, vec![(1, 6.5, 1)]);
    }

    #[test]
    fn sweep_skips_workflows_without_matches() {
        let pe_hits = [(1u64, 8.0f32), (2, 7.0)];
        let a: &[u64] = &[1, 2];
        let b: &[u64] = &[3];
        let out = sweep_workflows(&pe_hits, [(10u64, a), (11, b)]);
        assert_eq!(out, vec![(10, 15.0, 2)]);
    }
}
