//! `laminar-server` — the Laminar server (paper §III).
//!
//! "The server coordinates system functionality, organized into layers for
//! controllers, services, models, and data access." The layering here:
//!
//! * [`protocol`] — the wire model: [`protocol::Request`] /
//!   [`protocol::Response`] / streamed [`protocol::WireFrame`]s (the
//!   controller surface);
//! * [`server`] — the controller: session auth, request dispatch;
//! * [`indexes`] — the search service's in-memory embedding indexes
//!   (description embeddings, SPT feature vectors, ReACC code vectors),
//!   updated incrementally on every registration, with an opt-in int8
//!   two-phase scan tier;
//! * [`cache`] — the opt-in query-path caches: an LRU over query
//!   embeddings, a result cache scoped to the index snapshot
//!   generation, and a full-pipeline recommendation cache scoped to both
//!   snapshot generations;
//! * [`reco`] — the recommendation subsystem: a persistent
//!   [`aroma::AromaEngine`] behind its own Arc-snapshot RCU, kept in
//!   lockstep with registry mutations, plus the inverted workflow-scope
//!   aggregation sweep;
//! * [`resources`] — the §IV-F resource cache: content-hash dedup,
//!   multipart upload, bytes-on-wire accounting;
//! * [`transport`] — batch (HTTP/1.1-style) vs streaming (HTTP/2-style)
//!   response delivery (§IV-E), with an optional per-frame latency model
//!   for the benches;
//! * [`connection`] — the unified [`connection::Connection`] trait both
//!   transports implement, with [`connection::ConnOptions`] carrying the
//!   delivery mode, frame latency, protocol version and deadline;
//! * [`obs`] — the serving-path observability layer: per-request ids,
//!   lock-free per-endpoint counters and latency histograms, and the
//!   serialisable [`obs::MetricsSnapshot`] behind the `metrics` endpoint;
//! * [`clock`] — the test-only clock seam behind the serving path's
//!   timers (recovery probe, frame-latency model), so the deterministic
//!   simulation harness can run them under virtual time;
//! * [`health`] — the storage-health state machine behind read-only
//!   degraded mode: the first persistence error rejects further
//!   mutations while reads keep serving, and a background probe
//!   ([`server::LaminarServer::probe_storage`]) restores `Healthy`.
//!
//! The data-access layer is the `laminar-registry` crate; the models are
//! its row types.

pub mod cache;
pub mod clock;
pub mod connection;
pub mod health;
pub mod indexes;
pub mod net;
pub mod obs;
pub mod protocol;
pub mod reco;
pub mod resources;
pub mod server;
pub mod transport;

pub use cache::{QueryCache, QueryModality, RecoKey, ResultKey, ResultOp};
pub use clock::{Clock, SharedClock, SimClock, SystemClock};
pub use connection::{classify, ConnOptions, Connection, ConnectionError};
pub use health::StorageHealth;
pub use indexes::{IndexOptions, SearchIndexes, TierBytes};
pub use net::{NetClientTransport, NetServer, NetServerConfig, MAX_FRAME};
pub use obs::{
    EnactmentSnapshot, EndpointSnapshot, Metrics, MetricsSnapshot, RecoSnapshot, RequestId,
    SearchQuantSnapshot, SearchSnapshot, StorageHealthSnapshot,
};
pub use protocol::{
    EmbeddingType, FaultPolicyWire, Ident, PeSubmission, Reply, Request, RequestEnvelope, Response,
    RunMode, SearchScope, SemanticHit, StorageStateWire, WireFrame, PROTOCOL_VERSION,
};
pub use reco::{sweep_workflows, RecoIndexes, RecoState};
pub use resources::{ResourceCache, ResourceRef};
pub use server::{LaminarServer, ServerConfig, ServerError};
pub use transport::{DeliveryMode, Transport};
