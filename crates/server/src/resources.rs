//! Resource management and caching (paper §IV-F).
//!
//! Laminar 1.0 serialised a `resources/` directory into every execution
//! request — "repeated transmission of potentially large files". Laminar
//! 2.0 sends *references* (name + content hash); the server answers from
//! its cache and asks for only the missing files through a multipart
//! upload endpoint. This module implements the cache with bytes-on-wire
//! accounting so experiment E9 can quantify the saving.

use crate::protocol::{content_hash, ResourceRefWire};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Reference to a resource by name + content hash.
pub type ResourceRef = ResourceRefWire;

#[derive(Default)]
struct CacheState {
    /// content hash → bytes.
    by_hash: HashMap<u64, Vec<u8>>,
    /// name → hash of the latest upload under that name.
    by_name: HashMap<String, u64>,
    bytes_received: u64,
    uploads: u64,
    dedup_hits: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// The server-side resource cache.
#[derive(Default)]
pub struct ResourceCache {
    state: RwLock<CacheState>,
}

/// Cache statistics for E9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceStats {
    pub bytes_received: u64,
    pub uploads: u64,
    pub dedup_hits: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl ResourceCache {
    pub fn new() -> Self {
        ResourceCache::default()
    }

    /// Check a run request's resource references; returns the names that
    /// must be uploaded before execution can proceed.
    pub fn missing(&self, refs: &[ResourceRef]) -> Vec<String> {
        let mut st = self.state.write();
        let mut missing = Vec::new();
        for r in refs {
            if st.by_hash.contains_key(&r.content_hash) {
                st.cache_hits += 1;
            } else {
                st.cache_misses += 1;
                missing.push(r.name.clone());
            }
        }
        missing
    }

    /// Multipart upload of one file. Returns `true` when the content was
    /// already cached under another name (dedup).
    pub fn store(&self, name: &str, bytes: Vec<u8>) -> bool {
        let hash = content_hash(&bytes);
        let mut st = self.state.write();
        st.bytes_received += bytes.len() as u64;
        st.uploads += 1;
        let dedup = st.by_hash.contains_key(&hash);
        if dedup {
            st.dedup_hits += 1;
        } else {
            st.by_hash.insert(hash, bytes);
        }
        st.by_name.insert(name.to_string(), hash);
        dedup
    }

    /// Laminar 1.0 baseline: resources arrive inline with every request —
    /// counted in full, no cache consulted.
    pub fn receive_inline(&self, resources: &[(String, Vec<u8>)]) {
        let mut st = self.state.write();
        for (_, bytes) in resources {
            st.bytes_received += bytes.len() as u64;
            st.uploads += 1;
        }
    }

    /// Fetch a resource's bytes by name (the execution engine's view).
    pub fn get(&self, name: &str) -> Option<Vec<u8>> {
        let st = self.state.read();
        let hash = st.by_name.get(name)?;
        st.by_hash.get(hash).cloned()
    }

    pub fn contains_hash(&self, hash: u64) -> bool {
        self.state.read().by_hash.contains_key(&hash)
    }

    pub fn stats(&self) -> ResourceStats {
        let st = self.state.read();
        ResourceStats {
            bytes_received: st.bytes_received,
            uploads: st.uploads,
            dedup_hits: st.dedup_hits,
            cache_hits: st.cache_hits,
            cache_misses: st.cache_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ref(name: &str, bytes: &[u8]) -> ResourceRef {
        ResourceRef {
            name: name.to_string(),
            content_hash: content_hash(bytes),
        }
    }

    #[test]
    fn miss_then_upload_then_hit() {
        let cache = ResourceCache::new();
        let data = b"col1,col2\n1,2\n".to_vec();
        let r = make_ref("input.csv", &data);
        assert_eq!(cache.missing(std::slice::from_ref(&r)), vec!["input.csv"]);
        assert!(!cache.store("input.csv", data.clone()));
        assert!(cache.missing(&[r]).is_empty(), "second run hits the cache");
        assert_eq!(cache.get("input.csv").unwrap(), data);
        let s = cache.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.bytes_received, 14);
    }

    #[test]
    fn content_dedup_across_names() {
        let cache = ResourceCache::new();
        let data = b"shared bytes".to_vec();
        assert!(!cache.store("a.bin", data.clone()));
        assert!(cache.store("b.bin", data.clone()), "same content → dedup");
        assert_eq!(cache.stats().dedup_hits, 1);
        assert_eq!(cache.get("a.bin").unwrap(), cache.get("b.bin").unwrap());
    }

    #[test]
    fn changed_content_is_a_miss() {
        let cache = ResourceCache::new();
        let v1 = b"version 1".to_vec();
        cache.store("f", v1.clone());
        let v2 = b"version 2".to_vec();
        let r2 = make_ref("f", &v2);
        assert_eq!(cache.missing(&[r2]), vec!["f"], "hash mismatch → re-upload");
    }

    #[test]
    fn inline_baseline_counts_everything() {
        let cache = ResourceCache::new();
        let payload = vec![
            ("a".to_string(), vec![0u8; 1000]),
            ("b".to_string(), vec![0u8; 500]),
        ];
        // Three "executions" (the 1.0 behaviour): all bytes re-sent each time.
        for _ in 0..3 {
            cache.receive_inline(&payload);
        }
        assert_eq!(cache.stats().bytes_received, 4500);
    }

    #[test]
    fn cached_flow_transmits_once() {
        // E9's shape: E executions of a workflow needing one big resource.
        let cache = ResourceCache::new();
        let data = vec![7u8; 10_000];
        let r = make_ref("big.bin", &data);
        for run in 0..5 {
            let missing = cache.missing(std::slice::from_ref(&r));
            if run == 0 {
                assert_eq!(missing.len(), 1);
                cache.store("big.bin", data.clone());
            } else {
                assert!(missing.is_empty());
            }
        }
        assert_eq!(
            cache.stats().bytes_received,
            10_000,
            "one transmission total"
        );
    }

    #[test]
    fn get_unknown_is_none() {
        assert!(ResourceCache::new().get("nope").is_none());
    }
}
