//! `laminar-obs` — the serving-path observability layer.
//!
//! Every request that enters [`LaminarServer::handle_envelope`]
//! (in-process or TCP) is minted a [`RequestId`] at ingress and accounted
//! against its endpoint's [`EndpointMetrics`]: a request counter, an error
//! counter, a rejection counter, an in-flight gauge, and a fixed-bucket
//! latency histogram. The whole layer is lock-free on the hot path —
//! plain relaxed atomics — so instrumentation never contends with the
//! requests it measures; the only lock is a read-mostly registry of
//! endpoint names, taken once per request.
//!
//! A [`MetricsSnapshot`] of everything is serialisable (it travels over
//! the `metrics` protocol endpoint) and renders as the table the
//! `laminar metrics` CLI verb prints.
//!
//! [`LaminarServer::handle_envelope`]: crate::server::LaminarServer::handle_envelope

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-request identifier, minted once at ingress and threaded through
/// the reply's [`WireFrame::Begin`] / [`WireFrame::Keepalive`] frames so
/// client- and server-side observations of one request can be joined.
///
/// [`WireFrame::Begin`]: crate::protocol::WireFrame::Begin
/// [`WireFrame::Keepalive`]: crate::protocol::WireFrame::Keepalive
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

impl RequestId {
    /// Mint the next process-wide request id.
    pub fn mint() -> RequestId {
        RequestId(NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Up/down gauge (in-flight requests, active connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to an absolute level (index sizes are re-read, not counted).
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (µs) of the latency histogram buckets; one implicit
/// overflow bucket follows the last bound. Log-spaced from 50 µs to 5 s,
/// which brackets everything from an index lookup to a long streamed run.
pub const BUCKET_BOUNDS_US: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// Fixed-bucket latency histogram. Recording is one relaxed atomic
/// increment; quantiles are estimated from the bucket counts at snapshot
/// time (reported as the upper bound of the bucket containing the
/// quantile — a conservative estimate).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.record_value(us);
    }

    /// Record a raw value against the bucket bounds. The bounds are
    /// unit-agnostic log-spaced numbers; latency recording uses them as
    /// µs, the ingest row group reuses them for batch sizes (rows).
    pub fn record_value(&self, v: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| v <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated quantile in µs (`q` in `0.0..=1.0`).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_from_buckets(&counts, q)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            p50_us: quantile_from_buckets(&counts, 0.50),
            p95_us: quantile_from_buckets(&counts, 0.95),
            p99_us: quantile_from_buckets(&counts, 0.99),
            buckets: BUCKET_BOUNDS_US
                .iter()
                .copied()
                .chain(std::iter::once(u64::MAX))
                .zip(counts)
                .collect(),
        }
    }
}

fn quantile_from_buckets(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// Per-endpoint counters + latency histogram.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    pub requests: Counter,
    pub errors: Counter,
    pub rejections: Counter,
    pub in_flight: Gauge,
    pub latency: Histogram,
}

/// Search-engine metrics: one latency histogram per modality (the three
/// `SearchIndexes` ranking paths), index-size gauges, and the LSH
/// prefilter's candidate-pool accounting.
#[derive(Debug, Default)]
pub struct SearchMetrics {
    pub semantic_latency: Histogram,
    pub spt_latency: Histogram,
    pub reacc_latency: Histogram,
    /// Registry literal search (`SearchLiteral`) — every search endpoint
    /// records a per-request latency histogram.
    pub literal_latency: Histogram,
    pub index_pes: Gauge,
    pub index_workflows: Gauge,
    /// SPT queries answered through the LSH prefilter.
    pub lsh_queries: Counter,
    /// Total candidates those queries rescored (pool size, summed).
    pub lsh_candidates: Counter,
}

impl SearchMetrics {
    fn snapshot(&self) -> SearchSnapshot {
        SearchSnapshot {
            semantic: self.semantic_latency.snapshot(),
            spt: self.spt_latency.snapshot(),
            reacc: self.reacc_latency.snapshot(),
            literal: self.literal_latency.snapshot(),
            index_pes: self.index_pes.get(),
            index_workflows: self.index_workflows.get(),
            lsh_queries: self.lsh_queries.get(),
            lsh_candidates: self.lsh_candidates.get(),
        }
    }
}

/// Recommendation-pipeline metrics (v9), fed by the served Aroma path:
/// where each request's time goes (retrieve → prune → cluster →
/// intersect), how often the LSH prefilter bounds the candidate pool,
/// whether rayon engaged for the prune stage, and the full-pipeline
/// result cache's hit rate.
#[derive(Debug, Default)]
pub struct RecoMetrics {
    /// `CodeRecommendation` requests served (any scope or embedding).
    pub requests: Counter,
    /// Requests that ran the full Aroma pipeline (SPT, PE or Both scope).
    pub pipeline_runs: Counter,
    /// Pipeline runs whose prune stage ran under rayon.
    pub parallel_runs: Counter,
    /// Pipeline runs answered through the LSH prefilter.
    pub lsh_queries: Counter,
    /// Total candidates those runs retrieved over (pool size, summed).
    pub lsh_candidates: Counter,
    /// Full-pipeline result-cache lookups answered without running.
    pub cache_hits: Counter,
    /// Full-pipeline result-cache lookups that ran the pipeline.
    pub cache_misses: Counter,
    /// Stage 1–2: featurize + light-weight retrieval.
    pub retrieve_latency: Histogram,
    /// Stage 3: prune & rerank over the candidate set.
    pub prune_latency: Histogram,
    /// Stage 4: greedy seed clustering.
    pub cluster_latency: Histogram,
    /// Stage 5: cluster intersection into recommendation text.
    pub intersect_latency: Histogram,
}

impl RecoMetrics {
    /// Fold one pipeline run's stage stats into the lifetime totals.
    pub fn observe(&self, stats: &aroma::RecoStats) {
        self.pipeline_runs.inc();
        if stats.parallel {
            self.parallel_runs.inc();
        }
        if let Some(candidates) = stats.lsh_candidates {
            self.lsh_queries.inc();
            self.lsh_candidates.add(candidates as u64);
        }
        self.retrieve_latency.record(stats.retrieve);
        self.prune_latency.record(stats.prune);
        self.cluster_latency.record(stats.cluster);
        self.intersect_latency.record(stats.intersect);
    }

    fn snapshot(&self) -> RecoSnapshot {
        RecoSnapshot {
            requests: self.requests.get(),
            pipeline_runs: self.pipeline_runs.get(),
            parallel_runs: self.parallel_runs.get(),
            lsh_queries: self.lsh_queries.get(),
            lsh_candidates: self.lsh_candidates.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            retrieve: self.retrieve_latency.snapshot(),
            prune: self.prune_latency.snapshot(),
            cluster: self.cluster_latency.snapshot(),
            intersect: self.intersect_latency.snapshot(),
        }
    }
}

/// Quantized-search and query-cache metrics, fed by the two-phase dense
/// ranking path and the opt-in query caches: cache hit/miss counters,
/// rescore-window sizing, per-phase scan latency, and the per-modality
/// scan-tier footprints (f32 vs i8 bytes) behind the ≥3× memory claim.
#[derive(Debug, Default)]
pub struct SearchQuantMetrics {
    /// Embedding-cache lookups that reused a vector.
    pub embed_cache_hits: Counter,
    /// Embedding-cache lookups that had to embed.
    pub embed_cache_misses: Counter,
    /// Result-cache lookups answered without a scan.
    pub result_cache_hits: Counter,
    /// Result-cache lookups that ran the ranking.
    pub result_cache_misses: Counter,
    /// Rescore-window sizes per two-phase query (buckets count rows).
    pub rescore_window: Histogram,
    /// Phase-1 latency: the int8 candidate scan over all rows.
    pub quant_scan_latency: Histogram,
    /// Phase-2 latency: the exact `f32` rescore of the window.
    pub rescore_latency: Histogram,
    /// Scan-tier bytes per modality (re-read from the index, not counted).
    pub desc_f32_bytes: Gauge,
    pub desc_i8_bytes: Gauge,
    pub reacc_f32_bytes: Gauge,
    pub reacc_i8_bytes: Gauge,
}

impl SearchQuantMetrics {
    fn snapshot(&self) -> SearchQuantSnapshot {
        SearchQuantSnapshot {
            embed_cache_hits: self.embed_cache_hits.get(),
            embed_cache_misses: self.embed_cache_misses.get(),
            result_cache_hits: self.result_cache_hits.get(),
            result_cache_misses: self.result_cache_misses.get(),
            rescore_window: self.rescore_window.snapshot(),
            quant_scan: self.quant_scan_latency.snapshot(),
            rescore: self.rescore_latency.snapshot(),
            desc_f32_bytes: self.desc_f32_bytes.get(),
            desc_i8_bytes: self.desc_i8_bytes.get(),
            reacc_f32_bytes: self.reacc_f32_bytes.get(),
            reacc_i8_bytes: self.reacc_i8_bytes.get(),
        }
    }
}

/// Batched-ingestion metrics, fed by the `RegisterBatch` path: how large
/// the batches are, where each batch's time goes (parallel analysis vs
/// group commit vs index publish), and how many fsyncs the group-commit
/// WAL saved over the per-row path.
#[derive(Debug, Default)]
pub struct IngestMetrics {
    /// `RegisterBatch` requests served.
    pub batches: Counter,
    /// Items (PE or workflow units) submitted across all batches.
    pub items: Counter,
    /// Items whose registration failed (the rest of their batch commits).
    pub items_failed: Counter,
    /// Registry rows created (PEs + workflows; duplicates reused count 0).
    pub rows: Counter,
    /// fsyncs avoided vs sequential registration: rows that shared a
    /// group-commit frame instead of each paying their own sync.
    pub fsyncs_saved: Counter,
    /// Items-per-batch distribution (bucket bounds reused as counts).
    pub batch_size: Histogram,
    /// Parallel analysis stage: pyparse → SPT → features → describe →
    /// embed, across the batch.
    pub analyze_latency: Histogram,
    /// Group-commit stage: validation + one WAL frame + apply.
    pub commit_latency: Histogram,
    /// Bulk index publish stage: one RCU snapshot swap.
    pub index_latency: Histogram,
}

impl IngestMetrics {
    fn snapshot(&self) -> IngestSnapshot {
        IngestSnapshot {
            batches: self.batches.get(),
            items: self.items.get(),
            items_failed: self.items_failed.get(),
            rows: self.rows.get(),
            fsyncs_saved: self.fsyncs_saved.get(),
            batch_size: self.batch_size.snapshot(),
            analyze: self.analyze_latency.snapshot(),
            commit: self.commit_latency.snapshot(),
            index: self.index_latency.snapshot(),
        }
    }
}

/// Enactment (workflow-run) fault metrics, fed by the run path from the
/// per-run [`d4py::FaultStats`]: how often PEs fail, how often the
/// supervisor retries, what ends up dead-lettered, and how the dynamic
/// mapping's task-timeout supervision behaves.
#[derive(Debug, Default)]
pub struct EnactmentMetrics {
    /// Completed runs (whatever the outcome).
    pub runs: Counter,
    /// Runs that ended in a terminal error.
    pub runs_failed: Counter,
    /// Failed PE invocations observed (each failed attempt counts once).
    pub pe_faults: Counter,
    /// Supervisor re-invocations under `Retry`/`DeadLetter`.
    pub retries: Counter,
    /// Datums dropped into dead-letter queues.
    pub dead_letters: Counter,
    /// Tasks abandoned for exceeding the per-task timeout.
    pub task_timeouts: Counter,
    /// Hung workers detached and replaced.
    pub worker_replacements: Counter,
}

impl EnactmentMetrics {
    /// Fold one run's fault counters into the server-lifetime totals.
    pub fn observe(&self, stats: &d4py::FaultStats) {
        self.pe_faults.add(stats.faults);
        self.retries.add(stats.retries);
        self.dead_letters.add(stats.dead_letters);
        self.task_timeouts.add(stats.task_timeouts);
        self.worker_replacements.add(stats.worker_replacements);
    }

    fn snapshot(&self) -> EnactmentSnapshot {
        EnactmentSnapshot {
            runs: self.runs.get(),
            runs_failed: self.runs_failed.get(),
            pe_faults: self.pe_faults.get(),
            retries: self.retries.get(),
            dead_letters: self.dead_letters.get(),
            task_timeouts: self.task_timeouts.get(),
            worker_replacements: self.worker_replacements.get(),
        }
    }
}

/// The server's metric registry: one [`EndpointMetrics`] per protocol
/// endpoint plus connection-level counters fed by the TCP layer and the
/// search-engine metrics fed by the search service.
pub struct Metrics {
    started: Instant,
    endpoints: RwLock<HashMap<&'static str, Arc<EndpointMetrics>>>,
    pub connections_accepted: Counter,
    pub connections_rejected: Counter,
    pub connections_active: Gauge,
    pub timeouts: Counter,
    pub disconnects: Counter,
    pub search: SearchMetrics,
    pub search_quant: SearchQuantMetrics,
    pub enactment: EnactmentMetrics,
    pub ingest: IngestMetrics,
    pub reco: RecoMetrics,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            endpoints: RwLock::new(HashMap::new()),
            connections_accepted: Counter::default(),
            connections_rejected: Counter::default(),
            connections_active: Gauge::default(),
            timeouts: Counter::default(),
            disconnects: Counter::default(),
            search: SearchMetrics::default(),
            search_quant: SearchQuantMetrics::default(),
            enactment: EnactmentMetrics::default(),
            ingest: IngestMetrics::default(),
            reco: RecoMetrics::default(),
        }
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Milliseconds since this metrics registry (i.e. the server) was
    /// created — the `Health` endpoint's uptime without the cost of a
    /// full snapshot.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The metrics handle for one endpoint, created on first use.
    pub fn endpoint(&self, name: &'static str) -> Arc<EndpointMetrics> {
        if let Some(m) = self.endpoints.read().get(name) {
            return m.clone();
        }
        self.endpoints
            .write()
            .entry(name)
            .or_insert_with(|| Arc::new(EndpointMetrics::default()))
            .clone()
    }

    /// Point-in-time snapshot of every counter, gauge and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut endpoints: Vec<EndpointSnapshot> = self
            .endpoints
            .read()
            .iter()
            .map(|(name, m)| EndpointSnapshot {
                endpoint: (*name).to_string(),
                requests: m.requests.get(),
                errors: m.errors.get(),
                rejections: m.rejections.get(),
                in_flight: m.in_flight.get(),
                latency: m.latency.snapshot(),
            })
            .collect();
        endpoints.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
        MetricsSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            connections_accepted: self.connections_accepted.get(),
            connections_rejected: self.connections_rejected.get(),
            connections_active: self.connections_active.get(),
            timeouts: self.timeouts.get(),
            disconnects: self.disconnects.get(),
            endpoints,
            search: self.search.snapshot(),
            search_quant: self.search_quant.snapshot(),
            enactment: self.enactment.snapshot(),
            ingest: self.ingest.snapshot(),
            reco: self.reco.snapshot(),
        }
    }
}

/// Snapshot of the search-engine metrics (serialisable).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchSnapshot {
    pub semantic: HistogramSnapshot,
    pub spt: HistogramSnapshot,
    pub reacc: HistogramSnapshot,
    /// Literal-search latency; serde-defaulted so pre-v9 snapshots (no
    /// `literal` field) still deserialise.
    #[serde(default)]
    pub literal: HistogramSnapshot,
    pub index_pes: i64,
    pub index_workflows: i64,
    pub lsh_queries: u64,
    pub lsh_candidates: u64,
}

/// Snapshot of the quantized-search and query-cache metrics
/// (serialisable). All-zero — and absent from the rendered table — until
/// the quantized tier or a query cache is switched on.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchQuantSnapshot {
    pub embed_cache_hits: u64,
    pub embed_cache_misses: u64,
    pub result_cache_hits: u64,
    pub result_cache_misses: u64,
    /// `rescore_window` buckets count rows, not µs.
    pub rescore_window: HistogramSnapshot,
    pub quant_scan: HistogramSnapshot,
    pub rescore: HistogramSnapshot,
    pub desc_f32_bytes: i64,
    pub desc_i8_bytes: i64,
    pub reacc_f32_bytes: i64,
    pub reacc_i8_bytes: i64,
}

/// Snapshot of the registry persistence layer (serialisable). Filled by
/// the `Metrics` endpoint from [`Registry::persist_stats`] when the
/// server runs with a data directory; `enabled` stays false otherwise
/// and the row group is omitted from the rendered table.
///
/// [`Registry::persist_stats`]: laminar_registry::Registry::persist_stats
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PersistenceSnapshot {
    /// True when the registry has a data directory (WAL + snapshots).
    pub enabled: bool,
    /// Records appended to the WAL since open.
    pub wal_appends: u64,
    /// Frame bytes appended to the WAL since open.
    pub wal_bytes: u64,
    /// fsync calls issued (per-append syncs + compaction syncs).
    pub fsyncs: u64,
    /// Snapshot compactions performed since open.
    pub compactions: u64,
    /// Records currently in the WAL (resets on compaction).
    pub wal_records: u64,
    /// WAL records replayed during recovery at open.
    pub recovered_records: u64,
    /// Wall-clock recovery duration at open.
    pub recovery_ms: u64,
}

/// Snapshot of the storage-health state machine (serialisable, v8).
/// Filled by the `Metrics` endpoint from the server's `StorageHealth`
/// plus the registry's fault-injection counters; all-zero — and absent
/// from the rendered table — until a persist error, probe, or injected
/// fault has occurred.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageHealthSnapshot {
    /// True while the server is in read-only degraded mode.
    pub degraded: bool,
    /// Healthy→Degraded transitions since start.
    pub degraded_entries: u64,
    /// Degraded→Healthy transitions (successful recoveries).
    pub degraded_exits: u64,
    /// Recovery probes run (periodic + on-demand).
    pub probe_attempts: u64,
    /// Recovery probes that failed (storage still bad).
    pub probe_failures: u64,
    /// Mutating requests rejected with `Response::Degraded`.
    pub rejected_while_degraded: u64,
    /// Persistence-path IO errors observed by the registry.
    pub io_errors: u64,
    /// Most recent persistence error, if any.
    pub last_error: Option<String>,
    /// Per-site fault-injector counters `(site, ops, injected)`; empty
    /// unless a test injector is installed.
    pub fault_sites: Vec<(String, u64, u64)>,
}

/// Snapshot of the batched-ingestion metrics (serialisable). The
/// `batch_size` histogram's buckets count rows, not µs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestSnapshot {
    pub batches: u64,
    pub items: u64,
    pub items_failed: u64,
    pub rows: u64,
    pub fsyncs_saved: u64,
    pub batch_size: HistogramSnapshot,
    pub analyze: HistogramSnapshot,
    pub commit: HistogramSnapshot,
    pub index: HistogramSnapshot,
}

/// Snapshot of the recommendation-pipeline metrics (serialisable, v9).
/// All-zero — and absent from the rendered table — until the first
/// `CodeRecommendation` request.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoSnapshot {
    pub requests: u64,
    pub pipeline_runs: u64,
    pub parallel_runs: u64,
    pub lsh_queries: u64,
    pub lsh_candidates: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub retrieve: HistogramSnapshot,
    pub prune: HistogramSnapshot,
    pub cluster: HistogramSnapshot,
    pub intersect: HistogramSnapshot,
}

/// Snapshot of the enactment fault metrics (serialisable).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EnactmentSnapshot {
    pub runs: u64,
    pub runs_failed: u64,
    pub pe_faults: u64,
    pub retries: u64,
    pub dead_letters: u64,
    pub task_timeouts: u64,
    pub worker_replacements: u64,
}

/// Snapshot of one histogram (serialisable).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// `(bucket upper bound in µs, count)`; the final bound is `u64::MAX`
    /// (the overflow bucket).
    pub buckets: Vec<(u64, u64)>,
}

/// Snapshot of one endpoint's metrics (serialisable).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EndpointSnapshot {
    pub endpoint: String,
    pub requests: u64,
    pub errors: u64,
    pub rejections: u64,
    pub in_flight: i64,
    pub latency: HistogramSnapshot,
}

/// The full snapshot answered by the `metrics` protocol endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub uptime_ms: u64,
    pub connections_accepted: u64,
    pub connections_rejected: u64,
    pub connections_active: i64,
    pub timeouts: u64,
    pub disconnects: u64,
    pub endpoints: Vec<EndpointSnapshot>,
    /// Search-engine metrics; serde-defaulted so a protocol-v2 snapshot
    /// (no `search` field) still deserialises.
    #[serde(default)]
    pub search: SearchSnapshot,
    /// Enactment fault metrics; serde-defaulted so a pre-v4 snapshot
    /// (no `enactment` field) still deserialises.
    #[serde(default)]
    pub enactment: EnactmentSnapshot,
    /// Registry persistence metrics; serde-defaulted so a pre-v5 snapshot
    /// (no `persistence` field) still deserialises.
    #[serde(default)]
    pub persistence: PersistenceSnapshot,
    /// Batched-ingestion metrics; serde-defaulted so a pre-v6 snapshot
    /// (no `ingest` field) still deserialises.
    #[serde(default)]
    pub ingest: IngestSnapshot,
    /// Quantized-search and query-cache metrics; serde-defaulted so a
    /// pre-v7 snapshot (no `search_quant` field) still deserialises.
    #[serde(default)]
    pub search_quant: SearchQuantSnapshot,
    /// Storage-health state machine; serde-defaulted so a pre-v8
    /// snapshot (no `storage_health` field) still deserialises.
    #[serde(default)]
    pub storage_health: StorageHealthSnapshot,
    /// Recommendation-pipeline metrics; serde-defaulted so a pre-v9
    /// snapshot (no `reco` field) still deserialises.
    #[serde(default)]
    pub reco: RecoSnapshot,
}

impl MetricsSnapshot {
    /// Render the snapshot as the table `laminar metrics` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "server uptime: {} ms", self.uptime_ms);
        let _ = writeln!(
            out,
            "connections: accepted {}  rejected {}  active {}  timeouts {}  disconnects {}",
            self.connections_accepted,
            self.connections_rejected,
            self.connections_active,
            self.timeouts,
            self.disconnects
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "endpoint", "requests", "errors", "rejected", "in_flight", "p50_us", "p95_us", "p99_us"
        );
        for e in &self.endpoints {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
                e.endpoint,
                e.requests,
                e.errors,
                e.rejections,
                e.in_flight,
                e.latency.p50_us,
                e.latency.p95_us,
                e.latency.p99_us
            );
        }
        let s = &self.search;
        let _ = writeln!(
            out,
            "search index: pes {}  workflows {}",
            s.index_pes, s.index_workflows
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>9} {:>9} {:>9}",
            "search modality", "queries", "p50_us", "p95_us", "p99_us"
        );
        for (name, h) in [
            ("semantic", &s.semantic),
            ("spt", &s.spt),
            ("reacc", &s.reacc),
            ("literal", &s.literal),
        ] {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>9} {:>9} {:>9}",
                name, h.count, h.p50_us, h.p95_us, h.p99_us
            );
        }
        if s.lsh_queries > 0 {
            let _ = writeln!(
                out,
                "lsh prefilter: queries {}  candidates {} (avg pool {:.1})",
                s.lsh_queries,
                s.lsh_candidates,
                s.lsh_candidates as f64 / s.lsh_queries as f64
            );
        }
        let q = &self.search_quant;
        let cache_lookups =
            q.embed_cache_hits + q.embed_cache_misses + q.result_cache_hits + q.result_cache_misses;
        if q.quant_scan.count > 0 || q.desc_i8_bytes > 0 || cache_lookups > 0 {
            let _ = writeln!(
                out,
                "query cache: embed hits {}  misses {}  result hits {}  misses {}",
                q.embed_cache_hits,
                q.embed_cache_misses,
                q.result_cache_hits,
                q.result_cache_misses
            );
            if q.desc_i8_bytes > 0 {
                let _ = writeln!(
                    out,
                    "quantized tier bytes: desc {} f32 / {} i8 ({:.1}x)  reacc {} f32 / {} i8",
                    q.desc_f32_bytes,
                    q.desc_i8_bytes,
                    q.desc_f32_bytes as f64 / q.desc_i8_bytes as f64,
                    q.reacc_f32_bytes,
                    q.reacc_i8_bytes
                );
            }
            if q.quant_scan.count > 0 {
                let _ = writeln!(
                    out,
                    "rescore window rows: p50 {}  p95 {}  p99 {}",
                    q.rescore_window.p50_us, q.rescore_window.p95_us, q.rescore_window.p99_us
                );
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>9} {:>9} {:>9}",
                    "two-phase stage", "queries", "p50_us", "p95_us", "p99_us"
                );
                for (name, h) in [("quant_scan", &q.quant_scan), ("rescore", &q.rescore)] {
                    let _ = writeln!(
                        out,
                        "{:<28} {:>8} {:>9} {:>9} {:>9}",
                        name, h.count, h.p50_us, h.p95_us, h.p99_us
                    );
                }
            }
        }
        let r = &self.reco;
        if r.requests > 0 {
            let _ = writeln!(
                out,
                "reco: requests {}  pipeline {}  parallel {}  cache hits {}  misses {}",
                r.requests, r.pipeline_runs, r.parallel_runs, r.cache_hits, r.cache_misses
            );
            if r.lsh_queries > 0 {
                let _ = writeln!(
                    out,
                    "reco lsh: queries {}  candidates {} (avg pool {:.1})",
                    r.lsh_queries,
                    r.lsh_candidates,
                    r.lsh_candidates as f64 / r.lsh_queries as f64
                );
            }
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>9} {:>9} {:>9}",
                "reco stage", "runs", "p50_us", "p95_us", "p99_us"
            );
            for (name, h) in [
                ("retrieve", &r.retrieve),
                ("prune", &r.prune),
                ("cluster", &r.cluster),
                ("intersect", &r.intersect),
            ] {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>9} {:>9} {:>9}",
                    name, h.count, h.p50_us, h.p95_us, h.p99_us
                );
            }
        }
        let f = &self.enactment;
        let _ = writeln!(out, "enactment: runs {}  failed {}", f.runs, f.runs_failed);
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>12} {:>9} {:>9}",
            "enactment faults", "faults", "retries", "dead_letters", "timeouts", "replaced"
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>12} {:>9} {:>9}",
            "", f.pe_faults, f.retries, f.dead_letters, f.task_timeouts, f.worker_replacements
        );
        let i = &self.ingest;
        if i.batches > 0 {
            let _ = writeln!(
                out,
                "ingest: batches {}  items {}  failed {}  rows {}  fsyncs saved {}  batch p50 {} rows",
                i.batches, i.items, i.items_failed, i.rows, i.fsyncs_saved, i.batch_size.p50_us
            );
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>9} {:>9} {:>9}",
                "ingest stage", "batches", "p50_us", "p95_us", "p99_us"
            );
            for (name, h) in [
                ("analyze", &i.analyze),
                ("commit", &i.commit),
                ("index", &i.index),
            ] {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>9} {:>9} {:>9}",
                    name, h.count, h.p50_us, h.p95_us, h.p99_us
                );
            }
        }
        let h = &self.storage_health;
        if h.degraded || h.degraded_entries > 0 || h.probe_attempts > 0 || h.io_errors > 0 {
            let _ = writeln!(
                out,
                "storage health: {}  entries {}  exits {}  rejected-while-degraded {}",
                if h.degraded {
                    "DEGRADED (read-only)"
                } else {
                    "healthy"
                },
                h.degraded_entries,
                h.degraded_exits,
                h.rejected_while_degraded
            );
            let _ = writeln!(
                out,
                "storage probes: attempts {}  failures {}  io errors {}{}",
                h.probe_attempts,
                h.probe_failures,
                h.io_errors,
                h.last_error
                    .as_deref()
                    .map(|e| format!("  last: {e}"))
                    .unwrap_or_default()
            );
            if h.fault_sites.iter().any(|&(_, ops, _)| ops > 0) {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>9}",
                    "io fault site", "ops", "injected"
                );
                for (site, ops, injected) in &h.fault_sites {
                    if *ops > 0 {
                        let _ = writeln!(out, "{site:<28} {ops:>8} {injected:>9}");
                    }
                }
            }
        }
        let p = &self.persistence;
        if p.enabled {
            let _ = writeln!(
                out,
                "persistence: recovered {} records in {} ms",
                p.recovered_records, p.recovery_ms
            );
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>7} {:>11} {:>11}",
                "wal", "appends", "bytes", "fsyncs", "compactions", "wal_records"
            );
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>7} {:>11} {:>11}",
                "", p.wal_appends, p.wal_bytes, p.fsyncs, p.compactions, p.wal_records
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let a = RequestId::mint();
        let b = RequestId::mint();
        assert!(b.0 > a.0);
        assert_eq!(format!("{a}"), format!("req-{}", a.0));
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(80)); // bucket bound 100
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(40)); // bucket bound 50_000
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert_eq!(h.quantile_us(0.95), 50_000);
        assert_eq!(h.quantile_us(0.99), 50_000);
        // An absurdly large value lands in the overflow bucket.
        h.record(Duration::from_secs(3600));
        let snap = h.snapshot();
        assert_eq!(snap.count, 101);
        assert_eq!(snap.buckets.last().unwrap().1, 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn metrics_snapshot_roundtrips_and_renders() {
        let m = Metrics::new();
        let e = m.endpoint("Run");
        e.requests.inc();
        e.in_flight.inc();
        e.latency.record(Duration::from_millis(3));
        m.connections_accepted.inc();
        m.connections_rejected.inc();
        let snap = m.snapshot();
        assert_eq!(snap.connections_rejected, 1);
        assert_eq!(snap.endpoints.len(), 1);
        assert_eq!(snap.endpoints[0].endpoint, "Run");
        assert_eq!(snap.endpoints[0].requests, 1);
        assert_eq!(snap.endpoints[0].in_flight, 1);
        assert!(snap.endpoints[0].latency.p50_us > 0);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let table = snap.render();
        assert!(table.contains("Run"), "{table}");
        assert!(table.contains("rejected 1"), "{table}");
    }

    #[test]
    fn search_metrics_snapshot_and_render() {
        let m = Metrics::new();
        m.search.semantic_latency.record(Duration::from_micros(90));
        m.search.spt_latency.record(Duration::from_micros(300));
        m.search.index_pes.set(42);
        m.search.index_workflows.set(7);
        m.search.lsh_queries.inc();
        m.search.lsh_candidates.add(12);
        let snap = m.snapshot();
        assert_eq!(snap.search.semantic.count, 1);
        assert_eq!(snap.search.index_pes, 42);
        assert_eq!(snap.search.lsh_candidates, 12);
        let table = snap.render();
        assert!(table.contains("pes 42"), "{table}");
        assert!(table.contains("semantic"), "{table}");
        assert!(table.contains("avg pool 12.0"), "{table}");
        // A v2 snapshot without the `search` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut().unwrap().remove("search");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.search, SearchSnapshot::default());
    }

    #[test]
    fn enactment_metrics_snapshot_and_render() {
        let m = Metrics::new();
        m.enactment.runs.inc();
        m.enactment.runs.inc();
        m.enactment.runs_failed.inc();
        m.enactment.observe(&d4py::FaultStats {
            faults: 5,
            retries: 3,
            dead_letters: 2,
            task_timeouts: 1,
            worker_replacements: 1,
        });
        let snap = m.snapshot();
        assert_eq!(snap.enactment.runs, 2);
        assert_eq!(snap.enactment.runs_failed, 1);
        assert_eq!(snap.enactment.pe_faults, 5);
        assert_eq!(snap.enactment.retries, 3);
        assert_eq!(snap.enactment.dead_letters, 2);
        assert_eq!(snap.enactment.task_timeouts, 1);
        assert_eq!(snap.enactment.worker_replacements, 1);
        let table = snap.render();
        assert!(table.contains("enactment: runs 2  failed 1"), "{table}");
        assert!(table.contains("dead_letters"), "{table}");
        // A pre-v4 snapshot without the `enactment` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut().unwrap().remove("enactment");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.enactment, EnactmentSnapshot::default());
    }

    #[test]
    fn persistence_snapshot_serde_compat_and_render() {
        let m = Metrics::new();
        let mut snap = m.snapshot();
        // Disabled by default: row group absent from the table.
        assert!(!snap.persistence.enabled);
        assert!(!snap.render().contains("persistence:"));
        snap.persistence = PersistenceSnapshot {
            enabled: true,
            wal_appends: 12,
            wal_bytes: 4096,
            fsyncs: 3,
            compactions: 1,
            wal_records: 4,
            recovered_records: 8,
            recovery_ms: 2,
        };
        let table = snap.render();
        assert!(table.contains("recovered 8 records in 2 ms"), "{table}");
        assert!(table.contains("compactions"), "{table}");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.persistence, snap.persistence);
        // A pre-v5 snapshot without the `persistence` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut().unwrap().remove("persistence");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.persistence, PersistenceSnapshot::default());
    }

    #[test]
    fn ingest_metrics_snapshot_and_render() {
        let m = Metrics::new();
        // Absent until the first batch: row group omitted from the table.
        assert!(!m.snapshot().render().contains("ingest:"));
        m.ingest.batches.inc();
        m.ingest.items.add(32);
        m.ingest.items_failed.inc();
        m.ingest.rows.add(33);
        m.ingest.fsyncs_saved.add(32);
        m.ingest.batch_size.record_value(32);
        m.ingest.analyze_latency.record(Duration::from_micros(900));
        m.ingest.commit_latency.record(Duration::from_micros(200));
        m.ingest.index_latency.record(Duration::from_micros(60));
        let snap = m.snapshot();
        assert_eq!(snap.ingest.batches, 1);
        assert_eq!(snap.ingest.items, 32);
        assert_eq!(snap.ingest.rows, 33);
        assert_eq!(snap.ingest.fsyncs_saved, 32);
        assert_eq!(snap.ingest.batch_size.count, 1);
        // Batch size 32 lands in the ≤50 bucket: reported bound is 50.
        assert_eq!(snap.ingest.batch_size.p50_us, 50);
        assert_eq!(snap.ingest.analyze.count, 1);
        let table = snap.render();
        assert!(table.contains("fsyncs saved 32"), "{table}");
        assert!(table.contains("analyze"), "{table}");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ingest, snap.ingest);
        // A pre-v6 snapshot without the `ingest` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut().unwrap().remove("ingest");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.ingest, IngestSnapshot::default());
    }

    #[test]
    fn search_quant_metrics_snapshot_and_render() {
        let m = Metrics::new();
        // Absent until the tier or a cache is on: row group omitted.
        assert!(!m.snapshot().render().contains("query cache:"));
        m.search_quant.embed_cache_hits.add(3);
        m.search_quant.embed_cache_misses.inc();
        m.search_quant.result_cache_hits.add(2);
        m.search_quant.result_cache_misses.add(2);
        m.search_quant.rescore_window.record_value(20);
        m.search_quant
            .quant_scan_latency
            .record(Duration::from_micros(70));
        m.search_quant
            .rescore_latency
            .record(Duration::from_micros(30));
        m.search_quant.desc_f32_bytes.set(4096);
        m.search_quant.desc_i8_bytes.set(1040);
        m.search_quant.reacc_f32_bytes.set(4096);
        m.search_quant.reacc_i8_bytes.set(1040);
        let snap = m.snapshot();
        assert_eq!(snap.search_quant.embed_cache_hits, 3);
        assert_eq!(snap.search_quant.result_cache_misses, 2);
        assert_eq!(snap.search_quant.quant_scan.count, 1);
        assert_eq!(snap.search_quant.desc_i8_bytes, 1040);
        // Window of 20 rows lands in the ≤25 bucket: reported bound 25.
        assert_eq!(snap.search_quant.rescore_window.p50_us, 25);
        let table = snap.render();
        assert!(table.contains("embed hits 3"), "{table}");
        assert!(table.contains("quantized tier bytes"), "{table}");
        assert!(table.contains("(3.9x)"), "{table}");
        assert!(table.contains("quant_scan"), "{table}");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.search_quant, snap.search_quant);
        // A pre-v7 snapshot without the `search_quant` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut().unwrap().remove("search_quant");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.search_quant, SearchQuantSnapshot::default());
    }

    #[test]
    fn reco_metrics_snapshot_and_render() {
        let m = Metrics::new();
        // Absent until the first recommendation: row group omitted.
        assert!(!m.snapshot().render().contains("reco:"));
        m.reco.requests.inc();
        m.reco.cache_misses.inc();
        m.reco.observe(&aroma::RecoStats {
            retrieved: 40,
            pruned: 10,
            clusters: 3,
            lsh_candidates: Some(64),
            parallel: true,
            retrieve: Duration::from_micros(400),
            prune: Duration::from_micros(900),
            cluster: Duration::from_micros(80),
            intersect: Duration::from_micros(60),
        });
        let snap = m.snapshot();
        assert_eq!(snap.reco.requests, 1);
        assert_eq!(snap.reco.pipeline_runs, 1);
        assert_eq!(snap.reco.parallel_runs, 1);
        assert_eq!(snap.reco.lsh_queries, 1);
        assert_eq!(snap.reco.lsh_candidates, 64);
        assert_eq!(snap.reco.cache_misses, 1);
        assert_eq!(snap.reco.prune.count, 1);
        let table = snap.render();
        assert!(table.contains("reco: requests 1"), "{table}");
        assert!(table.contains("avg pool 64.0"), "{table}");
        assert!(table.contains("intersect"), "{table}");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reco, snap.reco);
        // A pre-v9 snapshot without the `reco` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut().unwrap().remove("reco");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.reco, RecoSnapshot::default());
    }

    #[test]
    fn literal_latency_serde_compat() {
        let m = Metrics::new();
        m.search.literal_latency.record(Duration::from_micros(120));
        let snap = m.snapshot();
        assert_eq!(snap.search.literal.count, 1);
        assert!(snap.render().contains("literal"), "{}", snap.render());
        // A pre-v9 `search` group without the `literal` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut()
            .unwrap()
            .get_mut("search")
            .unwrap()
            .as_object_mut()
            .unwrap()
            .remove("literal");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.search.literal, HistogramSnapshot::default());
    }

    #[test]
    fn storage_health_snapshot_serde_compat_and_render() {
        let m = Metrics::new();
        let mut snap = m.snapshot();
        // All-zero by default: row group absent from the table.
        assert_eq!(snap.storage_health, StorageHealthSnapshot::default());
        assert!(!snap.render().contains("storage health:"));
        snap.storage_health = StorageHealthSnapshot {
            degraded: true,
            degraded_entries: 2,
            degraded_exits: 1,
            probe_attempts: 5,
            probe_failures: 4,
            rejected_while_degraded: 7,
            io_errors: 3,
            last_error: Some("wal append: injected ENOSPC".into()),
            fault_sites: vec![
                ("wal_append".into(), 12, 3),
                ("snapshot_rename".into(), 0, 0),
            ],
        };
        let table = snap.render();
        assert!(table.contains("DEGRADED (read-only)"), "{table}");
        assert!(table.contains("rejected-while-degraded 7"), "{table}");
        assert!(
            table.contains("last: wal append: injected ENOSPC"),
            "{table}"
        );
        assert!(table.contains("wal_append"), "{table}");
        // Zero-op sites are elided from the fault table.
        assert!(!table.contains("snapshot_rename"), "{table}");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.storage_health, snap.storage_health);
        // A pre-v8 snapshot without the `storage_health` field still parses.
        let mut json: serde_json::Value = serde_json::to_value(&snap).unwrap();
        json.as_object_mut().unwrap().remove("storage_health");
        let back: MetricsSnapshot = serde_json::from_value(json).unwrap();
        assert_eq!(back.storage_health, StorageHealthSnapshot::default());
    }

    #[test]
    fn endpoint_handles_are_shared() {
        let m = Metrics::new();
        m.endpoint("GetRegistry").requests.inc();
        m.endpoint("GetRegistry").requests.inc();
        assert_eq!(m.endpoint("GetRegistry").requests.get(), 2);
    }
}
