//! Response-delivery transports (paper §IV-E "True-Streaming").
//!
//! Laminar 1.0 used HTTP/1.1: the engine ran the whole workflow and sent
//! one complete response. Laminar 2.0 uses HTTP/2 streaming: independent
//! frames flow to the client as output becomes available. The measurable
//! difference is the *framing discipline*, reproduced here over an
//! in-process channel with an optional per-frame latency model standing in
//! for the network (experiment E8 sweeps it).

use crate::clock::{SharedClock, SystemClock};
use crate::connection::{classify, ConnOptions, Connection, ConnectionError};
use crate::protocol::{FaultPolicyWire, Reply, Request, RequestEnvelope, WireFrame};
use crate::server::LaminarServer;
use crossbeam_channel::{unbounded, Receiver};
use std::sync::Arc;
use std::time::Duration;

/// Frame-delivery discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// HTTP/1.1: hold every frame until the terminal frame, then deliver
    /// the whole response at once.
    Batch,
    /// HTTP/2: deliver each frame as soon as it exists.
    Streaming,
}

/// The in-process [`Connection`]: requests go straight into a shared
/// [`LaminarServer`], with delivery shaping (mode + simulated per-frame
/// latency) from its [`ConnOptions`].
#[derive(Clone)]
pub struct Transport {
    server: Arc<LaminarServer>,
    opts: ConnOptions,
    clock: SharedClock,
}

impl Transport {
    pub fn new(server: Arc<LaminarServer>, mode: DeliveryMode) -> Self {
        Transport {
            server,
            opts: ConnOptions {
                delivery: mode,
                ..ConnOptions::default()
            },
            clock: Arc::new(SystemClock::new()),
        }
    }

    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.opts.frame_latency = latency;
        self
    }

    /// Run the frame-latency model on an injected clock (the simulation
    /// harness passes a virtual one so latency never blocks real time).
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    pub fn with_options(mut self, opts: ConnOptions) -> Self {
        self.opts = opts;
        self
    }

    pub fn server(&self) -> &LaminarServer {
        &self.server
    }

    /// Send a request; the reply's frames obey this transport's delivery
    /// mode. Synchronous replies are unaffected by the mode.
    pub fn send(&self, req: Request) -> Reply {
        let env = RequestEnvelope::versioned(req, self.opts.protocol_version);
        match self.server.handle_envelope(env).1 {
            Reply::Value(v) => Reply::Value(v),
            Reply::Stream(upstream) => Reply::Stream(self.deliver(upstream)),
        }
    }

    fn deliver(&self, upstream: Receiver<WireFrame>) -> Receiver<WireFrame> {
        let (tx, rx) = unbounded::<WireFrame>();
        let mode = self.opts.delivery;
        let latency = self.opts.frame_latency;
        let clock = self.clock.clone();
        std::thread::spawn(move || match mode {
            DeliveryMode::Streaming => {
                for frame in upstream.iter() {
                    if !latency.is_zero() {
                        clock.sleep(latency);
                    }
                    let done = matches!(frame, WireFrame::End { .. });
                    if tx.send(frame).is_err() {
                        break;
                    }
                    if done {
                        break;
                    }
                }
            }
            DeliveryMode::Batch => {
                // Hold everything until the stream terminates.
                let mut held = Vec::new();
                for frame in upstream.iter() {
                    let done = matches!(frame, WireFrame::End { .. });
                    held.push(frame);
                    if done {
                        break;
                    }
                }
                if !latency.is_zero() {
                    clock.sleep(latency);
                }
                for frame in held {
                    if tx.send(frame).is_err() {
                        break;
                    }
                }
            }
        });
        rx
    }
}

impl Connection for Transport {
    fn call(&self, req: Request) -> Result<Reply, ConnectionError> {
        classify(self.send(req))
    }

    fn options(&self) -> ConnOptions {
        self.opts
    }

    fn set_options(&mut self, opts: ConnOptions) {
        self.opts = opts;
    }

    fn endpoint(&self) -> String {
        "in-process".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Ident, Request};
    use crate::protocol::{PeSubmission, Response, RunInputWire, RunMode};
    use std::time::Instant;

    fn setup() -> (Arc<LaminarServer>, u64, u64) {
        let server = Arc::new(LaminarServer::with_stock());
        let token = match server
            .handle(Request::RegisterUser {
                username: "u".into(),
                password: "p".into(),
            })
            .value()
        {
            Response::Token(t) => t,
            _ => unreachable!(),
        };
        let resp = server
            .handle(Request::RegisterWorkflow {
                token,
                name: "doubler_wf".into(),
                code: String::new(),
                description: Some("doubles numbers".into()),
                pes: vec![PeSubmission {
                    name: "Double".into(),
                    code: "class Double(IterativePE):\n    def _process(self, x):\n        return x * 2\n".into(),
                    description: None,
                }],
            })
            .value();
        let wf_id = match resp {
            Response::Registered { workflow_id, .. } => workflow_id.unwrap().1,
            other => panic!("{other:?}"),
        };
        (server, token, wf_id)
    }

    fn run_req(token: u64, wf: u64, streaming: bool) -> Request {
        Request::Run {
            token,
            ident: Ident::Id(wf),
            input: RunInputWire::Iterations(8),
            mode: RunMode::Sequential,
            streaming,
            verbose: false,
            resources: vec![],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        }
    }

    #[test]
    fn both_modes_deliver_identical_content() {
        let (server, token, wf) = setup();
        let stream = Transport::new(server.clone(), DeliveryMode::Streaming);
        let batch = Transport::new(server, DeliveryMode::Batch);
        let (l1, _, _, ok1) = stream.send(run_req(token, wf, true)).drain();
        let (l2, _, _, ok2) = batch.send(run_req(token, wf, false)).drain();
        assert!(ok1 && ok2);
        assert_eq!(l1.len(), l2.len());
    }

    #[test]
    fn streaming_has_lower_time_to_first_frame_on_slow_runs() {
        let (server, token, _) = setup();
        // Register a deliberately slow workflow in the engine library.
        server.engine().library().register("slow_wf", || {
            use d4py::prelude::*;
            let mut g = WorkflowGraph::new("slow_wf");
            let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
            let slow = g.add(IterativePE::new("Slow", |d: Data| {
                std::thread::sleep(Duration::from_millis(8));
                Some(d)
            }));
            let sink = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
                ctx.log(format!("{d}"));
            }));
            g.connect(src, OUTPUT, slow, INPUT).unwrap();
            g.connect(slow, OUTPUT, sink, INPUT).unwrap();
            g
        });
        let t2 = server
            .handle(Request::RegisterWorkflow {
                token,
                name: "slow_wf".into(),
                code: String::new(),
                description: Some("slow".into()),
                pes: vec![],
            })
            .value();
        assert!(matches!(t2, Response::Registered { .. }));

        let ttfo = |streaming: bool| -> Duration {
            let mode = if streaming {
                DeliveryMode::Streaming
            } else {
                DeliveryMode::Batch
            };
            let tp = Transport::new(server.clone(), mode);
            let reply = tp.send(Request::Run {
                token,
                ident: Ident::Name("slow_wf".into()),
                input: RunInputWire::Iterations(10),
                mode: RunMode::Sequential,
                streaming,
                verbose: false,
                resources: vec![],
                fault: FaultPolicyWire::default(),
                task_timeout_ms: None,
            });
            let t0 = Instant::now();
            match reply {
                Reply::Stream(rx) => {
                    for f in rx.iter() {
                        match f {
                            WireFrame::Line(_) => return t0.elapsed(),
                            WireFrame::End { .. } => break,
                            _ => {}
                        }
                    }
                    t0.elapsed()
                }
                _ => panic!("expected stream"),
            }
        };
        let t_stream = ttfo(true);
        let t_batch = ttfo(false);
        assert!(
            t_stream < t_batch,
            "streaming TTFO {t_stream:?} must beat batch {t_batch:?}"
        );
    }

    #[test]
    fn latency_model_applies() {
        let (server, token, wf) = setup();
        let slow_net =
            Transport::new(server, DeliveryMode::Batch).with_latency(Duration::from_millis(10));
        let t0 = Instant::now();
        let (_, _, _, ok) = slow_net.send(run_req(token, wf, false)).drain();
        assert!(ok);
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn transport_implements_connection() {
        let (server, token, _) = setup();
        let conn: Box<dyn Connection> = Box::new(Transport::new(server, DeliveryMode::Streaming));
        let reply = conn.call(Request::GetRegistry { token }).unwrap();
        assert!(matches!(reply.value(), Response::Registry { .. }));
    }

    #[test]
    fn future_protocol_version_is_rejected_typed() {
        let (server, _, _) = setup();
        let mut tp = Transport::new(server, DeliveryMode::Streaming);
        let mut opts = tp.options();
        opts.protocol_version = 99;
        tp.set_options(opts);
        let err = tp.call(Request::Metrics {}).unwrap_err();
        assert!(matches!(
            err,
            ConnectionError::UnsupportedVersion {
                client_version: 99,
                ..
            }
        ));
    }
}
