//! Query-path caches for the search service.
//!
//! Two caches sit in front of the ranking pipeline, both opt-in via
//! `--query-cache-entries` (0 ⇒ off):
//!
//! * an **embedding cache** keyed by `(modality, normalized query text)` —
//!   re-embedding the same query string through UniXcoderSim or ReaccSim
//!   is pure recomputation, so identical queries (modulo surrounding
//!   whitespace, which neither embedder is sensitive to) reuse the vector;
//! * a **result cache** keyed by the full ranking request *plus the index
//!   snapshot generation*. The generation is bumped every time a write
//!   publishes a new RCU snapshot, so entries cached against an older
//!   snapshot simply stop matching — staleness is impossible by
//!   construction and no invalidation protocol exists to get wrong.
//!
//! Both are small bounded LRUs. Eviction scans for the least-recently-used
//! stamp (O(capacity)); with the intended capacities (tens to a few
//! thousand entries) that is cheaper and far simpler than an intrusive
//! list, and it needs no dependencies.

use std::collections::HashMap;
use std::hash::Hash;

use embed::DenseVec;
use parking_lot::Mutex;

use crate::indexes::{EntryKind, IndexHit};
use crate::protocol::{EmbeddingType, RecommendationHit, SearchScope};

/// A minimal bounded LRU: map of key → (last-use stamp, value) plus a
/// monotone clock. `get` refreshes the stamp; `insert` at capacity evicts
/// the smallest stamp.
pub struct Lru<K, V> {
    entries: HashMap<K, (u64, V)>,
    clock: u64,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    pub fn new(capacity: usize) -> Self {
        Lru {
            entries: HashMap::with_capacity(capacity.min(1024)),
            clock: 0,
            capacity,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|slot| {
            slot.0 = clock;
            slot.1.clone()
        })
    }

    /// Insert or refresh `key`, evicting the least-recently-used entry if
    /// the cache is full and `key` is new.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.clock, value));
    }
}

/// Which embedder produced (or would produce) a cached vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryModality {
    /// UniXcoderSim over query text (semantic text-to-code search).
    Text,
    /// ReaccSim over a code snippet (`--embedding_type llm`).
    Code,
}

/// Which ranking API a cached result list came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultOp {
    Semantic,
    Reacc,
    ReaccAbove,
    /// SPT threshold scan (`rank_spt_above`) — the workflow-scope
    /// aggregation input.
    SptAbove,
}

/// Full identity of a ranking request against one index snapshot. Any
/// parameter that changes the answer is part of the key; `generation`
/// scopes the entry to the snapshot it was computed on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    pub generation: u64,
    pub op: ResultOp,
    pub kind: Option<EntryKind>,
    pub k: usize,
    /// Bit pattern of the score threshold (`f32` is not `Hash`; bitwise
    /// identity is exactly the equivalence we want for cache keys).
    pub score_bits: u32,
    /// Normalized query text or code.
    pub query: String,
}

/// Full identity of one `CodeRecommendation` request against one pair of
/// snapshots. The key carries *both* generations feeding the answer — the
/// search indexes (workflow aggregation, flat paths) and the recommendation
/// engine (the Aroma pipeline) — so a write to either publishes and the
/// cached answer stops matching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecoKey {
    pub generation: u64,
    pub reco_generation: u64,
    pub scope: SearchScope,
    pub embedding: EmbeddingType,
    pub k: usize,
    /// Normalized snippet text.
    pub snippet: String,
}

/// The query-path caches behind their own locks (they are touched at
/// most twice per query; contention is negligible next to a slab scan).
pub struct QueryCache {
    embeddings: Mutex<Lru<(QueryModality, String), DenseVec>>,
    results: Mutex<Lru<ResultKey, Vec<IndexHit>>>,
    /// Full-pipeline recommendation answers (retrieve→prune→cluster→
    /// intersect is the most expensive ranking the server runs).
    recommendations: Mutex<Lru<RecoKey, Vec<RecommendationHit>>>,
}

impl QueryCache {
    pub fn new(entries: usize) -> Self {
        QueryCache {
            embeddings: Mutex::new(Lru::new(entries)),
            results: Mutex::new(Lru::new(entries)),
            recommendations: Mutex::new(Lru::new(entries)),
        }
    }

    /// Canonical cache form of query text. Both embedders tokenize, so
    /// they are insensitive to leading/trailing whitespace — trimming
    /// folds trivially-distinct request strings onto one entry without
    /// ever changing the embedding.
    pub fn normalize(text: &str) -> String {
        text.trim().to_string()
    }

    pub fn embedding(&self, modality: QueryModality, query: &str) -> Option<DenseVec> {
        self.embeddings.lock().get(&(modality, query.to_string()))
    }

    pub fn store_embedding(&self, modality: QueryModality, query: String, vector: DenseVec) {
        self.embeddings.lock().insert((modality, query), vector);
    }

    pub fn results(&self, key: &ResultKey) -> Option<Vec<IndexHit>> {
        self.results.lock().get(key)
    }

    pub fn store_results(&self, key: ResultKey, hits: Vec<IndexHit>) {
        self.results.lock().insert(key, hits);
    }

    pub fn recommendations(&self, key: &RecoKey) -> Option<Vec<RecommendationHit>> {
        self.recommendations.lock().get(key)
    }

    pub fn store_recommendations(&self, key: RecoKey, hits: Vec<RecommendationHit>) {
        self.recommendations.lock().insert(key, hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<&str, u32> = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(1), "hit refreshes recency");
        lru.insert("c", 3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"b"), None, "b was least recently used");
        assert_eq!(lru.get(&"a"), Some(1));
        assert_eq!(lru.get(&"c"), Some(3));
    }

    #[test]
    fn lru_refresh_does_not_evict() {
        let mut lru: Lru<&str, u32> = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10);
        assert_eq!(lru.len(), 2, "re-insert of a live key is a refresh");
        assert_eq!(lru.get(&"a"), Some(10));
        assert_eq!(lru.get(&"b"), Some(2));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut lru: Lru<&str, u32> = Lru::new(0);
        lru.insert("a", 1);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&"a"), None);
    }

    #[test]
    fn result_cache_scopes_to_generation() {
        let cache = QueryCache::new(8);
        let key = |generation: u64| ResultKey {
            generation,
            op: ResultOp::Semantic,
            kind: Some(EntryKind::Pe),
            k: 5,
            score_bits: 0,
            query: "find anomalies".to_string(),
        };
        let hits = vec![IndexHit {
            id: 7,
            kind: EntryKind::Pe,
            score: 0.5,
        }];
        cache.store_results(key(1), hits.clone());
        assert_eq!(cache.results(&key(1)), Some(hits));
        assert_eq!(
            cache.results(&key(2)),
            None,
            "a new snapshot generation invalidates by key miss"
        );
    }

    #[test]
    fn recommendation_cache_scopes_to_both_generations() {
        let cache = QueryCache::new(8);
        let key = |generation: u64, reco_generation: u64| RecoKey {
            generation,
            reco_generation,
            scope: SearchScope::Both,
            embedding: EmbeddingType::Spt,
            k: 5,
            snippet: "random.randint(1, 1000)".to_string(),
        };
        let hits = vec![RecommendationHit {
            id: 4,
            name: "NumberProducer".into(),
            description: "d".into(),
            score: 7.0,
            occurrences: 1,
            similar_code: "def _process(self): ...".into(),
            cluster_size: 2,
            common_core: "return random.randint(1, 1000)".into(),
        }];
        cache.store_recommendations(key(1, 1), hits.clone());
        assert_eq!(cache.recommendations(&key(1, 1)), Some(hits));
        assert_eq!(
            cache.recommendations(&key(2, 1)),
            None,
            "a search-index write invalidates by key miss"
        );
        assert_eq!(
            cache.recommendations(&key(1, 2)),
            None,
            "a reco-engine write invalidates by key miss"
        );
    }

    #[test]
    fn embedding_cache_round_trips_by_modality() {
        let cache = QueryCache::new(8);
        let q = QueryCache::normalize("  find anomalies  ");
        assert_eq!(q, "find anomalies");
        let v = DenseVec {
            values: vec![1.0; 4],
        };
        cache.store_embedding(QueryModality::Text, q.clone(), v.clone());
        assert_eq!(cache.embedding(QueryModality::Text, &q), Some(v));
        assert_eq!(
            cache.embedding(QueryModality::Code, &q),
            None,
            "modalities never alias"
        );
    }
}
