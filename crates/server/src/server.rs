//! The Laminar server: controller + services over the registry, search
//! indexes, resource cache and execution engine (paper §III, Fig. 4).

use crate::cache::{QueryCache, QueryModality, RecoKey, ResultKey, ResultOp};
use crate::clock::{SharedClock, SystemClock};
use crate::health::StorageHealth;
use crate::indexes::{EntryKind, IndexHit, IndexOptions, SearchIndexes, DEFAULT_RESCORE_WINDOW};
use crate::obs::{Metrics, RequestId, StorageHealthSnapshot};
use crate::protocol::*;
use crate::reco::{sweep_workflows, RecoIndexes};
use crate::resources::ResourceCache;
use aroma::lsh::LshConfig;
use aroma::{AromaConfig, Snippet};
use embed::quant::TwoPhaseStats;
use embed::{CodeT5Sim, DenseVec, DescriptionContext, ReaccSim, UniXcoderSim};
use laminar_execengine::{ExecRequest, ExecutionEngine, Frame, ResponseMode};
use laminar_registry::{
    ExecutionStatus, NewPe, NewWorkflow, PeRow, Registry, RegistryError, SearchTarget, WorkflowRow,
};
use parking_lot::RwLock;
use rayon::prelude::*;
use spt::{FeatureVec, Spt};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Server tunables (the paper's "configurable parameter"s).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Semantic search returns this many hits (paper default: 5).
    pub semantic_top_n: usize,
    /// Code recommendations return up to this many hits (paper default: 5).
    pub reco_top_n: usize,
    /// Literal search returns at most this many rows per table (a sane
    /// over-the-wire cap; clients can request fewer via `top_n`).
    pub literal_top_n: usize,
    /// Minimum SPT overlap score for a recommendation (paper default: 6.0).
    /// Doubles as the Aroma engine's retrieval floor (`min_overlap`).
    pub reco_min_score: f32,
    /// Minimum cosine for `llm` recommendations.
    pub reco_min_cosine: f32,
    /// Aroma stage 2: candidates kept by light-weight retrieval
    /// (`--reco-retrieve-n`).
    pub reco_retrieve_n: usize,
    /// Aroma stage 3: snippets surviving prune & rerank
    /// (`--reco-rerank-keep`).
    pub reco_rerank_keep: usize,
    /// Aroma stage 4: cosine floor for joining a cluster
    /// (`--reco-cluster-sim`).
    pub reco_cluster_sim: f32,
    /// Candidate count at which prune & rerank fans out across rayon
    /// workers (`--reco-parallel-threshold`); results are bit-identical
    /// to the serial pass either way.
    pub reco_parallel_threshold: usize,
    /// Engine size at which the recommendation pipeline's own MinHash-LSH
    /// prefilter engages (`--reco-lsh-min-entries`; 0 disables it).
    pub reco_lsh_min_entries: usize,
    /// Enable the MinHash-LSH prefilter on the SPT recommendation path
    /// (§IX's scaling direction). Opt-in: prefiltering trades a little
    /// recall for a much smaller exact-rescore set.
    pub spt_lsh: bool,
    /// Corpus size at which the prefilter engages (exact scanning wins
    /// below it).
    pub spt_lsh_min_entries: usize,
    /// Maintain the int8 scan tier and answer dense rankings two-phase
    /// (quantized candidate pass → exact `f32` rescore). Opt-in
    /// (`--quantized`); final scores stay full precision either way.
    pub quantized: bool,
    /// Two-phase exact-rescore window as a multiple of `k`
    /// (`--rescore-window`, default 4).
    pub rescore_window: usize,
    /// Capacity of the query-path caches (embedding LRU + generation-
    /// scoped result cache); 0 disables them (`--query-cache-entries`).
    pub query_cache_entries: usize,
    /// Interval of the background storage-recovery probe in milliseconds
    /// (`--probe-interval-ms`); 0 disables the probe thread. The probe
    /// only does IO while the server is degraded.
    pub probe_interval_ms: u64,
    /// `retry_after_ms` hint carried by `Response::Degraded` rejections.
    pub degraded_retry_after_ms: u64,
    /// Dynamic-run worker bounds (the config that replaced Listing 2's
    /// explicit parameters in Laminar 2.0).
    pub dynamic: d4py::DynamicConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            semantic_top_n: 5,
            reco_top_n: 5,
            literal_top_n: 100,
            reco_min_score: 6.0,
            reco_min_cosine: 0.3,
            reco_retrieve_n: 50,
            reco_rerank_keep: 10,
            reco_cluster_sim: 0.5,
            reco_parallel_threshold: 32,
            reco_lsh_min_entries: 512,
            spt_lsh: false,
            spt_lsh_min_entries: 512,
            quantized: false,
            rescore_window: DEFAULT_RESCORE_WINDOW,
            query_cache_entries: 0,
            probe_interval_ms: 0,
            degraded_retry_after_ms: 500,
            dynamic: d4py::DynamicConfig::default(),
        }
    }
}

/// Internal server error (mapped to `Response::Error` at the boundary).
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    NotLoggedIn,
    Registry(RegistryError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::NotLoggedIn => write!(f, "not logged in"),
            ServerError::Registry(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<RegistryError> for ServerError {
    fn from(e: RegistryError) -> Self {
        ServerError::Registry(e)
    }
}

/// The server.
pub struct LaminarServer {
    registry: Arc<Registry>,
    engine: Arc<ExecutionEngine>,
    indexes: Arc<SearchIndexes>,
    resources: Arc<ResourceCache>,
    sessions: RwLock<HashMap<Token, u64>>,
    next_token: AtomicU64,
    config: ServerConfig,
    codet5: CodeT5Sim,
    unixcoder: UniXcoderSim,
    metrics: Arc<Metrics>,
    /// The recommendation subsystem: a persistent Aroma engine kept in
    /// lockstep with registry mutations (its own RCU snapshot cell).
    reco: RecoIndexes,
    /// Opt-in query-path caches (`query_cache_entries > 0`).
    query_cache: Option<QueryCache>,
    /// The storage-health state machine behind read-only degraded mode.
    health: Arc<StorageHealth>,
    /// The clock the server's timers run on (the recovery-probe
    /// interval). Production uses [`SystemClock`]; the deterministic
    /// simulation harness injects a virtual clock.
    clock: SharedClock,
}

impl LaminarServer {
    pub fn new(registry: Registry, engine: ExecutionEngine, config: ServerConfig) -> Self {
        Self::with_clock(registry, engine, config, Arc::new(SystemClock::new()))
    }

    /// [`LaminarServer::new`] with an explicit [`Clock`](crate::clock::Clock)
    /// — the seam the simulation harness uses to run the server's timers
    /// under virtual time.
    pub fn with_clock(
        registry: Registry,
        engine: ExecutionEngine,
        config: ServerConfig,
        clock: SharedClock,
    ) -> Self {
        let indexes = SearchIndexes::with_options(IndexOptions {
            lsh: config.spt_lsh.then(LshConfig::default),
            lsh_min_entries: config.spt_lsh_min_entries,
            quantized: config.quantized,
            rescore_window: config.rescore_window,
        });
        let query_cache =
            (config.query_cache_entries > 0).then(|| QueryCache::new(config.query_cache_entries));
        let reco = RecoIndexes::new(AromaConfig {
            retrieve_n: config.reco_retrieve_n,
            rerank_keep: config.reco_rerank_keep,
            cluster_sim: config.reco_cluster_sim,
            max_recommendations: config.reco_rerank_keep,
            parallel_threshold: config.reco_parallel_threshold,
            lsh_min_entries: config.reco_lsh_min_entries,
            min_overlap: config.reco_min_score,
            ..AromaConfig::default()
        });
        let server = LaminarServer {
            registry: Arc::new(registry),
            engine: Arc::new(engine),
            indexes: Arc::new(indexes),
            resources: Arc::new(ResourceCache::new()),
            sessions: RwLock::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            config,
            codet5: CodeT5Sim::new(DescriptionContext::FullClass),
            unixcoder: UniXcoderSim::new(),
            metrics: Arc::new(Metrics::new()),
            reco,
            query_cache,
            health: Arc::new(StorageHealth::new()),
            clock,
        };
        server.warm_load_indexes();
        server.spawn_recovery_probe();
        server
    }

    /// The clock the server's timers run on.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Start the background storage-recovery probe thread (disabled when
    /// `probe_interval_ms` is 0). The thread holds only weak references,
    /// so it exits once the server (and its registry) are dropped; it
    /// does IO only while the server is degraded, so a healthy server
    /// pays nothing but a timer tick.
    fn spawn_recovery_probe(&self) {
        if self.config.probe_interval_ms == 0 {
            return;
        }
        let interval = std::time::Duration::from_millis(self.config.probe_interval_ms);
        let registry = Arc::downgrade(&self.registry);
        let health = Arc::downgrade(&self.health);
        // The probe ticks on the injectable clock so the simulation
        // harness can drive it under virtual time. Holding the clock
        // strongly is fine: it owns no server state, so it never keeps
        // the registry alive past the server's drop.
        let clock = self.clock.clone();
        std::thread::spawn(move || loop {
            clock.sleep(interval);
            let (Some(registry), Some(health)) = (registry.upgrade(), health.upgrade()) else {
                return;
            };
            if health.is_degraded() {
                match registry.verify_storage() {
                    Ok(()) => health.probe_passed(),
                    Err(e) => health.probe_failed(&e.to_string()),
                }
            }
        });
    }

    /// The storage-health state machine (shared with tests and the
    /// drain path).
    pub fn health(&self) -> &Arc<StorageHealth> {
        &self.health
    }

    /// Run one recovery probe now (the background thread does the same
    /// on its timer): verify storage and transition the state machine.
    /// Returns the new degraded state.
    pub fn probe_storage(&self) -> bool {
        match self.registry.verify_storage() {
            Ok(()) => self.health.probe_passed(),
            Err(e) => self.health.probe_failed(&e.to_string()),
        }
        self.health.is_degraded()
    }

    /// Best-effort final compaction for graceful shutdown: fold the WAL
    /// into a snapshot so the next start recovers from the snapshot
    /// instead of a long replay. Runs on a helper thread and gives up
    /// after `timeout` (the compaction itself keeps running to
    /// completion, but drain is not blocked on it). Skipped while
    /// degraded — a failing disk would only eat the drain budget.
    /// Returns true when the compaction finished (successfully) in time.
    pub fn shutdown_compact(&self, timeout: std::time::Duration) -> bool {
        if self.health.is_degraded() {
            return false;
        }
        let registry = self.registry.clone();
        let (tx, rx) = crossbeam_channel::bounded(1);
        std::thread::spawn(move || {
            let _ = tx.send(registry.compact().is_ok());
        });
        matches!(rx.recv_timeout(timeout), Ok(true))
    }

    /// Cold-start warm load: rebuild the search indexes from whatever the
    /// registry already holds (a registry restored via `load_from` arrives
    /// populated). Embedding CLOBs decode and the ReACC code embeddings
    /// compute in parallel across registry rows; only the final inserts
    /// are sequential.
    fn warm_load_indexes(&self) {
        let pes = self.registry.all_pes();
        let workflows = self.registry.all_workflows();
        if pes.is_empty() && workflows.is_empty() {
            return;
        }
        struct RowRef<'a> {
            id: u64,
            kind: EntryKind,
            desc_json: &'a str,
            spt_json: &'a str,
            description: &'a str,
            code: &'a str,
        }
        let rows: Vec<RowRef<'_>> = pes
            .iter()
            .map(|p| RowRef {
                id: p.id,
                kind: EntryKind::Pe,
                desc_json: &p.description_embedding,
                spt_json: &p.spt_embedding,
                description: &p.description,
                code: &p.code,
            })
            .chain(workflows.iter().map(|w| RowRef {
                id: w.id,
                kind: EntryKind::Workflow,
                desc_json: &w.description_embedding,
                spt_json: &w.spt_embedding,
                description: &w.description,
                code: &w.code,
            }))
            .collect();
        let decoded: Vec<(u64, EntryKind, DenseVec, FeatureVec, DenseVec)> = rows
            .par_iter()
            .map(|r| {
                // Stored CLOBs are authoritative; rows predating the
                // embedding columns fall back to re-embedding.
                let desc = DenseVec::from_json(r.desc_json)
                    .unwrap_or_else(|_| self.unixcoder.embed_text(r.description));
                let spt = FeatureVec::from_json(r.spt_json)
                    .unwrap_or_else(|_| Spt::parse_source(r.code).feature_vec());
                let reacc = ReaccSim::new().embed_code(r.code);
                (r.id, r.kind, desc, spt, reacc)
            })
            .collect();
        for (id, kind, desc, spt, reacc) in decoded {
            self.indexes.upsert_embedded(id, kind, desc, spt, reacc);
        }
        // The recommendation engine warm-loads alongside: every PE's
        // source code, published as one snapshot swap.
        let snippets: Vec<Snippet> = pes
            .iter()
            .map(|p| Snippet::new(p.id, &p.name, &p.code))
            .collect();
        if !snippets.is_empty() {
            self.reco.bulk_upsert(snippets);
        }
        self.sync_index_gauges();
    }

    /// Refresh the index-size gauges after an index mutation.
    fn sync_index_gauges(&self) {
        let (pes, workflows) = self.indexes.counts();
        self.metrics.search.index_pes.set(pes as i64);
        self.metrics.search.index_workflows.set(workflows as i64);
        let tb = self.indexes.tier_bytes();
        let q = &self.metrics.search_quant;
        q.desc_f32_bytes.set(tb.desc_f32 as i64);
        q.desc_i8_bytes.set(tb.desc_i8 as i64);
        q.reacc_f32_bytes.set(tb.reacc_f32 as i64);
        q.reacc_i8_bytes.set(tb.reacc_i8 as i64);
    }

    /// Server with stock workflows and default config.
    pub fn with_stock() -> Self {
        LaminarServer::new(
            Registry::new(),
            ExecutionEngine::with_stock(),
            ServerConfig::default(),
        )
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    pub fn resources(&self) -> &ResourceCache {
        &self.resources
    }

    pub fn indexes(&self) -> &SearchIndexes {
        &self.indexes
    }

    /// The recommendation subsystem (shared with tests and the benches).
    pub fn reco(&self) -> &RecoIndexes {
        &self.reco
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The serving-path metric registry (shared with the TCP layer).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Switch the description-generation context (experiment E13 compares
    /// `ProcessMethodOnly` vs `FullClass`).
    pub fn set_description_context(&mut self, ctx: DescriptionContext) {
        self.codet5 = CodeT5Sim::new(ctx);
    }

    // ---- controller ---------------------------------------------------------

    /// Dispatch one request at the current protocol version. Convenience
    /// wrapper over [`LaminarServer::handle_envelope`].
    pub fn handle(&self, req: Request) -> Reply {
        self.handle_envelope(RequestEnvelope::new(req)).1
    }

    /// The request-lifecycle ingress: mint a [`RequestId`], enforce the
    /// version rules, account the request against its endpoint's metrics
    /// (request count, in-flight gauge, latency histogram, error count),
    /// and dispatch. Streamed replies are relayed through an accounting
    /// thread that injects the [`WireFrame::Begin`] frame and — crucially —
    /// stops forwarding the moment the downstream receiver disconnects,
    /// dropping the upstream channel so the engine observes the disconnect
    /// and stops doing work.
    pub fn handle_envelope(&self, env: RequestEnvelope) -> (RequestId, Reply) {
        let id = RequestId::mint();
        let ep = self.metrics.endpoint(env.body.endpoint());
        if env.protocol_version > PROTOCOL_VERSION {
            ep.requests.inc();
            ep.rejections.inc();
            return (
                id,
                Reply::Value(Response::Unsupported {
                    server_version: PROTOCOL_VERSION,
                    client_version: env.protocol_version,
                }),
            );
        }
        ep.requests.inc();
        ep.in_flight.inc();
        let start = std::time::Instant::now();
        let reply = match self.dispatch(env.body) {
            Ok(reply) => reply,
            Err(e) => {
                // Central persist-error observation: any mutation that
                // died on the persistence path flips the server into
                // read-only degraded mode.
                if let ServerError::Registry(RegistryError::Persistence(msg)) = &e {
                    self.health.record_persist_error(msg);
                }
                Reply::Value(Response::Error(e.to_string()))
            }
        };
        match reply {
            Reply::Value(v) => {
                if matches!(v, Response::Error(_)) {
                    ep.errors.inc();
                }
                ep.latency.record(start.elapsed());
                ep.in_flight.dec();
                (id, Reply::Value(v))
            }
            Reply::Stream(upstream) => {
                let (tx, rx) = crossbeam_channel::unbounded::<WireFrame>();
                let request_id = id.0;
                std::thread::spawn(move || {
                    let mut failed = false;
                    if tx.send(WireFrame::Begin { request_id }).is_ok() {
                        for frame in upstream.iter() {
                            let done = matches!(
                                frame,
                                WireFrame::End { .. } | WireFrame::Value(Response::Error(_))
                            );
                            if matches!(&frame, WireFrame::Value(Response::Error(_))) {
                                failed = true;
                            }
                            if tx.send(frame).is_err() {
                                // Downstream hung up: drop `upstream` so the
                                // producer stops, and count the abort.
                                failed = true;
                                break;
                            }
                            if done {
                                break;
                            }
                        }
                    } else {
                        failed = true;
                    }
                    if failed {
                        ep.errors.inc();
                    }
                    ep.latency.record(start.elapsed());
                    ep.in_flight.dec();
                });
                (id, Reply::Stream(rx))
            }
        }
    }

    /// True for requests that mutate durable registry state. These are
    /// the endpoints degraded mode rejects; reads, searches, runs (whose
    /// history rows degrade to best-effort), metrics, health, and the
    /// in-memory resource cache keep serving.
    fn is_mutating(req: &Request) -> bool {
        matches!(
            req,
            Request::RegisterUser { .. }
                | Request::RegisterPe { .. }
                | Request::RegisterWorkflow { .. }
                | Request::RegisterBatch { .. }
                | Request::UpdatePeDescription { .. }
                | Request::UpdateWorkflowDescription { .. }
                | Request::RemovePe { .. }
                | Request::RemoveWorkflow { .. }
                | Request::RemoveAll { .. }
                | Request::Compact { .. }
        )
    }

    fn dispatch(&self, req: Request) -> Result<Reply, ServerError> {
        // Read-only degraded mode: reject mutations with the typed
        // rejection (the request was NOT applied; the hint tells
        // idempotent callers when to retry) while everything else keeps
        // serving from in-memory state.
        if self.health.is_degraded() && Self::is_mutating(&req) {
            self.health.note_rejected();
            let reason = self
                .health
                .last_error()
                .map(|e| format!("storage degraded: {e}"))
                .unwrap_or_else(|| "storage degraded".to_string());
            return Ok(Reply::Value(Response::Degraded {
                reason,
                retry_after_ms: self.config.degraded_retry_after_ms,
            }));
        }
        Ok(match req {
            Request::RegisterUser { username, password } => {
                let user = self.registry.register_user(&username, &password)?;
                Reply::Value(Response::Token(self.new_session(user)))
            }
            Request::Login { username, password } => {
                let user = self.registry.login(&username, &password)?;
                Reply::Value(Response::Token(self.new_session(user)))
            }
            Request::RegisterPe { token, pe } => {
                let user = self.auth(token)?;
                let (name, id) = self.register_pe(user, pe)?;
                Reply::Value(Response::Registered {
                    pe_ids: vec![(name, id)],
                    workflow_id: None,
                })
            }
            Request::RegisterWorkflow {
                token,
                name,
                code,
                description,
                pes,
            } => {
                let user = self.auth(token)?;
                let mut pe_ids = Vec::new();
                for pe in &pes {
                    pe_ids.push(self.register_pe(user, pe.clone())?);
                }
                let wf_id = self.register_workflow(user, &name, &code, description, &pe_ids)?;
                Reply::Value(Response::Registered {
                    pe_ids,
                    workflow_id: Some((name, wf_id)),
                })
            }
            Request::RegisterBatch { token, items } => {
                let user = self.auth(token)?;
                let outcomes = self.register_batch(user, items)?;
                Reply::Value(Response::BatchRegistered { outcomes })
            }
            Request::GetPe { token, ident } => {
                self.auth(token)?;
                let pe = self.resolve_pe(&ident)?;
                Reply::Value(Response::Pe(pe_info(&pe)))
            }
            Request::GetWorkflow { token, ident } => {
                self.auth(token)?;
                let wf = self.resolve_workflow(&ident)?;
                Reply::Value(Response::Workflow(wf_info(&wf)))
            }
            Request::GetPesByWorkflow { token, ident } => {
                self.auth(token)?;
                let wf = self.resolve_workflow(&ident)?;
                let pes = self.registry.pes_by_workflow(wf.id)?;
                Reply::Value(Response::Pes(pes.iter().map(pe_info).collect()))
            }
            Request::GetRegistry { token } => {
                self.auth(token)?;
                Reply::Value(Response::Registry {
                    pes: self.registry.all_pes().iter().map(pe_info).collect(),
                    workflows: self.registry.all_workflows().iter().map(wf_info).collect(),
                })
            }
            Request::Describe {
                token,
                scope,
                ident,
            } => {
                self.auth(token)?;
                let text = match scope {
                    SearchScope::Pe => {
                        let pe = self.resolve_pe(&ident)?;
                        format!("{}\n\n{}", pe.description, pe.code)
                    }
                    _ => {
                        let wf = self.resolve_workflow(&ident)?;
                        format!("{}\n\n{}", wf.description, wf.code)
                    }
                };
                Reply::Value(Response::Description(text))
            }
            Request::UpdatePeDescription {
                token,
                ident,
                description,
            } => {
                self.auth(token)?;
                let pe = self.resolve_pe(&ident)?;
                let emb = self.unixcoder.embed_text(&description);
                self.registry
                    .update_pe_description(pe.id, &description, &emb.to_json())?;
                self.indexes.upsert(
                    pe.id,
                    EntryKind::Pe,
                    emb,
                    Spt::parse_source(&pe.code).feature_vec(),
                    &pe.code,
                );
                Reply::Value(Response::Ok)
            }
            Request::UpdateWorkflowDescription {
                token,
                ident,
                description,
            } => {
                self.auth(token)?;
                let wf = self.resolve_workflow(&ident)?;
                let emb = self.unixcoder.embed_text(&description);
                self.registry
                    .update_workflow_description(wf.id, &description, &emb.to_json())?;
                self.indexes.upsert(
                    wf.id,
                    EntryKind::Workflow,
                    emb,
                    Spt::parse_source(&wf.code).feature_vec(),
                    &wf.code,
                );
                Reply::Value(Response::Ok)
            }
            Request::RemovePe { token, ident } => {
                self.auth(token)?;
                let pe = self.resolve_pe(&ident)?;
                self.registry.remove_pe(pe.id)?;
                self.indexes.remove(pe.id, EntryKind::Pe);
                self.reco.remove(pe.id);
                self.sync_index_gauges();
                Reply::Value(Response::Ok)
            }
            Request::RemoveWorkflow { token, ident } => {
                self.auth(token)?;
                let wf = self.resolve_workflow(&ident)?;
                self.registry.remove_workflow(wf.id)?;
                self.indexes.remove(wf.id, EntryKind::Workflow);
                self.sync_index_gauges();
                Reply::Value(Response::Ok)
            }
            Request::RemoveAll { token } => {
                self.auth(token)?;
                self.registry.remove_all()?;
                self.indexes.clear();
                self.reco.clear();
                self.sync_index_gauges();
                Reply::Value(Response::Ok)
            }
            Request::SearchLiteral {
                token,
                scope,
                term,
                top_n,
            } => {
                self.auth(token)?;
                let target = match scope {
                    SearchScope::Pe => SearchTarget::Pe,
                    SearchScope::Workflow => SearchTarget::Workflow,
                    SearchScope::Both => SearchTarget::Both,
                };
                let k = top_n.unwrap_or(self.config.literal_top_n);
                let start = std::time::Instant::now();
                let (pes, wfs) = self.registry.literal_search(target, &term);
                self.metrics.search.literal_latency.record(start.elapsed());
                Reply::Value(Response::Registry {
                    pes: pes.iter().take(k).map(pe_info).collect(),
                    workflows: wfs.iter().take(k).map(wf_info).collect(),
                })
            }
            Request::SearchSemantic {
                token,
                scope,
                query,
                top_n,
            } => {
                self.auth(token)?;
                let k = top_n.unwrap_or(self.config.semantic_top_n);
                Reply::Value(Response::SemanticResults(
                    self.semantic_search(scope, &query, k),
                ))
            }
            Request::CodeRecommendation {
                token,
                scope,
                snippet,
                embedding_type,
                top_n,
            } => {
                self.auth(token)?;
                let k = top_n.unwrap_or(self.config.reco_top_n);
                Reply::Value(Response::Recommendations(self.code_recommendation(
                    scope,
                    &snippet,
                    embedding_type,
                    k,
                )))
            }
            Request::CodeCompletion { token, snippet } => {
                self.auth(token)?;
                Reply::Value(self.code_completion(&snippet))
            }
            Request::GetExecutions { token, ident } => {
                self.auth(token)?;
                let wf = self.resolve_workflow(&ident)?;
                let rows = self
                    .registry
                    .executions_for(wf.id)
                    .into_iter()
                    .map(|e| {
                        let preview = self
                            .registry
                            .responses_for(e.id)
                            .first()
                            .and_then(|r| r.output.lines().next().map(str::to_string))
                            .unwrap_or_default();
                        crate::protocol::ExecutionInfo {
                            id: e.id,
                            mapping: e.mapping,
                            input: e.input,
                            status: format!("{:?}", e.status),
                            output_preview: preview,
                        }
                    })
                    .collect();
                Reply::Value(Response::Executions(rows))
            }
            Request::UploadResource { token, name, bytes } => {
                self.auth(token)?;
                let dedup = self.resources.store(&name, bytes);
                Reply::Value(Response::ResourceStored {
                    name,
                    deduplicated: dedup,
                })
            }
            Request::Run {
                token,
                ident,
                input,
                mode,
                streaming,
                verbose,
                fault,
                task_timeout_ms,
                resources,
            } => {
                let user = self.auth(token)?;
                // §IV-F: answer from the cache; request missing files.
                let missing = self.resources.missing(&resources);
                if !missing.is_empty() {
                    return Ok(Reply::Value(Response::NeedResources(missing)));
                }
                self.run(
                    user,
                    ident,
                    input,
                    mode,
                    streaming,
                    verbose,
                    fault,
                    task_timeout_ms,
                )?
            }
            Request::RunWithInlineResources {
                token,
                ident,
                input,
                mode,
                resources,
            } => {
                let user = self.auth(token)?;
                // Laminar 1.0 baseline: every byte re-transmitted, batch reply.
                self.resources.receive_inline(&resources);
                self.run(
                    user,
                    ident,
                    input,
                    mode,
                    false,
                    false,
                    FaultPolicyWire::default(),
                    None,
                )?
            }
            Request::Metrics {} => {
                let mut snap = self.metrics.snapshot();
                if let Some(p) = self.registry.persist_stats() {
                    snap.persistence = crate::obs::PersistenceSnapshot {
                        enabled: true,
                        wal_appends: p.wal_appends,
                        wal_bytes: p.wal_bytes,
                        fsyncs: p.fsyncs,
                        compactions: p.compactions,
                        wal_records: p.wal_records,
                        recovered_records: p.recovered_records,
                        recovery_ms: p.recovery_ms,
                    };
                }
                snap.storage_health = self.storage_health_snapshot();
                Reply::Value(Response::Metrics(Box::new(snap)))
            }
            Request::Compact { token } => {
                self.auth(token)?;
                match self.registry.compact()? {
                    Some(stats) => Reply::Value(Response::Compacted {
                        wal_records: stats.wal_records,
                        wal_bytes: stats.wal_bytes,
                        snapshot_bytes: stats.snapshot_bytes,
                    }),
                    None => Reply::Value(Response::Error(
                        "registry has no data directory (start the server with --data-dir)".into(),
                    )),
                }
            }
            Request::Health {} => {
                let degraded = self.health.is_degraded();
                Reply::Value(Response::Health {
                    live: true,
                    ready: !degraded,
                    storage: if degraded {
                        StorageStateWire::Degraded
                    } else {
                        StorageStateWire::Healthy
                    },
                    last_persist_error: self.health.last_error(),
                    uptime_ms: self.metrics.uptime_ms(),
                    degraded_transitions: self.health.degraded_entries(),
                })
            }
        })
    }

    /// The `storage_health` metrics row group: the state machine's own
    /// counters merged with the registry-side IO error tally and the
    /// fault injector's per-site op counts (empty when no injector is
    /// armed).
    fn storage_health_snapshot(&self) -> StorageHealthSnapshot {
        let mut snap = self.health.snapshot();
        if let Some(p) = self.registry.persist_stats() {
            snap.io_errors = p.io_errors;
            if snap.last_error.is_none() {
                snap.last_error = p.last_error;
            }
        }
        snap.fault_sites = self
            .registry
            .fault_counters()
            .into_iter()
            .map(|c| (c.site.name().to_string(), c.ops, c.injected))
            .collect();
        snap
    }

    // ---- sessions -------------------------------------------------------------

    fn new_session(&self, user: u64) -> Token {
        let token = self.next_token.fetch_add(1, Ordering::SeqCst);
        self.sessions.write().insert(token, user);
        token
    }

    fn auth(&self, token: Token) -> Result<u64, ServerError> {
        self.sessions
            .read()
            .get(&token)
            .copied()
            .ok_or(ServerError::NotLoggedIn)
    }

    // ---- registration service ---------------------------------------------------

    /// Register a PE: generate the description if absent (§IV-C), embed it,
    /// extract SPT features (§VI), store, index. Re-registering an existing
    /// name returns the existing id (idempotent workflow re-registration).
    fn register_pe(&self, user: u64, pe: PeSubmission) -> Result<(String, u64), ServerError> {
        let description = match &pe.description {
            Some(d) if !d.is_empty() => d.clone(),
            _ => self.codet5.describe_pe(&pe.code),
        };
        let desc_emb = self.unixcoder.embed_text(&description);
        let spt_vec = Spt::parse_source(&pe.code).feature_vec();
        let result = self.registry.add_pe(NewPe {
            user_id: user,
            name: pe.name.clone(),
            description: description.clone(),
            code: pe.code.clone(),
            description_embedding: desc_emb.to_json(),
            spt_embedding: spt_vec.to_json(),
        });
        match result {
            Ok(id) => {
                self.indexes
                    .upsert(id, EntryKind::Pe, desc_emb, spt_vec, &pe.code);
                self.reco.upsert(id, &pe.name, &pe.code);
                self.sync_index_gauges();
                Ok((pe.name, id))
            }
            Err(RegistryError::DuplicateName { .. }) => {
                let existing = self.registry.get_pe_by_name(&pe.name)?;
                Ok((pe.name, existing.id))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn register_workflow(
        &self,
        user: u64,
        name: &str,
        code: &str,
        description: Option<String>,
        pe_ids: &[(String, u64)],
    ) -> Result<u64, ServerError> {
        let description = match description {
            Some(d) if !d.is_empty() => d,
            _ => {
                let codes: Vec<String> = pe_ids
                    .iter()
                    .filter_map(|(_, id)| self.registry.get_pe(*id).ok())
                    .map(|p| p.code)
                    .collect();
                let refs: Vec<&str> = codes.iter().map(String::as_str).collect();
                self.codet5.describe_workflow(name, &refs)
            }
        };
        let desc_emb = self.unixcoder.embed_text(&description);
        let spt_vec = Spt::parse_source(code).feature_vec();
        let id = self.registry.add_workflow(NewWorkflow {
            user_id: user,
            name: name.to_string(),
            description,
            code: code.to_string(),
            description_embedding: desc_emb.to_json(),
            spt_embedding: spt_vec.to_json(),
            pe_ids: pe_ids.iter().map(|(_, id)| *id).collect(),
        })?;
        self.indexes
            .upsert(id, EntryKind::Workflow, desc_emb, spt_vec, code);
        self.sync_index_gauges();
        Ok(id)
    }

    /// Bulk ingestion (v6): the batched counterpart of N sequential
    /// `RegisterPe`/`RegisterWorkflow` calls, in three amortized stages:
    ///
    /// 1. **Analyze** (rayon-parallel, no locks): per submission, pyparse →
    ///    SPT features → codet5 description → unixcoder/reacc embeddings.
    /// 2. **Commit** ([`Registry::add_units`]): every unit validated under
    ///    one write-lock hold, all rows appended as one group-commit WAL
    ///    frame (one fsync), then applied.
    /// 3. **Index**: every created row published through one bulk upsert —
    ///    a single RCU snapshot swap instead of one per row.
    ///
    /// Outcomes are per-item (partial success); the final state is
    /// identical to registering the same items sequentially, including
    /// duplicate-name reuse and the partial-progress behaviour on item
    /// failure. The outer `Err` is reserved for WAL failure, in which case
    /// nothing was committed.
    ///
    /// [`Registry::add_units`]: laminar_registry::Registry::add_units
    fn register_batch(
        &self,
        user: u64,
        items: Vec<BatchItemWire>,
    ) -> Result<Vec<BatchOutcomeWire>, ServerError> {
        struct AnalyzedPe {
            name: String,
            code: String,
            description: String,
            desc_emb: DenseVec,
            spt_vec: FeatureVec,
            reacc: DenseVec,
        }
        struct AnalyzedWf {
            name: String,
            code: String,
            /// `None` until the auto-description resolves in stage 2.
            description: Option<String>,
            desc_emb: DenseVec,
            spt_vec: FeatureVec,
            reacc: DenseVec,
        }
        struct AnalyzedItem {
            pes: Vec<AnalyzedPe>,
            workflow: Option<AnalyzedWf>,
        }
        let item_count = items.len();

        // Stage 1: parallel per-submission analysis. Everything here is
        // pure (registry untouched), so items fan out across rayon
        // workers; the duplicate-heavy case wastes some embedding work,
        // exactly like the sequential path does.
        let analyze_start = std::time::Instant::now();
        let reacc = ReaccSim::new();
        let analyze_pe = |pe: &PeSubmission| {
            let description = match &pe.description {
                Some(d) if !d.is_empty() => d.clone(),
                _ => self.codet5.describe_pe(&pe.code),
            };
            AnalyzedPe {
                name: pe.name.clone(),
                code: pe.code.clone(),
                desc_emb: self.unixcoder.embed_text(&description),
                spt_vec: Spt::parse_source(&pe.code).feature_vec(),
                reacc: reacc.embed_code(&pe.code),
                description,
            }
        };
        let mut analyzed: Vec<AnalyzedItem> = items
            .par_iter()
            .map(|item| match item {
                BatchItemWire::Pe(pe) => AnalyzedItem {
                    pes: vec![analyze_pe(pe)],
                    workflow: None,
                },
                BatchItemWire::Workflow {
                    name,
                    code,
                    description,
                    pes,
                } => {
                    let description = match description {
                        Some(d) if !d.is_empty() => Some(d.clone()),
                        _ => None,
                    };
                    // Placeholder for auto-described workflows; replaced
                    // in stage 2a once the member codes resolve.
                    let desc_emb = description
                        .as_deref()
                        .map(|d| self.unixcoder.embed_text(d))
                        .unwrap_or_else(DenseVec::zero);
                    AnalyzedItem {
                        pes: pes.iter().map(analyze_pe).collect(),
                        workflow: Some(AnalyzedWf {
                            name: name.clone(),
                            code: code.clone(),
                            description,
                            desc_emb,
                            spt_vec: Spt::parse_source(code).feature_vec(),
                            reacc: reacc.embed_code(code),
                        }),
                    }
                }
            })
            .collect();

        // Stage 2a (sequential, pre-lock): resolve workflow
        // auto-descriptions from the member codes the workflow rows will
        // actually reference — the *existing* row's code when a member
        // name duplicates (committed rows first, then earlier batch
        // items), the submitted code when the member is new. This mirrors
        // the sequential path, where members commit before the workflow
        // description reads them back via `get_pe`.
        let user_pe_names: std::collections::HashSet<String> = self
            .registry
            .all_pes()
            .iter()
            .filter(|p| p.user_id == user)
            .map(|p| p.name.to_lowercase())
            .collect();
        let mut pending_codes: HashMap<String, String> = HashMap::new();
        for item in &mut analyzed {
            let mut member_codes: Vec<String> = Vec::with_capacity(item.pes.len());
            for pe in &item.pes {
                let key = pe.name.to_lowercase();
                let dup = user_pe_names.contains(&key) || pending_codes.contains_key(&key);
                let code = if dup {
                    self.registry
                        .get_pe_by_name(&pe.name)
                        .map(|row| row.code)
                        .unwrap_or_else(|_| {
                            pending_codes
                                .get(&key)
                                .cloned()
                                .unwrap_or_else(|| pe.code.clone())
                        })
                } else {
                    pending_codes.insert(key, pe.code.clone());
                    pe.code.clone()
                };
                member_codes.push(code);
            }
            if let Some(wf) = &mut item.workflow {
                if wf.description.is_none() {
                    let refs: Vec<&str> = member_codes.iter().map(String::as_str).collect();
                    let d = self.codet5.describe_workflow(&wf.name, &refs);
                    wf.desc_emb = self.unixcoder.embed_text(&d);
                    wf.description = Some(d);
                }
            }
        }
        let analyze_elapsed = analyze_start.elapsed();

        // Stage 2b: group commit — one lock hold, one WAL frame.
        let commit_start = std::time::Instant::now();
        let units: Vec<laminar_registry::RegistrationUnit> = analyzed
            .iter()
            .map(|item| laminar_registry::RegistrationUnit {
                pes: item
                    .pes
                    .iter()
                    .map(|p| NewPe {
                        user_id: user,
                        name: p.name.clone(),
                        description: p.description.clone(),
                        code: p.code.clone(),
                        description_embedding: p.desc_emb.to_json(),
                        spt_embedding: p.spt_vec.to_json(),
                    })
                    .collect(),
                workflow: item.workflow.as_ref().map(|w| NewWorkflow {
                    user_id: user,
                    name: w.name.clone(),
                    description: w.description.clone().unwrap_or_default(),
                    code: w.code.clone(),
                    description_embedding: w.desc_emb.to_json(),
                    spt_embedding: w.spt_vec.to_json(),
                    // Resolved per-unit inside `add_units`.
                    pe_ids: Vec::new(),
                }),
            })
            .collect();
        let outcomes = self.registry.add_units(units)?;
        let commit_elapsed = commit_start.elapsed();

        // Stage 3: publish every *created* row (duplicate-reused PEs are
        // not re-indexed, matching the sequential path) in one snapshot
        // swap.
        let index_start = std::time::Instant::now();
        let mut rows: Vec<(u64, EntryKind, DenseVec, FeatureVec, DenseVec)> = Vec::new();
        let mut reco_rows: Vec<Snippet> = Vec::new();
        for (outcome, item) in outcomes.iter().zip(analyzed) {
            for (po, ap) in outcome.pes.iter().zip(item.pes) {
                if po.created {
                    reco_rows.push(Snippet::new(po.id, &ap.name, &ap.code));
                    rows.push((po.id, EntryKind::Pe, ap.desc_emb, ap.spt_vec, ap.reacc));
                }
            }
            if let (Some((_, wf_id)), Some(aw)) = (&outcome.workflow, item.workflow) {
                rows.push((
                    *wf_id,
                    EntryKind::Workflow,
                    aw.desc_emb,
                    aw.spt_vec,
                    aw.reacc,
                ));
            }
        }
        let created_rows = rows.len() as u64;
        self.indexes.bulk_upsert_embedded(rows);
        if !reco_rows.is_empty() {
            self.reco.bulk_upsert(reco_rows);
        }
        self.sync_index_gauges();
        let index_elapsed = index_start.elapsed();

        let failed = outcomes.iter().filter(|o| o.error.is_some()).count() as u64;
        let ingest = &self.metrics.ingest;
        ingest.batches.inc();
        ingest.items.add(item_count as u64);
        ingest.items_failed.add(failed);
        ingest.rows.add(created_rows);
        ingest.batch_size.record_value(item_count as u64);
        if self.registry.persist_stats().is_some() {
            // Each created row shared the one group-commit frame instead
            // of paying its own WAL append/fsync.
            ingest.fsyncs_saved.add(created_rows.saturating_sub(1));
        }
        ingest.analyze_latency.record(analyze_elapsed);
        ingest.commit_latency.record(commit_elapsed);
        ingest.index_latency.record(index_elapsed);

        Ok(outcomes
            .into_iter()
            .map(|o| {
                let pe_ids: Vec<(String, u64)> =
                    o.pes.into_iter().map(|p| (p.name, p.id)).collect();
                match o.error {
                    None => BatchOutcomeWire::Registered {
                        pe_ids,
                        workflow_id: o.workflow,
                    },
                    Some(e) => BatchOutcomeWire::Failed {
                        pe_ids,
                        error: e.to_string(),
                    },
                }
            })
            .collect())
    }

    // ---- search service ------------------------------------------------------------

    /// Look up or compute a query embedding through the optional cache.
    /// Both embedders tokenize, so the trimmed normal form embeds
    /// identically to the raw request string.
    fn cached_embed(
        &self,
        modality: QueryModality,
        query: &str,
        embed: impl FnOnce(&str) -> DenseVec,
    ) -> DenseVec {
        let Some(cache) = &self.query_cache else {
            return embed(query);
        };
        let norm = QueryCache::normalize(query);
        if let Some(v) = cache.embedding(modality, &norm) {
            self.metrics.search_quant.embed_cache_hits.inc();
            return v;
        }
        self.metrics.search_quant.embed_cache_misses.inc();
        let v = embed(&norm);
        cache.store_embedding(modality, norm, v.clone());
        v
    }

    /// Look up or compute a ranking through the optional result cache.
    /// The key carries the current index snapshot generation, so entries
    /// computed against an older snapshot stop matching the moment a
    /// write publishes — no explicit invalidation.
    fn cached_rank(
        &self,
        op: ResultOp,
        kind: Option<EntryKind>,
        k: usize,
        min_score: f32,
        query: &str,
        rank: impl FnOnce() -> Vec<IndexHit>,
    ) -> Vec<IndexHit> {
        let Some(cache) = &self.query_cache else {
            return rank();
        };
        let key = ResultKey {
            generation: self.indexes.generation(),
            op,
            kind,
            k,
            score_bits: min_score.to_bits(),
            query: QueryCache::normalize(query),
        };
        if let Some(hits) = cache.results(&key) {
            self.metrics.search_quant.result_cache_hits.inc();
            return hits;
        }
        self.metrics.search_quant.result_cache_misses.inc();
        let hits = rank();
        cache.store_results(key, hits.clone());
        hits
    }

    /// Fold one two-phase scan's timings into the `search_quant` group.
    fn observe_quant(&self, stats: Option<TwoPhaseStats>) {
        if let Some(s) = stats {
            let q = &self.metrics.search_quant;
            q.rescore_window.record_value(s.window as u64);
            q.quant_scan_latency.record(s.phase1);
            q.rescore_latency.record(s.rescore);
        }
    }

    fn semantic_search(&self, scope: SearchScope, query: &str, k: usize) -> Vec<SemanticHit> {
        let qvec = self.cached_embed(QueryModality::Text, query, |q| self.unixcoder.embed_text(q));
        let kind = match scope {
            SearchScope::Pe => Some(EntryKind::Pe),
            SearchScope::Workflow => Some(EntryKind::Workflow),
            SearchScope::Both => None,
        };
        let start = std::time::Instant::now();
        let hits = self.cached_rank(ResultOp::Semantic, kind, k, 0.0, query, || {
            let (hits, stats) = self.indexes.rank_semantic_with_stats(&qvec, kind, k);
            self.observe_quant(stats);
            hits
        });
        self.metrics.search.semantic_latency.record(start.elapsed());
        hits.into_iter()
            .filter_map(|h| {
                let (name, description) = match h.kind {
                    EntryKind::Pe => {
                        let p = self.registry.get_pe(h.id).ok()?;
                        (p.name, p.description)
                    }
                    EntryKind::Workflow => {
                        let w = self.registry.get_workflow(h.id).ok()?;
                        (w.name, w.description)
                    }
                };
                Some(SemanticHit {
                    id: h.id,
                    name,
                    description,
                    cosine_similarity: h.score,
                })
            })
            .collect()
    }

    fn code_recommendation(
        &self,
        scope: SearchScope,
        snippet: &str,
        embedding_type: EmbeddingType,
        k: usize,
    ) -> Vec<RecommendationHit> {
        self.metrics.reco.requests.inc();
        // Full-response cache: the key carries both snapshot generations
        // (search indexes and recommendation engine), so a write to
        // either publishes and the entry stops matching.
        let key = self.query_cache.as_ref().map(|_| RecoKey {
            generation: self.indexes.generation(),
            reco_generation: self.reco.generation(),
            scope,
            embedding: embedding_type,
            k,
            snippet: QueryCache::normalize(snippet),
        });
        if let (Some(cache), Some(key)) = (&self.query_cache, &key) {
            if let Some(hits) = cache.recommendations(key) {
                self.metrics.reco.cache_hits.inc();
                return hits;
            }
            self.metrics.reco.cache_misses.inc();
        }
        let hits = match scope {
            SearchScope::Pe => self.recommend_pes(snippet, embedding_type, k),
            SearchScope::Workflow => self.recommend_workflows(snippet, embedding_type, k),
            SearchScope::Both => {
                // Both lists, merged on the shared score scale. (The old
                // dispatch folded `Both` into the PE arm, so it never
                // returned a workflow hit.)
                let mut hits = self.recommend_pes(snippet, embedding_type, k);
                hits.extend(self.recommend_workflows(snippet, embedding_type, k));
                hits.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.id.cmp(&b.id))
                });
                hits.truncate(k);
                hits
            }
        };
        if let (Some(cache), Some(key)) = (&self.query_cache, key) {
            cache.store_recommendations(key, hits.clone());
        }
        hits
    }

    /// PE-scope recommendations. `spt` runs the full Aroma pipeline
    /// (retrieve → prune & rerank → cluster → intersect) on the engine's
    /// current snapshot; `llm` stays the flat ReACC cosine ranking.
    fn recommend_pes(
        &self,
        snippet: &str,
        embedding_type: EmbeddingType,
        k: usize,
    ) -> Vec<RecommendationHit> {
        match embedding_type {
            EmbeddingType::Spt => {
                let snap = self.reco.snapshot();
                let start = std::time::Instant::now();
                let (recs, stats) = snap.engine.recommend_with_stats(snippet);
                self.metrics.search.spt_latency.record(start.elapsed());
                self.metrics.reco.observe(&stats);
                recs.into_iter()
                    .filter_map(|r| {
                        let pe = self.registry.get_pe(r.seed_id).ok()?;
                        Some(RecommendationHit {
                            id: r.seed_id,
                            name: pe.name,
                            description: pe.description,
                            // The seed's raw feature overlap — the scale
                            // the flat scan always reported (≥ 6.0).
                            score: r.retrieval_score,
                            occurrences: 1,
                            similar_code: first_function(&pe.code),
                            cluster_size: r.cluster_size,
                            common_core: r.code,
                        })
                    })
                    .take(k)
                    .collect()
            }
            EmbeddingType::Llm => {
                let q = self.cached_embed(QueryModality::Code, snippet, |s| {
                    ReaccSim::new().embed_code(s)
                });
                let start = std::time::Instant::now();
                let hits = self.cached_rank(
                    ResultOp::Reacc,
                    Some(EntryKind::Pe),
                    k,
                    0.0,
                    snippet,
                    || {
                        let (hits, stats) =
                            self.indexes
                                .rank_reacc_with_stats(&q, Some(EntryKind::Pe), k);
                        self.observe_quant(stats);
                        hits
                    },
                );
                self.metrics.search.reacc_latency.record(start.elapsed());
                hits.into_iter()
                    .filter(|h| h.score >= self.config.reco_min_cosine)
                    .filter_map(|h| {
                        let pe = self.registry.get_pe(h.id).ok()?;
                        Some(RecommendationHit {
                            id: h.id,
                            name: pe.name,
                            description: pe.description,
                            score: h.score,
                            occurrences: 1,
                            similar_code: first_function(&pe.code),
                            cluster_size: 1,
                            common_core: String::new(),
                        })
                    })
                    .collect()
            }
        }
    }

    /// Workflow-scope recommendations (Fig. 9 bottom): workflows
    /// containing matching PEs, ranked by total member score. Aggregation
    /// needs *every* PE above threshold (a workflow's rank sums member
    /// scores), so this path uses the threshold scan, not top-k.
    fn recommend_workflows(
        &self,
        snippet: &str,
        embedding_type: EmbeddingType,
        k: usize,
    ) -> Vec<RecommendationHit> {
        let pe_hits: Vec<(u64, f32)> = match embedding_type {
            EmbeddingType::Spt => {
                let start = std::time::Instant::now();
                let hits = self.cached_rank(
                    ResultOp::SptAbove,
                    Some(EntryKind::Pe),
                    usize::MAX,
                    self.config.reco_min_score,
                    snippet,
                    || {
                        let q = Spt::parse_source(snippet).feature_vec();
                        self.indexes.rank_spt_above(
                            &q,
                            Some(EntryKind::Pe),
                            self.config.reco_min_score,
                        )
                    },
                );
                self.metrics.search.spt_latency.record(start.elapsed());
                hits.into_iter().map(|h| (h.id, h.score)).collect()
            }
            EmbeddingType::Llm => {
                let q = self.cached_embed(QueryModality::Code, snippet, |s| {
                    ReaccSim::new().embed_code(s)
                });
                let start = std::time::Instant::now();
                let hits = self.cached_rank(
                    ResultOp::ReaccAbove,
                    Some(EntryKind::Pe),
                    usize::MAX,
                    self.config.reco_min_cosine,
                    snippet,
                    || {
                        self.indexes.rank_reacc_above(
                            &q,
                            Some(EntryKind::Pe),
                            self.config.reco_min_cosine,
                        )
                    },
                );
                self.metrics.search.reacc_latency.record(start.elapsed());
                hits.into_iter().map(|h| (h.id, h.score)).collect()
            }
        };
        let workflows = self.registry.all_workflows();
        sweep_workflows(
            &pe_hits,
            workflows.iter().map(|wf| (wf.id, wf.pe_ids.as_slice())),
        )
        .into_iter()
        .take(k)
        .filter_map(|(wf_id, score, occurrences)| {
            let wf = workflows.iter().find(|w| w.id == wf_id)?;
            Some(RecommendationHit {
                id: wf_id,
                name: wf.name.clone(),
                description: wf.description.clone(),
                score,
                occurrences,
                similar_code: String::new(),
                cluster_size: 0,
                common_core: String::new(),
            })
        })
        .collect()
    }

    /// Context-aware code completion (§III): the best SPT match above a
    /// relaxed threshold supplies the untyped remainder.
    fn code_completion(&self, snippet: &str) -> Response {
        let q = Spt::parse_source(snippet).feature_vec();
        let start = std::time::Instant::now();
        // Only the single best match matters (the ranking is best-first,
        // so a failed threshold on the top hit fails on every hit).
        let top = self.indexes.rank_spt(&q, Some(EntryKind::Pe), 1);
        self.metrics.search.spt_latency.record(start.elapsed());
        let best = top
            .into_iter()
            // Completion works from much smaller fragments than
            // recommendation, so use half the recommendation threshold.
            .find(|h| h.score >= self.config.reco_min_score / 2.0);
        let Some(hit) = best else {
            return Response::Completion {
                source: None,
                lines: Vec::new(),
                progress: 0.0,
            };
        };
        let Ok(pe) = self.registry.get_pe(hit.id) else {
            return Response::Completion {
                source: None,
                lines: Vec::new(),
                progress: 0.0,
            };
        };
        let completion = aroma::complete_from(snippet, &pe.code);
        Response::Completion {
            source: Some((pe.id, pe.name)),
            lines: completion.lines,
            progress: completion.progress,
        }
    }

    // ---- execution service ------------------------------------------------------------

    fn resolve_pe(&self, ident: &Ident) -> Result<PeRow, ServerError> {
        Ok(match ident {
            Ident::Id(id) => self.registry.get_pe(*id)?,
            Ident::Name(name) => self.registry.get_pe_by_name(name)?,
        })
    }

    fn resolve_workflow(&self, ident: &Ident) -> Result<WorkflowRow, ServerError> {
        Ok(match ident {
            Ident::Id(id) => self.registry.get_workflow(*id)?,
            Ident::Name(name) => self.registry.get_workflow_by_name(name)?,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        user: u64,
        ident: Ident,
        input: RunInputWire,
        mode: RunMode,
        streaming: bool,
        verbose: bool,
        fault: FaultPolicyWire,
        task_timeout_ms: Option<u64>,
    ) -> Result<Reply, ServerError> {
        let wf = self.resolve_workflow(&ident)?;
        let mapping = match mode {
            RunMode::Sequential => d4py::Mapping::Simple,
            RunMode::Multiprocess { processes } => d4py::Mapping::Multi { processes },
            RunMode::Dynamic => d4py::Mapping::Dynamic(self.config.dynamic.clone()),
        };
        let mapping_name = match &mapping {
            d4py::Mapping::Simple => "simple",
            d4py::Mapping::Multi { .. } => "multi",
            d4py::Mapping::Dynamic(_) => "dynamic",
        };
        let run_input: d4py::RunInput = input.clone().into();
        // Execution-history rows are best-effort under degraded storage:
        // a run still executes when the WAL cannot take the row — it just
        // leaves no history. The persist error itself flips health to
        // degraded so operators see it.
        let exec_id =
            match self
                .registry
                .add_execution(wf.id, user, mapping_name, &format!("{input:?}"))
            {
                Ok(id) => {
                    match self
                        .registry
                        .set_execution_status(id, ExecutionStatus::Running)
                    {
                        Ok(()) => Some(id),
                        Err(RegistryError::Persistence(msg)) => {
                            self.health.record_persist_error(&msg);
                            Some(id)
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                Err(RegistryError::Persistence(msg)) => {
                    self.health.record_persist_error(&msg);
                    None
                }
                Err(e) => return Err(e.into()),
            };

        let engine_rx = self.engine.execute(ExecRequest {
            workflow: wf.name.clone(),
            code: wf.code.clone(),
            input: run_input,
            mapping,
            mode: if streaming {
                ResponseMode::Streaming
            } else {
                ResponseMode::Batch
            },
            verbose,
            options: d4py::RunOptions {
                fault_policy: fault.into(),
                task_timeout: task_timeout_ms.map(std::time::Duration::from_millis),
            },
        });

        let (tx, rx) = crossbeam_channel::unbounded::<WireFrame>();
        let registry = self.registry.clone();
        let metrics = self.metrics.clone();
        let health = self.health.clone();
        let finish = move |status: ExecutionStatus, collected: &[String]| {
            let Some(exec_id) = exec_id else { return };
            for res in [
                registry
                    .add_response(exec_id, &collected.join("\n"), status)
                    .map(|_| ()),
                registry.set_execution_status(exec_id, status),
            ] {
                if let Err(RegistryError::Persistence(msg)) = res {
                    health.record_persist_error(&msg);
                }
            }
        };
        std::thread::spawn(move || {
            let mut collected = Vec::new();
            for frame in engine_rx.iter() {
                let done = matches!(frame, Frame::End { .. } | Frame::Error(_));
                let wire = match frame {
                    Frame::Info(i) => WireFrame::Info(i),
                    Frame::Line(l) => {
                        collected.push(l.clone());
                        WireFrame::Line(l)
                    }
                    Frame::Summary(s) => WireFrame::Summary(s),
                    Frame::DeadLetter(d) => WireFrame::DeadLetter(d),
                    Frame::Faults(s) => {
                        metrics.enactment.observe(&s);
                        WireFrame::Faults(s)
                    }
                    Frame::End { ok, duration } => WireFrame::End {
                        ok,
                        millis: duration.as_millis() as u64,
                    },
                    Frame::Error(e) => WireFrame::Value(Response::Error(e.to_string())),
                };
                let failed = matches!(&wire, WireFrame::Value(Response::Error(_)));
                if done {
                    // Persist the outcome BEFORE emitting the terminal
                    // frame: once the client observes End, the registry
                    // must already reflect the acknowledged run, or a
                    // crash straight after the stream drains loses rows
                    // the client was told about.
                    let status = if failed {
                        ExecutionStatus::Failed
                    } else {
                        ExecutionStatus::Completed
                    };
                    metrics.enactment.runs.inc();
                    if failed {
                        metrics.enactment.runs_failed.inc();
                    }
                    finish(status, &collected);
                    let _ = tx.send(wire);
                    break;
                }
                if tx.send(wire).is_err() {
                    // The consumer disconnected mid-stream. Stop pumping —
                    // dropping `engine_rx` tells the engine nobody is
                    // listening — and record the aborted execution.
                    finish(ExecutionStatus::Failed, &collected);
                    break;
                }
            }
        });
        Ok(Reply::Stream(rx))
    }
}

fn pe_info(pe: &PeRow) -> PeInfo {
    PeInfo {
        id: pe.id,
        name: pe.name.clone(),
        description: pe.description.clone(),
        code: pe.code.clone(),
    }
}

fn wf_info(wf: &WorkflowRow) -> WorkflowInfo {
    WorkflowInfo {
        id: wf.id,
        name: wf.name.clone(),
        description: wf.description.clone(),
        code: wf.code.clone(),
        pe_ids: wf.pe_ids.clone(),
    }
}

/// First function definition's text in `code` (Fig. 9's `similarFunc`).
fn first_function(code: &str) -> String {
    let tree = pyparse::parse(code);
    tree.find_kind(pyparse::SyntaxKind::FuncDef)
        .first()
        .map(|&f| tree.text_of(f))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRODUCER: &str = "class NumberProducer(ProducerPE):\n    def _process(self, inputs):\n        return random.randint(1, 1000)\n";
    const ISPRIME: &str = "class IsPrime(IterativePE):\n    def _process(self, num):\n        if all(num % i != 0 for i in range(2, num)):\n            return num\n";
    const PRINTER: &str = "class PrintPrime(ConsumerPE):\n    def _process(self, num):\n        print('the num {} is prime'.format(num))\n";

    fn server_with_session() -> (LaminarServer, Token) {
        let server = LaminarServer::with_stock();
        let token = match server
            .handle(Request::RegisterUser {
                username: "rosa".into(),
                password: "pw".into(),
            })
            .value()
        {
            Response::Token(t) => t,
            other => panic!("{other:?}"),
        };
        (server, token)
    }

    fn register_isprime(server: &LaminarServer, token: Token) -> (Vec<(String, u64)>, u64) {
        let resp = server
            .handle(Request::RegisterWorkflow {
                token,
                name: "isprime_wf".into(),
                code: format!("{PRODUCER}\n{ISPRIME}\n{PRINTER}"),
                description: None,
                pes: vec![
                    PeSubmission {
                        name: "NumberProducer".into(),
                        code: PRODUCER.into(),
                        description: None,
                    },
                    PeSubmission {
                        name: "IsPrime".into(),
                        code: ISPRIME.into(),
                        description: None,
                    },
                    PeSubmission {
                        name: "PrintPrime".into(),
                        code: PRINTER.into(),
                        description: None,
                    },
                ],
            })
            .value();
        match resp {
            Response::Registered {
                pe_ids,
                workflow_id,
            } => (pe_ids, workflow_id.unwrap().1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn auth_required() {
        let server = LaminarServer::with_stock();
        let resp = server.handle(Request::GetRegistry { token: 999 }).value();
        assert_eq!(resp, Response::Error("not logged in".into()));
    }

    #[test]
    fn register_login_flow() {
        let (server, _) = server_with_session();
        // Duplicate user rejected.
        let resp = server
            .handle(Request::RegisterUser {
                username: "rosa".into(),
                password: "pw2".into(),
            })
            .value();
        assert!(matches!(resp, Response::Error(_)));
        // Login works and mints a new token.
        let resp = server
            .handle(Request::Login {
                username: "rosa".into(),
                password: "pw".into(),
            })
            .value();
        assert!(matches!(resp, Response::Token(_)));
    }

    #[test]
    fn workflow_registration_like_fig5a() {
        let (server, token) = server_with_session();
        let (pe_ids, wf_id) = register_isprime(&server, token);
        assert_eq!(pe_ids.len(), 3, "Found PEs: producer, isprime, print");
        assert!(wf_id > 0);
        // Auto-descriptions were generated (§IV-C).
        let pe = server.registry().get_pe(pe_ids[1].1).unwrap();
        assert!(
            pe.description.to_lowercase().contains("prime"),
            "{}",
            pe.description
        );
        assert!(!pe.description_embedding.is_empty());
        assert!(!pe.spt_embedding.is_empty());
        // Idempotent re-registration reuses PEs but fails on workflow name.
        let resp = server
            .handle(Request::RegisterWorkflow {
                token,
                name: "isprime_wf".into(),
                code: "x = 1".into(),
                description: None,
                pes: vec![PeSubmission {
                    name: "IsPrime".into(),
                    code: ISPRIME.into(),
                    description: None,
                }],
            })
            .value();
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn get_and_describe() {
        let (server, token) = server_with_session();
        let (pe_ids, wf_id) = register_isprime(&server, token);
        // By id and by name.
        let by_id = server
            .handle(Request::GetPe {
                token,
                ident: Ident::Id(pe_ids[0].1),
            })
            .value();
        let by_name = server
            .handle(Request::GetPe {
                token,
                ident: Ident::Name("NumberProducer".into()),
            })
            .value();
        assert_eq!(by_id, by_name);
        // PEs by workflow, in order.
        let resp = server
            .handle(Request::GetPesByWorkflow {
                token,
                ident: Ident::Id(wf_id),
            })
            .value();
        match resp {
            Response::Pes(pes) => {
                assert_eq!(
                    pes.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
                    vec!["NumberProducer", "IsPrime", "PrintPrime"]
                );
            }
            other => panic!("{other:?}"),
        }
        // Describe returns description + code.
        let resp = server
            .handle(Request::Describe {
                token,
                scope: SearchScope::Pe,
                ident: Ident::Name("IsPrime".into()),
            })
            .value();
        match resp {
            Response::Description(d) => assert!(d.contains("class IsPrime")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn literal_search_fig7() {
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        let resp = server
            .handle(Request::SearchLiteral {
                token,
                scope: SearchScope::Both,
                term: "prime".to_string(),
                top_n: None,
            })
            .value();
        match resp {
            Response::Registry { pes, workflows } => {
                assert!(pes.len() >= 2, "IsPrime + PrintPrime");
                assert_eq!(workflows.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn semantic_search_fig8() {
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        server
            .handle(Request::RegisterPe {
                token,
                pe: PeSubmission {
                    name: "AnomalyDetectionPE".into(),
                    code: "class AnomalyDetectionPE(IterativePE):\n    \"\"\"Anomaly detection PE: flags sensor values deviating from the mean.\"\"\"\n    def _process(self, record):\n        if abs(record['value'] - self.mean) > self.threshold:\n            return record\n".to_string(),
                    description: None,
                },
            })
            .value();
        let resp = server
            .handle(Request::SearchSemantic {
                token,
                scope: SearchScope::Pe,
                query: "a pe that is able to detect anomalies".into(),
                top_n: None,
            })
            .value();
        match resp {
            Response::SemanticResults(hits) => {
                assert!(!hits.is_empty());
                assert_eq!(hits[0].name, "AnomalyDetectionPE", "{hits:?}");
                assert!(
                    hits[0].cosine_similarity > hits.last().unwrap().cosine_similarity
                        || hits.len() == 1
                );
                assert!(hits.len() <= 5, "top-5 default");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn code_recommendation_fig9() {
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        // PE recommendation with the default SPT embedding.
        let resp = server
            .handle(Request::CodeRecommendation {
                token,
                scope: SearchScope::Pe,
                snippet: "random.randint(1, 1000)".into(),
                embedding_type: EmbeddingType::Spt,
                top_n: None,
            })
            .value();
        match resp {
            Response::Recommendations(hits) => {
                assert!(!hits.is_empty());
                assert_eq!(hits[0].name, "NumberProducer");
                assert!(hits[0].score >= 6.0);
                assert!(
                    hits[0].similar_code.contains("def _process"),
                    "{}",
                    hits[0].similar_code
                );
            }
            other => panic!("{other:?}"),
        }
        // Workflow recommendation (spt only, per the paper's note).
        let resp = server
            .handle(Request::CodeRecommendation {
                token,
                scope: SearchScope::Workflow,
                snippet: "random.randint(1, 1000)".into(),
                embedding_type: EmbeddingType::Spt,
                top_n: None,
            })
            .value();
        match resp {
            Response::Recommendations(hits) => {
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].name, "isprime_wf");
                assert_eq!(hits[0].occurrences, 1);
            }
            other => panic!("{other:?}"),
        }
        // LLM embedding type still supported.
        let resp = server
            .handle(Request::CodeRecommendation {
                token,
                scope: SearchScope::Pe,
                snippet: ISPRIME.into(),
                embedding_type: EmbeddingType::Llm,
                top_n: None,
            })
            .value();
        match resp {
            Response::Recommendations(hits) => {
                assert!(!hits.is_empty());
                assert_eq!(hits[0].name, "IsPrime");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn both_scope_returns_pe_and_workflow_hits() {
        // Regression: the old dispatch matched `Both` into the PE-only
        // arm, so a `Both` recommendation never contained a workflow.
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        for embedding_type in [EmbeddingType::Spt, EmbeddingType::Llm] {
            let resp = server
                .handle(Request::CodeRecommendation {
                    token,
                    scope: SearchScope::Both,
                    snippet: PRODUCER.into(),
                    embedding_type,
                    top_n: None,
                })
                .value();
            match resp {
                Response::Recommendations(hits) => {
                    assert!(
                        hits.iter().any(|h| h.name == "NumberProducer"),
                        "{embedding_type:?}: {hits:?}"
                    );
                    assert!(
                        hits.iter().any(|h| h.name == "isprime_wf"),
                        "{embedding_type:?}: {hits:?}"
                    );
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn recommendations_come_from_the_full_pipeline() {
        // Served hits must agree with a direct `AromaEngine::recommend`
        // over the same snapshot — pipeline fields included.
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        let snippet = "random.randint(1, 1000)";
        let direct = server.reco().snapshot().engine.recommend(snippet);
        assert!(!direct.is_empty());
        let resp = server
            .handle(Request::CodeRecommendation {
                token,
                scope: SearchScope::Pe,
                snippet: snippet.into(),
                embedding_type: EmbeddingType::Spt,
                top_n: None,
            })
            .value();
        let Response::Recommendations(hits) = resp else {
            panic!("{resp:?}");
        };
        assert_eq!(hits.len(), direct.len().min(5));
        for (h, r) in hits.iter().zip(&direct) {
            assert_eq!(h.id, r.seed_id);
            assert_eq!(h.score.to_bits(), r.retrieval_score.to_bits());
            assert_eq!(h.cluster_size, r.cluster_size);
            assert_eq!(h.common_core, r.code);
            assert!(h.cluster_size >= 1);
            assert!(!h.common_core.is_empty());
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.reco.requests, 1);
        assert_eq!(snap.reco.pipeline_runs, 1);
        assert_eq!(snap.reco.retrieve.count, 1);
        assert_eq!(snap.reco.intersect.count, 1);
    }

    #[test]
    fn spt_recommendations_hit_the_generation_keyed_cache() {
        // Regression: the SPT path re-ran `Spt::parse_source` and a full
        // scan on every identical request while the LLM path cached.
        let server = LaminarServer::new(
            Registry::new(),
            ExecutionEngine::with_stock(),
            ServerConfig {
                query_cache_entries: 16,
                ..ServerConfig::default()
            },
        );
        let token = match server
            .handle(Request::RegisterUser {
                username: "rosa".into(),
                password: "pw".into(),
            })
            .value()
        {
            Response::Token(t) => t,
            other => panic!("{other:?}"),
        };
        register_isprime(&server, token);
        let ask = |scope| match server
            .handle(Request::CodeRecommendation {
                token,
                scope,
                snippet: "random.randint(1, 1000)".into(),
                embedding_type: EmbeddingType::Spt,
                top_n: None,
            })
            .value()
        {
            Response::Recommendations(hits) => hits,
            other => panic!("{other:?}"),
        };
        let first = ask(SearchScope::Pe);
        assert!(!first.is_empty());
        assert_eq!(server.metrics().reco.cache_misses.get(), 1);
        let second = ask(SearchScope::Pe);
        assert_eq!(first, second, "cached answer is the computed answer");
        assert_eq!(
            server.metrics().reco.cache_hits.get(),
            1,
            "second identical SPT query is a full-pipeline cache hit"
        );
        // Scope is part of the key: a workflow-scope query misses.
        ask(SearchScope::Workflow);
        assert_eq!(server.metrics().reco.cache_hits.get(), 1);
        // A registration publishes new generations; the entry stops
        // matching instead of serving stale hits.
        server
            .handle(Request::RegisterPe {
                token,
                pe: PeSubmission {
                    name: "OtherProducer".into(),
                    code: "class OtherProducer(ProducerPE):\n    def _process(self, inputs):\n        return random.randint(1, 1000)\n".into(),
                    description: None,
                },
            })
            .value();
        let third = ask(SearchScope::Pe);
        assert!(!third.is_empty());
        assert_eq!(
            server.metrics().reco.cache_hits.get(),
            1,
            "generation changed: the third query misses, not stale-hits"
        );
        assert_ne!(first, third, "the new PE joins the answer");
    }

    #[test]
    fn reco_engine_stays_in_lockstep_with_mutations() {
        let (server, token) = server_with_session();
        let (pe_ids, wf_id) = register_isprime(&server, token);
        assert_eq!(server.reco().len(), 3, "registrations upsert the engine");
        server
            .handle(Request::RemoveWorkflow {
                token,
                ident: Ident::Id(wf_id),
            })
            .value();
        server
            .handle(Request::RemovePe {
                token,
                ident: Ident::Id(pe_ids[0].1),
            })
            .value();
        assert_eq!(server.reco().len(), 2, "PE removal removes the snippet");
        let resp = server
            .handle(Request::CodeRecommendation {
                token,
                scope: SearchScope::Pe,
                snippet: "random.randint(1, 1000)".into(),
                embedding_type: EmbeddingType::Spt,
                top_n: None,
            })
            .value();
        match resp {
            Response::Recommendations(hits) => {
                assert!(
                    hits.iter().all(|h| h.name != "NumberProducer"),
                    "removed PE must not be recommended: {hits:?}"
                );
            }
            other => panic!("{other:?}"),
        }
        server.handle(Request::RemoveAll { token }).value();
        assert!(server.reco().is_empty());
    }

    #[test]
    fn code_completion_suggests_remainder() {
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        // The developer has typed the beginning of an IsPrime-like PE.
        let snippet = "class MyPrime(IterativePE):\n    def _process(self, num):\n        if all(num % i != 0 for i in range(2, num)):";
        let resp = server
            .handle(Request::CodeCompletion {
                token,
                snippet: snippet.into(),
            })
            .value();
        match resp {
            Response::Completion {
                source,
                lines,
                progress,
            } => {
                let (_, name) = source.expect("a source PE");
                assert_eq!(name, "IsPrime");
                assert!(progress > 0.0);
                assert!(lines.iter().any(|l| l.contains("return num")), "{lines:?}");
            }
            other => panic!("{other:?}"),
        }
        // Unrelated fragment: no completion.
        let resp = server
            .handle(Request::CodeCompletion {
                token,
                snippet: "import xml\n".into(),
            })
            .value();
        match resp {
            Response::Completion { source, lines, .. } => {
                assert!(source.is_none(), "{source:?}");
                assert!(lines.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quantized_server_with_query_cache() {
        let server = LaminarServer::new(
            Registry::new(),
            ExecutionEngine::with_stock(),
            ServerConfig {
                quantized: true,
                rescore_window: 2,
                query_cache_entries: 16,
                ..ServerConfig::default()
            },
        );
        let token = match server
            .handle(Request::RegisterUser {
                username: "rosa".into(),
                password: "pw".into(),
            })
            .value()
        {
            Response::Token(t) => t,
            other => panic!("{other:?}"),
        };
        register_isprime(&server, token);
        let search = || match server
            .handle(Request::SearchSemantic {
                token,
                scope: SearchScope::Pe,
                query: "a pe that checks whether numbers are prime".into(),
                top_n: None,
            })
            .value()
        {
            Response::SemanticResults(hits) => hits,
            other => panic!("{other:?}"),
        };
        let first = search();
        assert!(!first.is_empty());
        let misses = server.metrics().search_quant.result_cache_misses.get();
        assert!(misses >= 1, "first query scans");
        let second = search();
        assert_eq!(first, second, "cached answer is the scanned answer");
        assert_eq!(
            server.metrics().search_quant.result_cache_hits.get(),
            1,
            "second identical query is a result-cache hit"
        );
        assert_eq!(
            server.metrics().search_quant.embed_cache_hits.get(),
            1,
            "…and an embedding-cache hit"
        );
        // A new registration publishes a new snapshot generation, so the
        // cached entry stops matching (no stale answers).
        server
            .handle(Request::RegisterPe {
                token,
                pe: PeSubmission {
                    name: "PrimeSieve".into(),
                    code: "class PrimeSieve(IterativePE):\n    \"\"\"Sieve PE: filters prime numbers from the stream.\"\"\"\n    def _process(self, num):\n        return num\n".to_string(),
                    description: None,
                },
            })
            .value();
        let third = search();
        assert!(!third.is_empty());
        assert_eq!(
            server.metrics().search_quant.result_cache_hits.get(),
            1,
            "generation changed: the third query misses, not stale-hits"
        );
        // The quantized tier's footprint is reported ≥ 3× smaller.
        let snap = server.metrics().snapshot();
        assert!(snap.search_quant.desc_i8_bytes > 0);
        assert!(
            snap.search_quant.desc_f32_bytes >= 3 * snap.search_quant.desc_i8_bytes,
            "{} vs {}",
            snap.search_quant.desc_f32_bytes,
            snap.search_quant.desc_i8_bytes
        );
        assert!(snap.render().contains("query cache:"), "{}", snap.render());
    }

    #[test]
    fn update_description_reflected_in_search() {
        let (server, token) = server_with_session();
        let (pe_ids, _) = register_isprime(&server, token);
        server
            .handle(Request::UpdatePeDescription {
                token,
                ident: Ident::Id(pe_ids[0].1),
                description: "generates completely random zebra numbers".into(),
            })
            .value();
        let resp = server
            .handle(Request::SearchSemantic {
                token,
                scope: SearchScope::Pe,
                query: "zebra numbers".into(),
                top_n: None,
            })
            .value();
        match resp {
            Response::SemanticResults(hits) => {
                assert_eq!(hits[0].name, "NumberProducer", "{hits:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn top_n_override_caps_results() {
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        let resp = server
            .handle(Request::SearchSemantic {
                token,
                scope: SearchScope::Both,
                query: "prime numbers".into(),
                top_n: Some(1),
            })
            .value();
        match resp {
            Response::SemanticResults(hits) => assert_eq!(hits.len(), 1),
            other => panic!("{other:?}"),
        }
        let resp = server
            .handle(Request::SearchLiteral {
                token,
                scope: SearchScope::Both,
                term: "prime".to_string(),
                top_n: Some(1),
            })
            .value();
        match resp {
            Response::Registry { pes, workflows } => {
                assert_eq!(pes.len(), 1);
                assert_eq!(workflows.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_load_rebuilds_indexes_from_registry() {
        // Persist a populated registry, restore it into a fresh server, and
        // verify the indexes were rebuilt from the stored CLOBs at startup.
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        let path =
            std::env::temp_dir().join(format!("laminar-warmload-{}.json", std::process::id()));
        server.registry().save_to(&path).unwrap();
        let restored = Registry::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let server2 = LaminarServer::new(
            restored,
            ExecutionEngine::with_stock(),
            ServerConfig::default(),
        );
        assert_eq!(server2.indexes().counts(), (3, 1));
        let token2 = match server2
            .handle(Request::Login {
                username: "rosa".into(),
                password: "pw".into(),
            })
            .value()
        {
            Response::Token(t) => t,
            other => panic!("{other:?}"),
        };
        let resp = server2
            .handle(Request::CodeRecommendation {
                token: token2,
                scope: SearchScope::Pe,
                snippet: "random.randint(1, 1000)".into(),
                embedding_type: EmbeddingType::Spt,
                top_n: None,
            })
            .value();
        match resp {
            Response::Recommendations(hits) => {
                assert_eq!(
                    hits.first().map(|h| h.name.as_str()),
                    Some("NumberProducer")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn search_metrics_track_queries_and_index_size() {
        let (server, token) = server_with_session();
        register_isprime(&server, token);
        server
            .handle(Request::SearchSemantic {
                token,
                scope: SearchScope::Pe,
                query: "prime".into(),
                top_n: None,
            })
            .value();
        let snap = server.metrics().snapshot();
        assert_eq!(snap.search.semantic_latency.count, 1);
        assert_eq!(snap.search.index_pes, 3);
        assert_eq!(snap.search.index_workflows, 1);
        server
            .handle(Request::RemoveWorkflow {
                token,
                ident: Ident::Name("isprime_wf".into()),
            })
            .value();
        let snap = server.metrics().snapshot();
        assert_eq!(snap.search.index_workflows, 0);
    }

    #[test]
    fn remove_pe_fk_and_remove_all() {
        let (server, token) = server_with_session();
        let (pe_ids, wf_id) = register_isprime(&server, token);
        // PE referenced by workflow → FK error.
        let resp = server
            .handle(Request::RemovePe {
                token,
                ident: Ident::Id(pe_ids[0].1),
            })
            .value();
        assert!(matches!(resp, Response::Error(_)));
        // Remove the workflow, then the PE.
        server
            .handle(Request::RemoveWorkflow {
                token,
                ident: Ident::Id(wf_id),
            })
            .value();
        let resp = server
            .handle(Request::RemovePe {
                token,
                ident: Ident::Id(pe_ids[0].1),
            })
            .value();
        assert_eq!(resp, Response::Ok);
        // remove_all clears the rest.
        server.handle(Request::RemoveAll { token }).value();
        assert_eq!(server.registry().counts(), (0, 0));
        assert!(server.indexes().is_empty());
    }

    #[test]
    fn durable_registry_recovers_and_compacts_via_server() {
        use laminar_registry::PersistOptions;
        let dir =
            std::env::temp_dir().join(format!("laminar-server-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let server = LaminarServer::new(
                Registry::open(&dir, PersistOptions::default()).unwrap(),
                ExecutionEngine::with_stock(),
                ServerConfig::default(),
            );
            let token = match server
                .handle(Request::RegisterUser {
                    username: "rosa".into(),
                    password: "pw".into(),
                })
                .value()
            {
                Response::Token(t) => t,
                other => panic!("{other:?}"),
            };
            register_isprime(&server, token);
            // The persistence row group is live in the metrics snapshot.
            let snap = match server.handle(Request::Metrics {}).value() {
                Response::Metrics(s) => *s,
                other => panic!("{other:?}"),
            };
            assert!(snap.persistence.enabled);
            assert!(snap.persistence.wal_appends >= 5, "{snap:?}");
            // Explicit compaction through the endpoint.
            match server.handle(Request::Compact { token }).value() {
                Response::Compacted {
                    wal_records,
                    snapshot_bytes,
                    ..
                } => {
                    assert!(wal_records >= 5);
                    assert!(snapshot_bytes > 0);
                }
                other => panic!("{other:?}"),
            }
            let snap = match server.handle(Request::Metrics {}).value() {
                Response::Metrics(s) => *s,
                other => panic!("{other:?}"),
            };
            assert_eq!(snap.persistence.wal_records, 0, "WAL truncated");
            assert_eq!(snap.persistence.compactions, 1);
        }
        // Restart: snapshot + WAL recovery, indexes warm-loaded, sessions
        // and credentials intact.
        let server2 = LaminarServer::new(
            Registry::open(&dir, PersistOptions::default()).unwrap(),
            ExecutionEngine::with_stock(),
            ServerConfig::default(),
        );
        assert_eq!(server2.indexes().counts(), (3, 1));
        let token2 = match server2
            .handle(Request::Login {
                username: "rosa".into(),
                password: "pw".into(),
            })
            .value()
        {
            Response::Token(t) => t,
            other => panic!("{other:?}"),
        };
        match server2
            .handle(Request::GetWorkflow {
                token: token2,
                ident: Ident::Name("isprime_wf".into()),
            })
            .value()
        {
            Response::Workflow(wf) => assert_eq!(wf.pe_ids.len(), 3),
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();

        // Without a data directory, Compact reports the missing config and
        // the metrics row group stays disabled — exactly today's behaviour.
        let (server3, token3) = server_with_session();
        assert!(matches!(
            server3.handle(Request::Compact { token: token3 }).value(),
            Response::Error(_)
        ));
        let snap = match server3.handle(Request::Metrics {}).value() {
            Response::Metrics(s) => *s,
            other => panic!("{other:?}"),
        };
        assert!(!snap.persistence.enabled);
    }

    #[test]
    fn run_streaming_end_to_end() {
        let (server, token) = server_with_session();
        let (_, wf_id) = register_isprime(&server, token);
        let reply = server.handle(Request::Run {
            token,
            ident: Ident::Id(wf_id),
            input: RunInputWire::Iterations(20),
            mode: RunMode::Multiprocess { processes: 9 },
            streaming: true,
            verbose: true,
            resources: vec![],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        });
        let (lines, _infos, summaries, ok) = reply.drain();
        assert!(ok);
        assert!(!lines.is_empty());
        for l in &lines {
            assert!(l.contains("is prime"), "{l}");
        }
        assert!(!summaries.is_empty(), "verbose run includes rank summaries");
        // Execution + response recorded in the registry.
        let execs = server.registry().executions_for(wf_id);
        assert_eq!(execs.len(), 1);
        assert_eq!(execs[0].status, ExecutionStatus::Completed);
        let resps = server.registry().responses_for(execs[0].id);
        assert_eq!(resps.len(), 1);
        assert!(resps[0].output.contains("is prime"));
    }

    #[test]
    fn run_with_missing_resources_asks_for_upload() {
        let (server, token) = server_with_session();
        let (_, wf_id) = register_isprime(&server, token);
        let data = b"resource-bytes".to_vec();
        let reply = server.handle(Request::Run {
            token,
            ident: Ident::Id(wf_id),
            input: RunInputWire::Iterations(1),
            mode: RunMode::Sequential,
            streaming: false,
            verbose: false,
            resources: vec![ResourceRefWire {
                name: "input.csv".into(),
                content_hash: content_hash(&data),
            }],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        });
        match reply.value() {
            Response::NeedResources(names) => assert_eq!(names, vec!["input.csv"]),
            other => panic!("{other:?}"),
        }
        // Upload, then the same run succeeds.
        server
            .handle(Request::UploadResource {
                token,
                name: "input.csv".into(),
                bytes: data.clone(),
            })
            .value();
        let reply = server.handle(Request::Run {
            token,
            ident: Ident::Id(wf_id),
            input: RunInputWire::Iterations(3),
            mode: RunMode::Sequential,
            streaming: false,
            verbose: false,
            resources: vec![ResourceRefWire {
                name: "input.csv".into(),
                content_hash: content_hash(&data),
            }],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        });
        let (_, _, _, ok) = reply.drain();
        assert!(ok);
        assert_eq!(server.resources().stats().bytes_received, data.len() as u64);
    }

    #[test]
    fn run_dynamic_single_call_listing3() {
        // Listing 3: `client.run_dynamic(graph, input=5)` — no broker
        // parameters anywhere in the request.
        let (server, token) = server_with_session();
        let (_, wf_id) = register_isprime(&server, token);
        let reply = server.handle(Request::Run {
            token,
            ident: Ident::Id(wf_id),
            input: RunInputWire::Iterations(5),
            mode: RunMode::Dynamic,
            streaming: true,
            verbose: false,
            resources: vec![],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        });
        let (_lines, _infos, _summaries, ok) = reply.drain();
        assert!(ok);
    }

    #[test]
    fn run_unknown_workflow_errors() {
        let (server, token) = server_with_session();
        let reply = server.handle(Request::Run {
            token,
            ident: Ident::Name("missing".into()),
            input: RunInputWire::Iterations(1),
            mode: RunMode::Sequential,
            streaming: false,
            verbose: false,
            resources: vec![],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        });
        assert!(matches!(reply.value(), Response::Error(_)));
    }

    #[test]
    fn metrics_endpoint_reports_request_accounting() {
        let (server, token) = server_with_session();
        server.handle(Request::GetRegistry { token }).value();
        server.handle(Request::GetRegistry { token }).value();
        // An auth failure counts as an error on its endpoint.
        server.handle(Request::GetRegistry { token: 999 }).value();
        let snap = match server.handle(Request::Metrics {}).value() {
            Response::Metrics(s) => *s,
            other => panic!("{other:?}"),
        };
        let ep = snap
            .endpoints
            .iter()
            .find(|e| e.endpoint == "GetRegistry")
            .expect("GetRegistry endpoint tracked");
        assert_eq!(ep.requests, 3);
        assert_eq!(ep.errors, 1);
        assert_eq!(ep.in_flight, 0);
        assert_eq!(ep.latency.count, 3);
    }

    #[test]
    fn newer_protocol_version_gets_typed_unsupported() {
        let (server, token) = server_with_session();
        let env = RequestEnvelope::versioned(Request::GetRegistry { token }, 99);
        let (_, reply) = server.handle_envelope(env);
        match reply.value() {
            Response::Unsupported {
                server_version,
                client_version,
            } => {
                assert_eq!(server_version, PROTOCOL_VERSION);
                assert_eq!(client_version, 99);
            }
            other => panic!("{other:?}"),
        }
        let snap = server.metrics().snapshot();
        let ep = snap
            .endpoints
            .iter()
            .find(|e| e.endpoint == "GetRegistry")
            .unwrap();
        assert_eq!(ep.rejections, 1);
    }

    #[test]
    fn streamed_replies_begin_with_the_request_id() {
        let (server, token) = server_with_session();
        let (_, wf_id) = register_isprime(&server, token);
        let (id, reply) = server.handle_envelope(RequestEnvelope::new(Request::Run {
            token,
            ident: Ident::Id(wf_id),
            input: RunInputWire::Iterations(3),
            mode: RunMode::Sequential,
            streaming: true,
            verbose: false,
            resources: vec![],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        }));
        match reply {
            Reply::Stream(rx) => {
                let first = rx.recv().unwrap();
                assert_eq!(first, WireFrame::Begin { request_id: id.0 });
            }
            _ => panic!("expected stream"),
        }
    }

    fn batch_items() -> Vec<BatchItemWire> {
        vec![
            BatchItemWire::Pe(PeSubmission {
                name: "Standalone".into(),
                code:
                    "class Standalone(IterativePE):\n    def _process(self, d):\n        return d\n"
                        .into(),
                description: None,
            }),
            BatchItemWire::Workflow {
                name: "isprime_wf".into(),
                code: format!("{PRODUCER}\n{ISPRIME}\n{PRINTER}"),
                description: None,
                pes: vec![
                    PeSubmission {
                        name: "NumberProducer".into(),
                        code: PRODUCER.into(),
                        description: None,
                    },
                    PeSubmission {
                        name: "IsPrime".into(),
                        code: ISPRIME.into(),
                        description: None,
                    },
                    PeSubmission {
                        name: "PrintPrime".into(),
                        code: PRINTER.into(),
                        description: None,
                    },
                ],
            },
            BatchItemWire::Workflow {
                name: "primes_again".into(),
                code: format!("{PRODUCER}\n{ISPRIME}"),
                description: Some("re-uses the prime members".into()),
                // Duplicates of the previous item's members: reused, not
                // re-created.
                pes: vec![
                    PeSubmission {
                        name: "NumberProducer".into(),
                        code: PRODUCER.into(),
                        description: None,
                    },
                    PeSubmission {
                        name: "IsPrime".into(),
                        code: ISPRIME.into(),
                        description: None,
                    },
                ],
            },
        ]
    }

    #[test]
    fn register_batch_matches_sequential_registration() {
        // The same items, one per request on server A and one batch on
        // server B, must leave identical registry state and identical
        // search rankings.
        let (seq, seq_token) = server_with_session();
        let (batch, batch_token) = server_with_session();
        let items = batch_items();
        for item in items.clone() {
            let resp = match item {
                BatchItemWire::Pe(pe) => seq.handle(Request::RegisterPe {
                    token: seq_token,
                    pe,
                }),
                BatchItemWire::Workflow {
                    name,
                    code,
                    description,
                    pes,
                } => seq.handle(Request::RegisterWorkflow {
                    token: seq_token,
                    name,
                    code,
                    description,
                    pes,
                }),
            };
            assert!(matches!(resp.value(), Response::Registered { .. }));
        }
        let resp = batch
            .handle(Request::RegisterBatch {
                token: batch_token,
                items,
            })
            .value();
        let Response::BatchRegistered { outcomes } = resp else {
            panic!("expected BatchRegistered, got {resp:?}");
        };
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, BatchOutcomeWire::Registered { .. })));
        // Duplicate members of item 3 resolved to item 2's ids.
        let (item2_ids, item3_ids) = match (&outcomes[1], &outcomes[2]) {
            (
                BatchOutcomeWire::Registered { pe_ids: a, .. },
                BatchOutcomeWire::Registered { pe_ids: b, .. },
            ) => (a.clone(), b.clone()),
            other => panic!("{other:?}"),
        };
        assert_eq!(item3_ids[0].1, item2_ids[0].1);
        assert_eq!(item3_ids[1].1, item2_ids[1].1);
        // Registry state is bit-identical.
        assert_eq!(seq.registry().snapshot(), batch.registry().snapshot());
        assert_eq!(
            seq.registry().debug_name_indexes(),
            batch.registry().debug_name_indexes()
        );
        // Search indexes agree: same sizes, same rankings.
        assert_eq!(seq.indexes().len(), batch.indexes().len());
        assert_eq!(seq.indexes().counts(), batch.indexes().counts());
        for query in [
            "produces random numbers",
            "checks whether a number is prime",
        ] {
            let q = UniXcoderSim::new().embed_text(query);
            assert_eq!(
                seq.indexes().rank_semantic(&q, None, usize::MAX),
                batch.indexes().rank_semantic(&q, None, usize::MAX)
            );
        }
        let q = Spt::parse_source(ISPRIME).feature_vec();
        assert_eq!(
            seq.indexes().rank_spt(&q, None, usize::MAX),
            batch.indexes().rank_spt(&q, None, usize::MAX)
        );
        // Ingest metrics recorded the batch.
        let m = batch.metrics().snapshot();
        assert_eq!(m.ingest.batches, 1);
        assert_eq!(m.ingest.items, 3);
        assert_eq!(m.ingest.items_failed, 0);
        // 1 standalone + 3 workflow members (2 reused) + 2 workflows.
        assert_eq!(m.ingest.rows, 6);
        assert_eq!(m.ingest.batch_size.count, 1);
        assert_eq!(m.ingest.analyze.count, 1);
        assert_eq!(m.ingest.commit.count, 1);
        assert_eq!(m.ingest.index.count, 1);
        // The sequential server recorded nothing under `ingest`.
        assert_eq!(seq.metrics().snapshot().ingest.batches, 0);
    }

    #[test]
    fn register_batch_reports_partial_failure() {
        let (server, token) = server_with_session();
        // Occupy the workflow name so the batch's second item fails.
        register_isprime(&server, token);
        let before = server.indexes().len();
        let resp = server
            .handle(Request::RegisterBatch {
                token,
                items: vec![
                    BatchItemWire::Pe(PeSubmission {
                        name: "FreshPe".into(),
                        code: "class FreshPe(IterativePE):\n    def _process(self, d):\n        return d\n"
                            .into(),
                        description: Some("passes data through".into()),
                    }),
                    BatchItemWire::Workflow {
                        name: "isprime_wf".into(),
                        code: "# duplicate workflow".into(),
                        description: Some("dup".into()),
                        pes: vec![PeSubmission {
                            name: "NewMember".into(),
                            code: "class NewMember(IterativePE):\n    def _process(self, d):\n        return d\n"
                                .into(),
                            description: None,
                        }],
                    },
                ],
            })
            .value();
        let Response::BatchRegistered { outcomes } = resp else {
            panic!("expected BatchRegistered, got {resp:?}");
        };
        assert!(matches!(
            &outcomes[0],
            BatchOutcomeWire::Registered {
                workflow_id: None,
                ..
            }
        ));
        match &outcomes[1] {
            BatchOutcomeWire::Failed { pe_ids, error } => {
                // The member PE committed before the workflow failed —
                // the sequential path's partial-progress behaviour.
                assert_eq!(pe_ids.len(), 1);
                assert_eq!(pe_ids[0].0, "NewMember");
                assert!(error.contains("isprime_wf"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(server.registry().get_pe_by_name("FreshPe").is_ok());
        assert!(server.registry().get_pe_by_name("NewMember").is_ok());
        // Indexed: the two new PEs, no workflow.
        assert_eq!(server.indexes().len(), before + 2);
        let m = server.metrics().snapshot();
        assert_eq!(m.ingest.items, 2);
        assert_eq!(m.ingest.items_failed, 1);
        assert_eq!(m.ingest.rows, 2);
    }

    #[test]
    fn register_batch_requires_auth() {
        let server = LaminarServer::with_stock();
        let resp = server
            .handle(Request::RegisterBatch {
                token: 999,
                items: vec![],
            })
            .value();
        assert_eq!(resp, Response::Error("not logged in".into()));
    }

    #[test]
    fn dropped_stream_receiver_stops_the_engine_and_fails_the_execution() {
        let (server, token) = server_with_session();
        // A deliberately slow workflow so the run outlives the receiver.
        server.engine().library().register("slow_wf", || {
            use d4py::prelude::*;
            let mut g = WorkflowGraph::new("slow_wf");
            let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
            let slow = g.add(IterativePE::new("Slow", |d: Data| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                Some(d)
            }));
            let sink = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
                ctx.log(format!("{d}"));
            }));
            g.connect(src, OUTPUT, slow, INPUT).unwrap();
            g.connect(slow, OUTPUT, sink, INPUT).unwrap();
            g
        });
        let resp = server
            .handle(Request::RegisterWorkflow {
                token,
                name: "slow_wf".into(),
                code: String::new(),
                description: Some("slow".into()),
                pes: vec![],
            })
            .value();
        assert!(matches!(resp, Response::Registered { .. }));
        let wf_id = server
            .registry()
            .get_workflow_by_name("slow_wf")
            .unwrap()
            .id;

        let reply = server.handle(Request::Run {
            token,
            ident: Ident::Name("slow_wf".into()),
            input: RunInputWire::Iterations(200),
            mode: RunMode::Sequential,
            streaming: true,
            verbose: false,
            resources: vec![],
            fault: FaultPolicyWire::default(),
            task_timeout_ms: None,
        });
        match reply {
            Reply::Stream(rx) => {
                // Read one payload frame, then hang up mid-stream.
                for f in rx.iter() {
                    if matches!(f, WireFrame::Line(_)) {
                        break;
                    }
                }
                drop(rx);
            }
            _ => panic!("expected stream"),
        }
        // The pump thread must observe the disconnect and fail the
        // execution well before the 200 × 5 ms run would finish.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let execs = server.registry().executions_for(wf_id);
            if execs
                .first()
                .is_some_and(|e| e.status == ExecutionStatus::Failed)
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "execution not marked failed after disconnect: {execs:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
}
