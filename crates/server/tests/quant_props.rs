//! Property suite for the int8 quantized tier of [`SearchIndexes`] and its
//! server integration:
//!
//! * a quantized index at the default rescore window returns hits equal to
//!   the exact-scan index on random corpora, below and above the rayon
//!   partitioning threshold (recall@k == 1.0); squeezing the window to 2·k
//!   keeps aggregate recall ≥ 0.99;
//! * the quantized slabs are **bit-identical** whichever way the corpus was
//!   built — per-row upserts, one bulk batch, chunked batches, or a
//!   registry save/restore replay through a full server warm load — so no
//!   ingestion path can drift the tier from the `f32` slabs it shadows;
//! * the reported tier footprint honours the ≥ 3× bytes/row acceptance bar.

use embed::dense::PAR_SCAN_THRESHOLD;
use embed::{DenseVec, DIM};
use laminar_execengine::ExecutionEngine;
use laminar_registry::Registry;
use laminar_server::indexes::{EntryKind, IndexOptions, SearchIndexes, DEFAULT_RESCORE_WINDOW};
use laminar_server::{LaminarServer, PeSubmission, Request, Response, ServerConfig};
use spt::{FeatureVec, Spt};

/// Deterministic pseudo-random normalised vector (the LCG the other index
/// property suites use).
fn lcg_vec(seed: &mut u64) -> DenseVec {
    let mut values = vec![0.0f32; DIM];
    for v in &mut values {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0;
    }
    DenseVec::normalised(values)
}

/// One synthetic pre-embedded row (SPT modality is irrelevant here and
/// shared across rows).
fn row(
    i: u64,
    seed: &mut u64,
    spt: &FeatureVec,
) -> (u64, EntryKind, DenseVec, FeatureVec, DenseVec) {
    let kind = if i % 3 == 0 {
        EntryKind::Workflow
    } else {
        EntryKind::Pe
    };
    (i, kind, lcg_vec(seed), spt.clone(), lcg_vec(seed))
}

fn quantized_ix(window: usize) -> SearchIndexes {
    SearchIndexes::with_options(IndexOptions {
        quantized: true,
        rescore_window: window,
        ..IndexOptions::default()
    })
}

fn fill(ix: &SearchIndexes, n: u64, seed: u64) {
    let spt = Spt::parse_source("x = 1\n").feature_vec();
    let mut seed = seed;
    ix.bulk_upsert_embedded((0..n).map(|i| row(i, &mut seed, &spt)).collect());
}

/// recall@k == 1.0 at the default window: the two-phase index returns the
/// same hits (ids, kinds, and score bits) as the exact index, across
/// corpus sizes straddling the parallel-scan threshold, k values, both
/// dense modalities, and kind filtering.
#[test]
fn quantized_hits_equal_exact_hits_at_default_window() {
    for (n, seed) in [(512u64, 1u64), (PAR_SCAN_THRESHOLD as u64 + 64, 2)] {
        let exact = SearchIndexes::new();
        let quant = quantized_ix(DEFAULT_RESCORE_WINDOW);
        fill(&exact, n, seed);
        fill(&quant, n, seed);
        let mut qseed = seed.wrapping_mul(0xabcd).wrapping_add(3);
        for k in [1usize, 5, 16] {
            for _ in 0..3 {
                let q = lcg_vec(&mut qseed);
                assert_eq!(
                    quant.rank_semantic(&q, None, k),
                    exact.rank_semantic(&q, None, k),
                    "semantic n={n} k={k}"
                );
                assert_eq!(
                    quant.rank_reacc(&q, None, k),
                    exact.rank_reacc(&q, None, k),
                    "reacc n={n} k={k}"
                );
            }
            // Kind filtering flows through both phases of the scan.
            let q = lcg_vec(&mut qseed);
            assert_eq!(
                quant.rank_semantic(&q, Some(EntryKind::Pe), k),
                exact.rank_semantic(&q, Some(EntryKind::Pe), k),
                "kind-filtered n={n} k={k}"
            );
        }
    }
}

/// Aggregate recall@5 across a query pool stays ≥ 0.99 even with the
/// rescore window squeezed to 2·k.
#[test]
fn recall_stays_above_099_with_tight_window() {
    let n = 2048u64;
    let k = 5usize;
    let exact = SearchIndexes::new();
    let quant = quantized_ix(2);
    fill(&exact, n, 0x5eed);
    fill(&quant, n, 0x5eed);
    let mut qseed = 0xfeed_u64;
    let queries = 30;
    let mut matched = 0usize;
    for _ in 0..queries {
        let q = lcg_vec(&mut qseed);
        let got = quant.rank_semantic(&q, None, k);
        let want = exact.rank_semantic(&q, None, k);
        matched += got
            .iter()
            .filter(|h| want.iter().any(|w| w.id == h.id && w.kind == h.kind))
            .count();
    }
    let recall = matched as f64 / (queries * k) as f64;
    assert!(recall >= 0.99, "aggregate recall@{k} = {recall}");
}

/// The quantized slabs are a pure function of the row sequence: per-row
/// upserts, a single bulk batch, and chunked batches all leave
/// bit-identical codes and scales — and stay aligned through swap-removes.
#[test]
fn quant_slabs_bit_identical_across_construction_orders() {
    let n = 24u64;
    let spt = Spt::parse_source("x = 1\n").feature_vec();
    let rows: Vec<_> = {
        let mut seed = 9u64;
        (0..n).map(|i| row(i, &mut seed, &spt)).collect()
    };
    let per_row = quantized_ix(DEFAULT_RESCORE_WINDOW);
    for r in rows.clone() {
        per_row.upsert_embedded(r.0, r.1, r.2, r.3, r.4);
    }
    let bulk = quantized_ix(DEFAULT_RESCORE_WINDOW);
    bulk.bulk_upsert_embedded(rows.clone());
    let chunked = quantized_ix(DEFAULT_RESCORE_WINDOW);
    for chunk in rows.chunks(7) {
        chunked.bulk_upsert_embedded(chunk.to_vec());
    }
    let reference = per_row.quant_slabs().expect("tier is on");
    assert_eq!(bulk.quant_slabs().as_ref(), Some(&reference));
    assert_eq!(chunked.quant_slabs().as_ref(), Some(&reference));
    // Same mutation ⇒ still identical (swap-remove moves the same row in
    // each, whatever path built the slabs).
    for ix in [&per_row, &bulk, &chunked] {
        ix.remove(5, EntryKind::Pe);
    }
    let after = per_row.quant_slabs().expect("tier is on");
    assert_eq!(bulk.quant_slabs().as_ref(), Some(&after));
    assert_eq!(chunked.quant_slabs().as_ref(), Some(&after));
    assert_ne!(after, reference, "the removal actually changed the slabs");
}

fn register_user(server: &LaminarServer, name: &str) -> u64 {
    match server
        .handle(Request::RegisterUser {
            username: name.into(),
            password: "pw".into(),
        })
        .value()
    {
        Response::Token(t) => t,
        other => panic!("{other:?}"),
    }
}

/// Registry save/restore replay: a quantized server warm-loaded from a
/// persisted registry rebuilds quantized slabs bit-identical to the server
/// that built them incrementally, and its reported tier footprint meets
/// the ≥ 3× acceptance bar.
#[test]
fn registry_replay_rebuilds_identical_quant_slabs() {
    let config = || ServerConfig {
        quantized: true,
        ..ServerConfig::default()
    };
    let server = LaminarServer::new(Registry::new(), ExecutionEngine::with_stock(), config());
    let token = register_user(&server, "rosa");
    // PEs only: warm load replays all PEs in id order, which is exactly
    // the registration order here.
    for (name, body) in [
        ("DoubleIt", "return a * 2"),
        ("Halver", "return a / 2"),
        ("Squarer", "return a * a"),
        ("Negate", "return -a"),
    ] {
        let resp = server
            .handle(Request::RegisterPe {
                token,
                pe: PeSubmission {
                    name: name.into(),
                    code: format!(
                        "class {name}(IterativePE):\n    \"\"\"{name} transforms each number.\"\"\"\n    def _process(self, a):\n        {body}\n"
                    ),
                    description: None,
                },
            })
            .value();
        assert!(
            matches!(resp, Response::Registered { .. }),
            "{name}: {resp:?}"
        );
    }
    let built = server.indexes().quant_slabs().expect("tier is on");
    assert_eq!(server.indexes().len(), 4);

    let path =
        std::env::temp_dir().join(format!("laminar-quantreplay-{}.json", std::process::id()));
    server.registry().save_to(&path).unwrap();
    let restored = Registry::load_from(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let replayed = LaminarServer::new(restored, ExecutionEngine::with_stock(), config());
    assert_eq!(replayed.indexes().len(), 4);
    assert_eq!(
        replayed.indexes().quant_slabs().as_ref(),
        Some(&built),
        "warm load rebuilds the int8 tier bit-for-bit"
    );

    let tb = replayed.indexes().tier_bytes();
    assert_eq!(tb.rows, 4);
    assert!(tb.desc_i8 > 0 && tb.reacc_i8 > 0);
    assert!(
        tb.desc_f32 >= 3 * tb.desc_i8 && tb.reacc_f32 >= 3 * tb.reacc_i8,
        "acceptance: quantized scan tier ≥ 3× smaller ({tb:?})"
    );
}
