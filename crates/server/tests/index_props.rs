//! Property tests for the top-k vector engine behind [`SearchIndexes`]:
//!
//! * bounded top-k selection returns exactly the prefix of the full-sorted
//!   ranking, ties included (the tie-break key is total, so the prefix is
//!   unique and the comparison is exact, not approximate);
//! * the rayon-partitioned scan is bit-identical to the serial scan once
//!   the corpus crosses `PAR_SCAN_THRESHOLD`;
//! * arbitrary upsert/remove/clear interleavings leave the index
//!   equivalent to a naive map-of-vectors model across all three
//!   modalities (slot map, slab swap-remove, and per-kind counts all have
//!   to move together for this to hold).

use embed::dense::PAR_SCAN_THRESHOLD;
use embed::{dot, DenseVec, Embedder, ReaccSim, UniXcoderSim, DIM};
use laminar_server::indexes::{EntryKind, IndexHit, SearchIndexes};
use proptest::prelude::*;
use spt::{FeatureVec, Spt};
use std::collections::HashMap;

/// Case count: the pinned default, or `LAMINAR_PROPTEST_CASES` when set.
/// `PROPTEST_RNG_SEED=<n>` pins the RNG; the committed
/// `.proptest-regressions` seeds are re-run before any novel case.
fn cases(default: u32) -> u32 {
    std::env::var("LAMINAR_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The engine's encoded tie-break key (mirrors the private `entry_key`).
fn key_of(id: u64, kind: EntryKind) -> u64 {
    (id << 1) | matches!(kind, EntryKind::Workflow) as u64
}

/// Naive reference: a map of full per-entry vectors, ranked by scoring
/// everything and fully sorting — the behaviour the engine must match.
#[derive(Default)]
struct NaiveModel {
    entries: HashMap<u64, (EntryKind, DenseVec, FeatureVec, DenseVec)>,
}

impl NaiveModel {
    fn rank<F>(&self, score: F, kind: Option<EntryKind>, k: usize) -> Vec<IndexHit>
    where
        F: Fn(&(EntryKind, DenseVec, FeatureVec, DenseVec)) -> f32,
    {
        let mut scored: Vec<(u64, EntryKind, f32)> = self
            .entries
            .iter()
            .filter(|(_, e)| kind.is_none_or(|kf| e.0 == kf))
            .map(|(&key, e)| (key, e.0, score(e)))
            .collect();
        scored.sort_unstable_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
            .into_iter()
            .map(|(key, kind, score)| IndexHit {
                id: key >> 1,
                kind,
                score,
            })
            .collect()
    }

    fn counts(&self) -> (usize, usize) {
        let pes = self
            .entries
            .values()
            .filter(|e| e.0 == EntryKind::Pe)
            .count();
        (pes, self.entries.len() - pes)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Upsert { id: u64, wf: bool, variant: u8 },
    Remove { id: u64, wf: bool },
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..16, any::<bool>(), 0u8..4).prop_map(|(id, wf, variant)| Op::Upsert {
            id,
            wf,
            variant
        }),
        3 => (0u64..16, any::<bool>()).prop_map(|(id, wf)| Op::Remove { id, wf }),
        1 => Just(Op::Clear),
    ]
}

/// Apply one op sequence to both the engine and the naive model.
fn apply(ops: &[Op]) -> (SearchIndexes, NaiveModel) {
    let emb = UniXcoderSim::new();
    let reacc = ReaccSim::new();
    let ix = SearchIndexes::new();
    let mut model = NaiveModel::default();
    for op in ops {
        match op {
            Op::Upsert { id, wf, variant } => {
                let kind = if *wf {
                    EntryKind::Workflow
                } else {
                    EntryKind::Pe
                };
                // Only 4 variants, so duplicate vectors — and therefore
                // score ties — are common across ids.
                let text = format!("entry variant {variant} does things");
                let code = format!("def f{variant}(x):\n    return x * {variant} + 1\n");
                let d = emb.embed(&text);
                let s = Spt::parse_source(&code).feature_vec();
                let r = reacc.embed_code(&code);
                ix.upsert_embedded(*id, kind, d.clone(), s.clone(), r.clone());
                model.entries.insert(key_of(*id, kind), (kind, d, s, r));
            }
            Op::Remove { id, wf } => {
                let kind = if *wf {
                    EntryKind::Workflow
                } else {
                    EntryKind::Pe
                };
                ix.remove(*id, kind);
                model.entries.remove(&key_of(*id, kind));
            }
            Op::Clear => {
                ix.clear();
                model.entries.clear();
            }
        }
    }
    (ix, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Upsert/remove/clear fuzz: after any op interleaving, every modality's
    /// bounded ranking equals the naive full-sort prefix exactly (bit-equal
    /// scores, same ids, same order — ties resolved identically).
    #[test]
    fn engine_matches_naive_model_after_any_op_sequence(
        ops in proptest::collection::vec(arb_op(), 0..40),
    ) {
        let (ix, model) = apply(&ops);
        prop_assert_eq!(ix.len(), model.entries.len());
        prop_assert_eq!(ix.counts(), model.counts());

        let emb = UniXcoderSim::new();
        let q_text = emb.embed("an entry that does things with variants");
        let q_spt = Spt::parse_source("return x * 2 + 1\n").feature_vec();
        let q_code = ReaccSim::new().embed_code("def g(x):\n    return x * 2 + 1\n");

        for kind in [None, Some(EntryKind::Pe), Some(EntryKind::Workflow)] {
            for k in [0usize, 1, 7, usize::MAX] {
                prop_assert_eq!(
                    ix.rank_semantic(&q_text, kind, k),
                    model.rank(|e| dot(&q_text.values, &e.1.values), kind, k),
                    "semantic kind={:?} k={}", kind, k
                );
                prop_assert_eq!(
                    ix.rank_spt(&q_spt, kind, k),
                    model.rank(|e| q_spt.overlap(&e.2), kind, k),
                    "spt kind={:?} k={}", kind, k
                );
                prop_assert_eq!(
                    ix.rank_reacc(&q_code, kind, k),
                    model.rank(|e| dot(&q_code.values, &e.3.values), kind, k),
                    "reacc kind={:?} k={}", kind, k
                );
            }
        }
    }

    /// The threshold scans equal filtering the full ranking.
    #[test]
    fn threshold_scans_equal_filtered_full_ranking(
        ops in proptest::collection::vec(arb_op(), 0..30),
        min_spt in 0.0f32..8.0,
        min_cos in -0.5f32..1.0,
    ) {
        let (ix, _) = apply(&ops);
        let q_spt = Spt::parse_source("return x * 2 + 1\n").feature_vec();
        let q_code = ReaccSim::new().embed_code("def g(x):\n    return x * 2 + 1\n");
        let full_spt: Vec<IndexHit> = ix
            .rank_spt(&q_spt, Some(EntryKind::Pe), usize::MAX)
            .into_iter()
            .filter(|h| h.score >= min_spt)
            .collect();
        prop_assert_eq!(ix.rank_spt_above(&q_spt, Some(EntryKind::Pe), min_spt), full_spt);
        let full_reacc: Vec<IndexHit> = ix
            .rank_reacc(&q_code, None, usize::MAX)
            .into_iter()
            .filter(|h| h.score >= min_cos)
            .collect();
        prop_assert_eq!(ix.rank_reacc_above(&q_code, None, min_cos), full_reacc);
    }
}

/// Deterministic pseudo-random normalised vector (no rand dependency on
/// the hot path of this test — an LCG is plenty).
fn lcg_vec(seed: &mut u64) -> DenseVec {
    let mut values = vec![0.0f32; DIM];
    for v in &mut values {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0;
    }
    DenseVec::normalised(values)
}

/// Past `PAR_SCAN_THRESHOLD` the index ranks on the rayon-partitioned
/// path; its output must be bit-identical to a serial full sort. Only 8
/// distinct SPT vectors across ~4k rows makes ties the common case, so
/// the merge order of the per-worker accumulators is thoroughly exercised.
#[test]
fn parallel_scan_is_bit_identical_to_serial_past_threshold() {
    let n = PAR_SCAN_THRESHOLD + 64;
    let spt_pool: Vec<FeatureVec> = (0..8)
        .map(|i| {
            Spt::parse_source(&format!("def f{i}(x):\n    return x * {i} + {i}\n")).feature_vec()
        })
        .collect();
    let ix = SearchIndexes::new();
    let mut stored: Vec<(u64, DenseVec, FeatureVec, DenseVec)> = Vec::with_capacity(n);
    let mut seed = 0x5eed;
    for i in 0..n as u64 {
        let d = lcg_vec(&mut seed);
        let s = spt_pool[i as usize % spt_pool.len()].clone();
        let r = lcg_vec(&mut seed);
        ix.upsert_embedded(i, EntryKind::Pe, d.clone(), s.clone(), r.clone());
        stored.push((i, d, s, r));
    }
    assert!(
        ix.len() >= PAR_SCAN_THRESHOLD,
        "corpus must force the parallel path"
    );

    let mut seed_q = 0xfeed_u64;
    let q_dense = lcg_vec(&mut seed_q);
    let q_spt = &spt_pool[3];

    // Serial reference: full score + full sort, engine tie-break order.
    let serial = |score_of: &dyn Fn(&(u64, DenseVec, FeatureVec, DenseVec)) -> f32| {
        let mut scored: Vec<(u64, f32)> = stored.iter().map(|e| (e.0, score_of(e))).collect();
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    };

    for k in [1usize, 7, 100] {
        let want: Vec<(u64, f32)> = serial(&|e| dot(&q_dense.values, &e.1.values))
            .into_iter()
            .take(k)
            .collect();
        let got: Vec<(u64, f32)> = ix
            .rank_semantic(&q_dense, Some(EntryKind::Pe), k)
            .into_iter()
            .map(|h| (h.id, h.score))
            .collect();
        assert_eq!(got, want, "semantic k={k}");

        let want: Vec<(u64, f32)> = serial(&|e| q_spt.overlap(&e.2))
            .into_iter()
            .take(k)
            .collect();
        let got: Vec<(u64, f32)> = ix
            .rank_spt(q_spt, Some(EntryKind::Pe), k)
            .into_iter()
            .map(|h| (h.id, h.score))
            .collect();
        assert_eq!(got, want, "spt k={k}");

        let want: Vec<(u64, f32)> = serial(&|e| dot(&q_dense.values, &e.3.values))
            .into_iter()
            .take(k)
            .collect();
        let got: Vec<(u64, f32)> = ix
            .rank_reacc(&q_dense, Some(EntryKind::Pe), k)
            .into_iter()
            .map(|h| (h.id, h.score))
            .collect();
        assert_eq!(got, want, "reacc k={k}");
    }
}
