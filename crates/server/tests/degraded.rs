//! End-to-end storage-chaos test over real TCP (DESIGN.md §11): a
//! persistent injected ENOSPC flips the server into read-only degraded
//! mode; mutations get the typed `Response::Degraded` while reads,
//! metrics and health keep serving; the recovery probe restores
//! `Healthy` once the fault clears, and mutations succeed again.

use laminar_execengine::ExecutionEngine;
use laminar_registry::{
    FaultHook, FaultKind, FaultMode, FaultSpec, IoFaultInjector, PersistOptions, Registry,
    SyncPolicy,
};
use laminar_server::{
    Connection, ConnectionError, LaminarServer, NetClientTransport, NetServer, PeSubmission,
    Request, Response, ServerConfig, StorageStateWire,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laminar-degraded-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pe(name: &str) -> PeSubmission {
    PeSubmission {
        name: name.into(),
        code: format!("class {name}(IterativePE):\n    def _process(self, x):\n        return x\n"),
        description: Some("a chaos-test pe".into()),
    }
}

/// Durable server with a cleared (disk healthy) injector installed;
/// `from_op` arms nothing yet — callers pick the schedule.
fn serve_with_faults(
    dir: &PathBuf,
    spec: FaultSpec,
    seed: u64,
    config: ServerConfig,
) -> (
    Arc<IoFaultInjector>,
    Arc<LaminarServer>,
    NetServer,
    NetClientTransport,
) {
    let inj = IoFaultInjector::new(seed, spec);
    let hook: FaultHook = inj.clone();
    let registry = Registry::open_with_faults(
        dir,
        PersistOptions {
            snapshot_every: 0,
            sync: SyncPolicy::OsBuffered,
        },
        hook,
    )
    .unwrap();
    let server = Arc::new(LaminarServer::new(
        registry,
        ExecutionEngine::with_stock(),
        config,
    ));
    let net = NetServer::bind("127.0.0.1:0", server.clone()).unwrap();
    let client = NetClientTransport::new(net.addr());
    (inj, server, net, client)
}

fn token_of(client: &NetClientTransport) -> u64 {
    match client
        .call(Request::RegisterUser {
            username: "chaos".into(),
            password: "pw".into(),
        })
        .unwrap()
        .value()
    {
        Response::Token(t) => t,
        other => panic!("{other:?}"),
    }
}

fn health_of(client: &NetClientTransport) -> (bool, StorageStateWire, u64) {
    match client.call(Request::Health {}).unwrap().value() {
        Response::Health {
            live,
            ready,
            storage,
            degraded_transitions,
            ..
        } => {
            assert!(live, "a serving process is always live");
            (ready, storage, degraded_transitions)
        }
        other => panic!("{other:?}"),
    }
}

fn registry_pe_count(client: &NetClientTransport, token: u64) -> usize {
    match client.call(Request::GetRegistry { token }).unwrap().value() {
        Response::Registry { pes, .. } => pes.len(),
        other => panic!("{other:?}"),
    }
}

/// The acceptance walk, verified over a real socket: Register →
/// injected ENOSPC → typed Degraded rejection (reads/metrics/health
/// keep answering, memory untouched) → probe recovery → Register
/// succeeds.
#[test]
fn enospc_flips_degraded_reads_keep_serving_probe_recovers() {
    let dir = fresh_dir("walk");
    // Every WAL append from the 3rd onward fails: RegisterUser and the
    // first RegisterPe land, the second RegisterPe hits the full disk.
    let (inj, server, _net, client) = serve_with_faults(
        &dir,
        FaultSpec {
            sites: vec![laminar_registry::IoSite::WalAppend],
            mode: FaultMode::From(3),
            kind: FaultKind::Enospc,
            short_cut: None,
        },
        42,
        ServerConfig::default(),
    );

    let token = token_of(&client);
    assert!(matches!(
        client
            .call(Request::RegisterPe {
                token,
                pe: pe("Healthy")
            })
            .unwrap()
            .value(),
        Response::Registered { .. }
    ));
    let (ready, storage, _) = health_of(&client);
    assert!(ready);
    assert_eq!(storage, StorageStateWire::Healthy);

    // The disk fills: the mutation is rejected with a persistence error
    // and the server flips to degraded.
    match client
        .call(Request::RegisterPe {
            token,
            pe: pe("HitsFullDisk"),
        })
        .unwrap()
        .value()
    {
        Response::Error(msg) => assert!(msg.contains("injected ENOSPC"), "{msg}"),
        other => panic!("{other:?}"),
    }
    assert!(server.health().is_degraded());

    // Further mutations get the typed Degraded rejection with the retry
    // hint — surfaced by the client-side classifier as its own error.
    match client.call(Request::RegisterPe {
        token,
        pe: pe("WhileDegraded"),
    }) {
        Err(ConnectionError::Degraded {
            reason,
            retry_after_ms,
        }) => {
            assert!(reason.contains("storage degraded"), "{reason}");
            assert_eq!(retry_after_ms, 500, "default hint");
        }
        other => panic!("expected a Degraded rejection: {other:?}"),
    }

    // Reads, metrics and health keep serving; memory is untouched (the
    // one healthy PE, nothing from the rejected attempts).
    assert_eq!(registry_pe_count(&client, token), 1);
    match client.call(Request::Metrics {}).unwrap().value() {
        Response::Metrics(m) => {
            let h = &m.storage_health;
            assert!(h.degraded);
            assert_eq!(h.degraded_entries, 1);
            assert!(h.rejected_while_degraded >= 1);
            assert!(h.io_errors >= 1);
            assert!(h.last_error.as_deref().unwrap_or("").contains("injected"));
            let wal_append = h
                .fault_sites
                .iter()
                .find(|(site, _, _)| site == "wal_append")
                .expect("injector counters surface in metrics");
            assert!(wal_append.2 >= 1, "{wal_append:?}");
        }
        other => panic!("{other:?}"),
    }
    let (ready, storage, transitions) = health_of(&client);
    assert!(!ready);
    assert_eq!(storage, StorageStateWire::Degraded);
    assert_eq!(transitions, 1);

    // While the disk is still full the probe must NOT clear the state.
    assert!(
        server.probe_storage(),
        "probe fails while the fault is armed"
    );
    assert!(server.health().is_degraded());

    // Space frees up: the probe recovers the server and writes land.
    inj.clear();
    assert!(
        !server.probe_storage(),
        "probe passes once the fault clears"
    );
    let (ready, storage, transitions) = health_of(&client);
    assert!(ready);
    assert_eq!(storage, StorageStateWire::Healthy);
    assert_eq!(transitions, 1, "one degraded episode");
    assert!(matches!(
        client
            .call(Request::RegisterPe {
                token,
                pe: pe("AfterRecovery")
            })
            .unwrap()
            .value(),
        Response::Registered { .. }
    ));
    assert_eq!(registry_pe_count(&client, token), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same walk, but recovery is driven by the background probe thread
/// (`probe_interval_ms`) instead of an explicit probe call.
#[test]
fn background_probe_thread_recovers_after_fault_clears() {
    let dir = fresh_dir("probe-thread");
    let (inj, server, _net, client) = serve_with_faults(
        &dir,
        FaultSpec::persistent(FaultKind::Enospc),
        7,
        ServerConfig {
            probe_interval_ms: 25,
            ..ServerConfig::default()
        },
    );

    // The first mutation hits the full disk and degrades the server.
    let reply = client
        .call(Request::RegisterUser {
            username: "chaos".into(),
            password: "pw".into(),
        })
        .unwrap();
    assert!(matches!(reply.value(), Response::Error(_)));
    assert!(server.health().is_degraded());

    // While the fault is armed the prober keeps failing — give it a few
    // ticks and confirm the state holds.
    std::thread::sleep(Duration::from_millis(120));
    assert!(server.health().is_degraded());
    assert!(server.health().snapshot().probe_attempts >= 1);

    // Clear the fault and wait for the thread to notice.
    inj.clear();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().is_degraded() {
        assert!(Instant::now() < deadline, "probe thread never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (ready, storage, _) = health_of(&client);
    assert!(ready);
    assert_eq!(storage, StorageStateWire::Healthy);
    let token = token_of(&client);
    assert!(token > 0, "mutations land after background recovery");
    let _ = std::fs::remove_dir_all(&dir);
}
