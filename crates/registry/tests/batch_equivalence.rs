//! Batch-registration equivalence properties (DESIGN.md §9).
//!
//! Two contracts of [`Registry::add_units`] are under test:
//!
//! 1. **Sequential equivalence** — a batch must leave the registry in the
//!    bit-identical state that the sequential register path produces for
//!    the same submissions, including assigned ids, duplicate-name
//!    id-reuse, per-unit errors and the incrementally maintained name
//!    indexes. Batching changes the commit granularity, never the
//!    outcome.
//! 2. **Frame atomicity** — the batch is one WAL frame, so a crash
//!    mid-write recovers to *either* the pre-batch state *or* the full
//!    post-batch state. No byte-level cut may expose a partially applied
//!    batch.

use laminar_registry::{
    NewPe, NewWorkflow, PeOutcome, PersistOptions, Registry, RegistrationUnit, RegistryError,
    SyncPolicy, UnitOutcome, WAL_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// Case count: the pinned default, or `LAMINAR_PROPTEST_CASES` when set.
/// `PROPTEST_RNG_SEED=<n>` pins the RNG; the committed
/// `.proptest-regressions` seeds are re-run before any novel case.
fn cases(default: u32) -> u32 {
    std::env::var("LAMINAR_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laminar-batch-eq-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> PersistOptions {
    PersistOptions {
        snapshot_every: 0,
        sync: SyncPolicy::OsBuffered,
    }
}

fn new_pe(user_id: u64, name: String) -> NewPe {
    NewPe {
        user_id,
        name,
        description: "a batch-equivalence pe".into(),
        code: "class P(IterativePE): pass".into(),
        description_embedding: "0.1,0.2".into(),
        spt_embedding: "0.3".into(),
    }
}

fn new_wf(user_id: u64, name: String, pe_ids: Vec<u64>) -> NewWorkflow {
    NewWorkflow {
        user_id,
        name,
        description: "a batch-equivalence workflow".into(),
        code: "graph = WorkflowGraph()".into(),
        description_embedding: "0.4".into(),
        spt_embedding: "0.5".into(),
        pe_ids,
    }
}

/// Generator-level description of one member PE: a name drawn from a
/// deliberately tiny alphabet (to provoke the duplicate-reuse path, in
/// both cases), and optionally a dangling user id (to provoke the
/// FK-check error path mid-unit).
#[derive(Debug, Clone)]
struct PeSpec {
    name: u8,
    lowercase: bool,
    bad_user: bool,
}

/// One unit of the generated batch: member PEs plus an optional workflow
/// whose name collides across units with probability by construction.
#[derive(Debug, Clone)]
struct UnitSpec {
    pes: Vec<PeSpec>,
    workflow: Option<u8>,
}

fn arb_unit() -> impl Strategy<Value = UnitSpec> {
    let pe = (any::<u8>(), any::<bool>(), proptest::bool::weighted(0.1)).prop_map(
        |(name, lowercase, bad_user)| PeSpec {
            name,
            lowercase,
            bad_user,
        },
    );
    (
        proptest::collection::vec(pe, 0..4),
        proptest::option::of(any::<u8>()),
    )
        .prop_map(|(pes, workflow)| UnitSpec { pes, workflow })
}

/// Materialise a spec against a concrete user id. The name alphabet is
/// four PE names (case-varied, since duplicate detection is
/// case-insensitive) and three workflow names.
fn unit_from_spec(user: u64, spec: &UnitSpec) -> RegistrationUnit {
    let pes = spec
        .pes
        .iter()
        .map(|p| {
            let name = if p.lowercase {
                format!("pe{}", p.name % 4)
            } else {
                format!("Pe{}", p.name % 4)
            };
            new_pe(if p.bad_user { user + 999 } else { user }, name)
        })
        .collect();
    // `add_units` derives the workflow's member list from the unit's own
    // PEs, so the pe_ids passed here are intentionally empty; the
    // sequential interpreter fills them in the same way.
    let workflow = spec
        .workflow
        .map(|n| new_wf(user, format!("Wf{}", n % 3), vec![]));
    RegistrationUnit { pes, workflow }
}

/// The sequential register path, one unit at a time: `add_pe` per member
/// (reusing the resolved id on a duplicate name, exactly as the server's
/// `RegisterWorkflow` handler does), then `add_workflow` over the ids
/// that landed. Returns the same outcome shape as `add_units`.
fn drive_sequential(reg: &Registry, unit: RegistrationUnit) -> UnitOutcome {
    let mut out = UnitOutcome::default();
    let mut member_ids: Vec<u64> = Vec::new();
    for new in unit.pes {
        let name = new.name.clone();
        match reg.add_pe(new) {
            Ok(id) => {
                member_ids.push(id);
                out.pes.push(PeOutcome {
                    name,
                    id,
                    created: true,
                });
            }
            Err(RegistryError::DuplicateName { .. }) => {
                let id = reg
                    .get_pe_by_name(&name)
                    .expect("duplicate implies a resolvable id")
                    .id;
                member_ids.push(id);
                out.pes.push(PeOutcome {
                    name,
                    id,
                    created: false,
                });
            }
            Err(e) => {
                out.error = Some(e);
                break;
            }
        }
    }
    if out.error.is_none() {
        if let Some(mut wf) = unit.workflow {
            wf.pe_ids = member_ids;
            let name = wf.name.clone();
            match reg.add_workflow(wf) {
                Ok(id) => out.workflow = Some((name, id)),
                Err(e) => out.error = Some(e),
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(24),
        ..ProptestConfig::default()
    })]

    /// `add_units(batch)` ≡ the same submissions registered one by one:
    /// identical outcomes (ids, reuse flags, errors), identical snapshot,
    /// identical name indexes — live, and again after a WAL replay.
    #[test]
    fn batch_registration_equals_sequential_registration(
        specs in proptest::collection::vec(arb_unit(), 1..6)
    ) {
        let batch_dir = fresh_dir("batch");
        let seq_dir = fresh_dir("seq");
        let batch_reg = Registry::open(&batch_dir, opts()).unwrap();
        let seq_reg = Registry::open(&seq_dir, opts()).unwrap();
        let bu = batch_reg.register_user("rosa", "pw").unwrap();
        let su = seq_reg.register_user("rosa", "pw").unwrap();
        prop_assert_eq!(bu, su);

        let batch_units: Vec<RegistrationUnit> =
            specs.iter().map(|s| unit_from_spec(bu, s)).collect();
        let seq_units: Vec<RegistrationUnit> =
            specs.iter().map(|s| unit_from_spec(su, s)).collect();

        let batch_out = batch_reg.add_units(batch_units).unwrap();
        let seq_out: Vec<UnitOutcome> = seq_units
            .into_iter()
            .map(|u| drive_sequential(&seq_reg, u))
            .collect();

        prop_assert_eq!(batch_out.len(), seq_out.len());
        for (b, s) in batch_out.iter().zip(&seq_out) {
            prop_assert_eq!(&b.pes, &s.pes);
            prop_assert_eq!(&b.workflow, &s.workflow);
            prop_assert_eq!(&b.error, &s.error);
        }
        prop_assert_eq!(&batch_reg.snapshot(), &seq_reg.snapshot());
        prop_assert_eq!(
            batch_reg.debug_name_indexes(),
            seq_reg.debug_name_indexes()
        );

        // The group-commit frame replays to the same state the live
        // registry reached (and its indexes rebuild identically).
        let expected = batch_reg.snapshot();
        drop(batch_reg);
        let replayed = Registry::open(&batch_dir, opts()).unwrap();
        prop_assert_eq!(&replayed.snapshot(), &expected);
        prop_assert_eq!(
            replayed.debug_name_indexes(),
            seq_reg.debug_name_indexes()
        );

        let _ = std::fs::remove_dir_all(&batch_dir);
        let _ = std::fs::remove_dir_all(&seq_dir);
    }

    /// Cut the WAL at *every* byte across the batch frame: recovery must
    /// land on the pre-batch state for every cut short of the full frame,
    /// and on the post-batch state only at the frame boundary. A batch is
    /// never partially applied.
    #[test]
    fn batch_frame_recovers_all_or_nothing(
        specs in proptest::collection::vec(arb_unit(), 1..4)
    ) {
        let dir = fresh_dir("cut");
        let (pre, post) = {
            let reg = Registry::open(&dir, opts()).unwrap();
            let user = reg.register_user("rosa", "pw").unwrap();
            let pre = reg.snapshot();
            let units: Vec<RegistrationUnit> =
                specs.iter().map(|s| unit_from_spec(user, s)).collect();
            reg.add_units(units).unwrap();
            (pre, reg.snapshot())
        };

        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        // Frame 1 is the AddUser record; everything after it is the one
        // batch frame (empty when every unit failed validation).
        let user_frame_end = {
            let replay = laminar_registry::wal::replay(&dir.join(WAL_FILE)).unwrap();
            assert!(!replay.torn, "the uncut log must be clean");
            let first = &replay.records[0];
            8 + serde_json::to_vec(first).unwrap().len() as u64
        };
        let total = wal_bytes.len() as u64;

        for cut in user_frame_end..=total {
            let cut_dir = fresh_dir("cut-at");
            std::fs::write(cut_dir.join(WAL_FILE), &wal_bytes[..cut as usize]).unwrap();
            let recovered = Registry::open(&cut_dir, opts()).unwrap();
            let expected = if cut == total { &post } else { &pre };
            prop_assert_eq!(&recovered.snapshot(), expected);
            let _ = std::fs::remove_dir_all(&cut_dir);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
