//! Storage-chaos suite (DESIGN.md §11): deterministic disk faults driven
//! through every instrumented IO site of the durability layer.
//!
//! A fixed mutation script runs against a WAL-backed registry while an
//! [`IoFaultInjector`] fails one (or, in the persistent/random tests,
//! many) of its IO operations. The invariants, checked for **every**
//! `(site, kind)` combination:
//!
//! * **acknowledged ⇒ durable** — every mutation that returned `Ok` is
//!   present after a clean reopen;
//! * **rejected ⇒ absent** — a mutation that returned an error left the
//!   in-memory state untouched, and nothing of it replays from disk;
//! * the recovered registry equals the acknowledged state exactly
//!   (snapshot and name indexes), and still accepts writes;
//! * the storage probe fails while a persistent fault is armed and
//!   passes once it clears;
//! * the same seed and spec replay a bit-identical fault schedule and
//!   recover a bit-identical registry.

use laminar_registry::{
    ExecutionStatus, FaultEvent, FaultHook, FaultKind, FaultMode, FaultSpec, IoFaultInjector,
    IoSite, NewPe, NewWorkflow, PersistOptions, Registry, RegistrationUnit, RegistryError,
    SyncPolicy,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laminar-iofault-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `EveryAppend` so the `wal_fsync` site is exercised; no auto-compaction
/// (the script compacts explicitly to hit the snapshot sites).
fn opts() -> PersistOptions {
    PersistOptions {
        snapshot_every: 0,
        sync: SyncPolicy::EveryAppend,
    }
}

fn new_pe(user_id: u64, name: &str) -> NewPe {
    NewPe {
        user_id,
        name: name.into(),
        description: "a chaos-suite pe".into(),
        code: "class P(IterativePE): pass".into(),
        description_embedding: "0.1,0.2".into(),
        spt_embedding: "0.3".into(),
    }
}

fn new_wf(user_id: u64, name: &str) -> NewWorkflow {
    NewWorkflow {
        user_id,
        name: name.into(),
        description: "a chaos-suite workflow".into(),
        code: "graph = WorkflowGraph()".into(),
        description_embedding: "0.4".into(),
        spt_embedding: "0.5".into(),
        pe_ids: Vec::new(),
    }
}

/// Runs mutations one at a time, asserting after every rejected one that
/// the in-memory state is exactly what it was before the attempt.
struct Driver<'a> {
    reg: &'a Registry,
    acked: u64,
    rejected: u64,
}

impl Driver<'_> {
    fn step<T>(
        &mut self,
        f: impl FnOnce(&Registry) -> Result<T, RegistryError>,
    ) -> Option<T> {
        let before = self.reg.snapshot();
        match f(self.reg) {
            Ok(v) => {
                self.acked += 1;
                Some(v)
            }
            Err(_) => {
                assert_eq!(
                    self.reg.snapshot(),
                    before,
                    "a rejected mutation must leave memory untouched"
                );
                self.rejected += 1;
                None
            }
        }
    }
}

/// The fixed script: hits every instrumented site at least once —
/// single appends (+ their fsyncs), one group-commit batch, and two
/// explicit compactions (snapshot write/fsync/rename + WAL truncate).
/// Later steps look their targets up dynamically, so the script stays
/// valid no matter which earlier step the injector killed.
fn drive(reg: &Registry) -> (u64, u64) {
    let mut d = Driver {
        reg,
        acked: 0,
        rejected: 0,
    };
    let user = d.step(|r| r.register_user("rosa", "pw")).unwrap_or(0);
    d.step(|r| r.add_pe(new_pe(user, "IsPrime")).map(|_| ()));
    d.step(|r| r.add_pe(new_pe(user, "Tokenizer")).map(|_| ()));
    d.step(|r| {
        r.add_units(vec![RegistrationUnit {
            pes: vec![new_pe(user, "Counter"), new_pe(user, "Doubler")],
            workflow: Some(new_wf(user, "count_wf")),
        }])
        .map(|_| ())
    });
    d.step(|r| r.compact().map(|_| ()));
    d.step(|r| match r.all_pes().first().map(|p| p.id) {
        Some(id) => r.update_pe_description(id, "updated", "0.9"),
        None => Ok(()),
    });
    let wf = reg.all_workflows().first().map(|w| w.id);
    d.step(|r| match wf {
        Some(id) => r.add_execution(id, user, "simple", "5").map(|_| ()),
        None => Ok(()),
    });
    let exec = wf.and_then(|w| reg.executions_for(w).first().map(|e| e.id));
    d.step(|r| match exec {
        Some(id) => r
            .add_response(id, "the num 5 is prime", ExecutionStatus::Completed)
            .map(|_| ()),
        None => Ok(()),
    });
    d.step(|r| match exec {
        Some(id) => r.set_execution_status(id, ExecutionStatus::Completed),
        None => Ok(()),
    });
    d.step(|r| r.add_pe(new_pe(user, "Anomaly")).map(|_| ()));
    d.step(|r| r.compact().map(|_| ()));
    (d.acked, d.rejected)
}

/// Which matching operation to fail, per site — chosen so the fault
/// lands mid-script (the script provides at least this many matches).
fn nth_for(site: IoSite) -> u64 {
    match site {
        IoSite::WalAppend => 3,
        IoSite::WalFsync => 5,
        _ => 1,
    }
}

/// The tentpole matrix: one injected fault at every site × every kind;
/// after the fault clears, the probe passes and a clean reopen recovers
/// exactly the acknowledged state.
#[test]
fn one_fault_at_every_site_and_kind_preserves_acknowledged_state() {
    for site in IoSite::ALL {
        for kind in [
            FaultKind::Enospc,
            FaultKind::ShortWrite,
            FaultKind::FsyncError,
        ] {
            let dir = fresh_dir(&format!("{}-{kind:?}", site.name()));
            let inj =
                IoFaultInjector::new(42, FaultSpec::nth_at(site, nth_for(site), kind));
            let hook: FaultHook = inj.clone();
            let reg = Registry::open_with_faults(&dir, opts(), hook).unwrap();

            let (acked, rejected) = drive(&reg);
            let tag = format!("{} / {kind:?}", site.name());
            assert_eq!(inj.injected_total(), 1, "{tag}: the Nth fault must fire once");
            assert!(rejected >= 1, "{tag}: the faulted step must be rejected");
            assert!(acked >= 1, "{tag}: the script must get some work through");
            let counters = inj.counters();
            let hit = counters.iter().find(|c| c.site == site).unwrap();
            assert_eq!((hit.injected, hit.ops >= nth_for(site)), (1, true), "{tag}");

            // The fault condition clears; the storage probe passes and
            // re-truncates any torn tail left behind.
            inj.clear();
            reg.verify_storage().unwrap_or_else(|e| panic!("{tag}: probe after clear: {e}"));

            let expected = reg.snapshot();
            drop(reg);

            // Clean reopen (no hook): recovered == acknowledged, indexes
            // match a from-scratch rebuild, and writes still land.
            let recovered = Registry::open(&dir, opts()).unwrap();
            assert_eq!(recovered.snapshot(), expected, "{tag}");
            assert_eq!(
                recovered.debug_name_indexes(),
                Registry::from_snapshot(expected).debug_name_indexes(),
                "{tag}"
            );
            let uid = recovered
                .login("rosa", "pw")
                .or_else(|_| recovered.register_user("rosa", "pw"))
                .unwrap();
            recovered
                .add_pe(new_pe(uid, "PostRecovery"))
                .unwrap_or_else(|e| panic!("{tag}: post-recovery write: {e}"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A disk that is full and stays full: every mutation is rejected and
/// memory never drifts; the probe fails while the fault is armed and
/// passes once it clears, after which writes succeed again.
#[test]
fn persistent_enospc_rejects_everything_until_cleared() {
    let dir = fresh_dir("persistent");
    let inj = IoFaultInjector::new(7, FaultSpec::persistent(FaultKind::Enospc));
    let hook: FaultHook = inj.clone();
    let reg = Registry::open_with_faults(&dir, opts(), hook).unwrap();

    let empty = reg.snapshot();
    for _ in 0..3 {
        assert!(matches!(
            reg.register_user("rosa", "pw"),
            Err(RegistryError::Persistence(_))
        ));
        assert_eq!(reg.snapshot(), empty, "rejections must leave memory untouched");
    }
    assert!(inj.injected_total() >= 3);
    assert!(
        reg.verify_storage().is_err(),
        "the probe must fail while the device stays full"
    );

    inj.clear();
    reg.verify_storage().unwrap();
    let user = reg.register_user("rosa", "pw").unwrap();
    reg.add_pe(new_pe(user, "IsPrime")).unwrap();
    let expected = reg.snapshot();
    drop(reg);
    let recovered = Registry::open(&dir, opts()).unwrap();
    assert_eq!(recovered.snapshot(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed append must not poison the log for the appends after it:
/// a short write mid-script leaves the tail clean enough that every
/// later acknowledged mutation survives a reopen.
#[test]
fn short_write_mid_script_does_not_bury_later_appends() {
    let dir = fresh_dir("tail");
    let inj = IoFaultInjector::new(
        13,
        FaultSpec {
            sites: vec![IoSite::WalAppend],
            mode: FaultMode::Nth(2),
            kind: FaultKind::ShortWrite,
            short_cut: Some(5),
        },
    );
    let hook: FaultHook = inj.clone();
    let reg = Registry::open_with_faults(&dir, opts(), hook).unwrap();
    let user = reg.register_user("rosa", "pw").unwrap();
    assert!(reg.add_pe(new_pe(user, "Torn")).is_err(), "the 2nd append faults");
    // The very next append must land on a clean boundary and replay.
    let pe = reg.add_pe(new_pe(user, "Survivor")).unwrap();
    let expected = reg.snapshot();
    drop(reg);
    let recovered = Registry::open(&dir, opts()).unwrap();
    assert_eq!(recovered.snapshot(), expected);
    assert_eq!(recovered.get_pe(pe).unwrap().name, "Survivor");
    let _ = std::fs::remove_dir_all(&dir);
}

fn run_seeded(seed: u64) -> (Vec<FaultEvent>, u64, u64, Vec<u8>) {
    let dir = fresh_dir(&format!("seed{seed}"));
    let inj = IoFaultInjector::new(
        seed,
        FaultSpec {
            sites: Vec::new(),
            mode: FaultMode::Random(40),
            kind: FaultKind::ShortWrite,
            short_cut: None,
        },
    );
    let hook: FaultHook = inj.clone();
    let reg = Registry::open_with_faults(&dir, opts(), hook).unwrap();
    let (acked, rejected) = drive(&reg);
    inj.clear();
    reg.verify_storage().unwrap();
    let in_memory = reg.snapshot();
    drop(reg);
    let recovered = Registry::open(&dir, opts()).unwrap();
    assert_eq!(recovered.snapshot(), in_memory, "seed {seed}");
    let bytes = serde_json::to_vec(&recovered.snapshot()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (inj.journal(), acked, rejected, bytes)
}

/// Determinism: the same seed over the same script produces a
/// bit-identical fault schedule, the same ack/reject split, and a
/// bit-identical recovered registry; a different seed diverges.
#[test]
fn same_seed_replays_a_bit_identical_run() {
    let a = run_seeded(99);
    let b = run_seeded(99);
    assert_eq!(a.0, b.0, "fault journals must match event-for-event");
    assert_eq!((a.1, a.2), (b.1, b.2), "ack/reject split must match");
    assert_eq!(a.3, b.3, "recovered snapshots must be bit-identical");
    assert!(a.2 >= 1, "40% over the script should reject something");
    let c = run_seeded(100);
    assert_ne!(a.0, c.0, "a different seed must diverge");
}
