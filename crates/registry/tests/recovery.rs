//! Crash-recovery property test for the durable registry (DESIGN.md §8).
//!
//! The durability contract under test: **acknowledged implies durable at
//! every byte**. A random mutation script is driven against a WAL-backed
//! registry while the acknowledged state after every WAL record is
//! captured. The WAL is then cut at *every byte offset spanning the tail
//! record* — simulating a crash mid-write — and each cut must recover to
//! exactly the acknowledged prefix:
//!
//! * the recovered `RegistrySnapshot` is bit-identical to the state after
//!   the last complete record;
//! * the incrementally maintained name indexes match a from-scratch
//!   rebuild of that same snapshot;
//! * the torn tail is truncated in place, so a further clean reopen
//!   replays the same prefix;
//! * the recovered registry accepts new writes.

use laminar_registry::{
    wal, ExecutionStatus, FaultHook, FaultKind, FaultSpec, IoFaultInjector, IoSite, NewPe,
    NewWorkflow, PersistOptions, Registry, RegistrySnapshot, SyncPolicy, WAL_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// Case count: the pinned default, or `LAMINAR_PROPTEST_CASES` when set.
/// `PROPTEST_RNG_SEED=<n>` pins the RNG; the committed
/// `.proptest-regressions` seeds are re-run before any novel case.
fn cases(default: u32) -> u32 {
    std::env::var("LAMINAR_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laminar-recovery-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// No auto-compaction: the whole history stays in the WAL, so every cut
/// point exercises replay rather than snapshot loading.
fn opts() -> PersistOptions {
    PersistOptions {
        snapshot_every: 0,
        sync: SyncPolicy::OsBuffered,
    }
}

fn new_pe(user_id: u64, name: String) -> NewPe {
    NewPe {
        user_id,
        name,
        description: "a property-test pe".into(),
        code: "class P(IterativePE): pass".into(),
        description_embedding: "0.1,0.2".into(),
        spt_embedding: "0.3".into(),
    }
}

fn new_wf(user_id: u64, name: String, pe_ids: Vec<u64>) -> NewWorkflow {
    NewWorkflow {
        user_id,
        name,
        description: "a property-test workflow".into(),
        code: "graph = WorkflowGraph()".into(),
        description_embedding: "0.4".into(),
        spt_embedding: "0.5".into(),
        pe_ids,
    }
}

/// One step of the mutation script. Targets are chosen modulo the live
/// row set at interpretation time, so every generated script is valid to
/// *attempt* — rejected mutations (duplicates, FK violations) are part of
/// the property: they must leave no WAL record behind.
#[derive(Debug, Clone)]
enum Op {
    AddPe(u8),
    AddWorkflow(u8),
    UpdatePeDescription(u8),
    RemovePe(u8),
    RemoveWorkflow(u8),
    RemoveAll,
    AddExecution(u8),
    SetExecutionStatus(u8),
    AddResponse(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u8>().prop_map(Op::AddPe),
        3 => any::<u8>().prop_map(Op::AddWorkflow),
        2 => any::<u8>().prop_map(Op::UpdatePeDescription),
        2 => any::<u8>().prop_map(Op::RemovePe),
        2 => any::<u8>().prop_map(Op::RemoveWorkflow),
        1 => Just(Op::RemoveAll),
        2 => any::<u8>().prop_map(Op::AddExecution),
        1 => any::<u8>().prop_map(Op::SetExecutionStatus),
        1 => any::<u8>().prop_map(Op::AddResponse),
    ]
}

fn pick(ids: &[u64], n: u8) -> Option<u64> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[n as usize % ids.len()])
    }
}

/// Interpret one op; returns whether the registry acknowledged a mutation
/// (i.e. exactly one WAL record was appended).
fn drive(reg: &Registry, user: u64, op: &Op) -> bool {
    // A deliberately small name space so the script hits the
    // case-insensitive duplicate check and the name-index churn paths.
    match op {
        Op::AddPe(n) => reg
            .add_pe(new_pe(user, format!("Pe{}", n % 5)))
            .is_ok(),
        Op::AddWorkflow(n) => {
            let pe_ids: Vec<u64> = reg.all_pes().iter().map(|p| p.id).take(2).collect();
            reg.add_workflow(new_wf(user, format!("Wf{}", n % 3), pe_ids))
                .is_ok()
        }
        Op::UpdatePeDescription(n) => {
            let ids: Vec<u64> = reg.all_pes().iter().map(|p| p.id).collect();
            pick(&ids, *n)
                .map(|id| reg.update_pe_description(id, "updated", "0.9").is_ok())
                .unwrap_or(false)
        }
        Op::RemovePe(n) => {
            let ids: Vec<u64> = reg.all_pes().iter().map(|p| p.id).collect();
            pick(&ids, *n)
                .map(|id| reg.remove_pe(id).is_ok())
                .unwrap_or(false)
        }
        Op::RemoveWorkflow(n) => {
            let ids: Vec<u64> = reg.all_workflows().iter().map(|w| w.id).collect();
            pick(&ids, *n)
                .map(|id| reg.remove_workflow(id).is_ok())
                .unwrap_or(false)
        }
        Op::RemoveAll => reg.remove_all().is_ok(),
        Op::AddExecution(n) => {
            let ids: Vec<u64> = reg.all_workflows().iter().map(|w| w.id).collect();
            pick(&ids, *n)
                .map(|id| reg.add_execution(id, user, "simple", "5").is_ok())
                .unwrap_or(false)
        }
        Op::SetExecutionStatus(n) => {
            let wfs: Vec<u64> = reg.all_workflows().iter().map(|w| w.id).collect();
            let ids: Vec<u64> = wfs
                .iter()
                .flat_map(|w| reg.executions_for(*w))
                .map(|e| e.id)
                .collect();
            pick(&ids, *n)
                .map(|id| {
                    reg.set_execution_status(id, ExecutionStatus::Completed)
                        .is_ok()
                })
                .unwrap_or(false)
        }
        Op::AddResponse(n) => {
            let wfs: Vec<u64> = reg.all_workflows().iter().map(|w| w.id).collect();
            let ids: Vec<u64> = wfs
                .iter()
                .flat_map(|w| reg.executions_for(*w))
                .map(|e| e.id)
                .collect();
            pick(&ids, *n)
                .map(|id| {
                    reg.add_response(id, "the num 7 is prime", ExecutionStatus::Completed)
                        .is_ok()
                })
                .unwrap_or(false)
        }
    }
}

/// Byte offset where each WAL frame ends: `ends[k]` is the length of the
/// log after `k + 1` complete records. Frame layout must mirror
/// `Wal::append`: 8-byte header + JSON payload.
fn frame_ends(wal_path: &std::path::Path) -> Vec<u64> {
    let replay = wal::replay(wal_path).unwrap();
    assert!(!replay.torn, "the uncut log must be clean");
    let mut ends = Vec::with_capacity(replay.records.len());
    let mut at = 0u64;
    for rec in &replay.records {
        at += 8 + serde_json::to_vec(rec).unwrap().len() as u64;
        ends.push(at);
    }
    assert_eq!(ends.last().copied().unwrap_or(0), replay.valid_bytes);
    ends
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(12),
        ..ProptestConfig::default()
    })]

    #[test]
    fn every_tail_cut_recovers_the_acknowledged_prefix(
        script in proptest::collection::vec(arb_op(), 1..14)
    ) {
        let dir = fresh_dir("prop");
        // states[k] = acknowledged snapshot after k WAL records.
        let mut states: Vec<RegistrySnapshot> = vec![RegistrySnapshot::default()];
        {
            let reg = Registry::open(&dir, opts()).unwrap();
            let user = reg.register_user("rosa", "pw").unwrap();
            states.push(reg.snapshot());
            for op in &script {
                if drive(&reg, user, op) {
                    states.push(reg.snapshot());
                }
            }
            let appended = reg.persist_stats().unwrap().wal_appends;
            prop_assert_eq!(appended as usize + 1, states.len());
        }

        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = std::fs::read(&wal_path).unwrap();
        let ends = frame_ends(&wal_path);
        let n = ends.len();
        prop_assert_eq!(n + 1, states.len());

        // Cut at every byte across the tail record (from "tail absent
        // entirely" through "tail complete").
        let tail_start = if n >= 2 { ends[n - 2] } else { 0 };
        for cut in tail_start..=ends[n - 1] {
            let cut_dir = fresh_dir("cut");
            std::fs::write(cut_dir.join(WAL_FILE), &wal_bytes[..cut as usize]).unwrap();

            let recovered = Registry::open(&cut_dir, opts()).unwrap();
            let k = if cut == ends[n - 1] { n } else { n - 1 };
            prop_assert_eq!(
                recovered.persist_stats().unwrap().recovered_records,
                k as u64
            );
            prop_assert_eq!(&recovered.snapshot(), &states[k]);
            // Incrementally maintained indexes == from-scratch rebuild.
            let rebuilt = Registry::from_snapshot(states[k].clone());
            prop_assert_eq!(
                recovered.debug_name_indexes(),
                rebuilt.debug_name_indexes()
            );
            drop(recovered);

            // The torn tail was truncated in place: a second open replays
            // the same prefix without relying on the first one's cut.
            let again = Registry::open(&cut_dir, opts()).unwrap();
            prop_assert_eq!(&again.snapshot(), &states[k]);
            // And the recovered registry still accepts writes.
            let uid = again.login("rosa", "pw").unwrap_or_else(|_| {
                again.register_user("rosa", "pw").unwrap()
            });
            prop_assert!(again
                .add_pe(new_pe(uid, "PostRecovery".into()))
                .is_ok());
            let _ = std::fs::remove_dir_all(&cut_dir);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministic companion: a crash *between* snapshot rename and WAL
/// truncate leaves records in the log that the snapshot already contains;
/// replaying them must be a no-op (idempotence at recorded ids).
#[test]
fn snapshot_plus_overlapping_wal_recovers_once() {
    let dir = fresh_dir("overlap");
    let reg = Registry::open(&dir, opts()).unwrap();
    let user = reg.register_user("rosa", "pw").unwrap();
    let pe = reg.add_pe(new_pe(user, "IsPrime".into())).unwrap();
    reg.add_workflow(new_wf(user, "isprime_wf".into(), vec![pe]))
        .unwrap();
    let before = reg.snapshot();
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    // Compact writes the snapshot and truncates the WAL…
    reg.compact().unwrap().unwrap();
    drop(reg);
    // …but "the crash" resurrects the pre-compaction WAL on top of it.
    std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();

    let recovered = Registry::open(&dir, opts()).unwrap();
    assert_eq!(recovered.snapshot(), before);
    assert_eq!(recovered.counts(), (1, 1));
    assert_eq!(
        recovered.debug_name_indexes(),
        Registry::from_snapshot(before).debug_name_indexes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash-during-compaction, at every IO site the compaction touches: the
/// snapshot tmp write, its fsync, the atomic rename over `snapshot.json`,
/// and the WAL truncation that follows. Whichever step dies, the failed
/// `compact()` must surface an error and a reopen must recover exactly
/// the acknowledged pre-compaction state — the WAL-truncate case lands in
/// the overlap window (new snapshot + untruncated WAL), where replay must
/// be idempotent; the earlier sites must leave the old snapshot + WAL
/// authoritative (a dead `snapshot.json.tmp` is ignored).
#[test]
fn compaction_crash_at_every_site_recovers_the_acknowledged_state() {
    for (i, site) in [
        IoSite::SnapshotWrite,
        IoSite::SnapshotFsync,
        IoSite::SnapshotRename,
        IoSite::WalTruncate,
    ]
    .into_iter()
    .enumerate()
    {
        let dir = fresh_dir("compact-crash");
        let acknowledged = {
            let hook: FaultHook = IoFaultInjector::new(
                100 + i as u64,
                FaultSpec::nth_at(site, 1, FaultKind::Enospc),
            );
            let reg = Registry::open_with_faults(&dir, opts(), hook).unwrap();
            let user = reg.register_user("rosa", "pw").unwrap();
            let a = reg.add_pe(new_pe(user, "IsPrime".into())).unwrap();
            let b = reg.add_pe(new_pe(user, "Doubler".into())).unwrap();
            reg.add_workflow(new_wf(user, "isprime_wf".into(), vec![a, b]))
                .unwrap();
            let wf = reg.all_workflows()[0].id;
            reg.add_execution(wf, user, "simple", "5").unwrap();
            let acknowledged = reg.snapshot();
            // The compaction dies at `site`; the error must be loud.
            assert!(
                reg.compact().is_err(),
                "{site:?}: a compaction that lost an IO op must error"
            );
            acknowledged
            // `reg` dropped here: the crash.
        };

        let recovered = Registry::open(&dir, opts()).unwrap();
        assert_eq!(
            recovered.snapshot(),
            acknowledged,
            "{site:?}: reopen must recover the acknowledged prefix"
        );
        assert_eq!(
            recovered.debug_name_indexes(),
            Registry::from_snapshot(acknowledged.clone()).debug_name_indexes(),
            "{site:?}: recovered indexes must match a from-scratch rebuild"
        );
        // The recovered registry accepts writes and a clean compaction.
        let uid = recovered.login("rosa", "pw").unwrap();
        recovered
            .add_pe(new_pe(uid, "PostCrash".into()))
            .unwrap();
        recovered.compact().unwrap().unwrap();
        let after = recovered.snapshot();
        drop(recovered);
        // And the post-compaction state survives yet another reopen.
        let again = Registry::open(&dir, opts()).unwrap();
        assert_eq!(again.snapshot(), after, "{site:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
