//! Registry error types.

use std::fmt;

/// Errors the registry can return. Modelled on the constraint violations a
/// relational database would raise for the Fig. 6 schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// UNIQUE constraint on `User.username`.
    DuplicateUser(String),
    /// Login with an unknown username.
    UnknownUser(String),
    /// Login with a wrong password.
    InvalidCredentials,
    /// Row lookup failed. `(table, key)`.
    NotFound(&'static str, String),
    /// Foreign-key violation: the row is referenced elsewhere.
    ForeignKey {
        table: &'static str,
        id: u64,
        referenced_by: &'static str,
    },
    /// A referenced row does not exist (insertion-side FK check).
    MissingReference {
        table: &'static str,
        id: u64,
    },
    /// UNIQUE constraint on a (user, name) pair.
    DuplicateName {
        table: &'static str,
        name: String,
    },
    /// Snapshot (de)serialisation problem.
    Persistence(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateUser(u) => write!(f, "username '{u}' already registered"),
            RegistryError::UnknownUser(u) => write!(f, "unknown user '{u}'"),
            RegistryError::InvalidCredentials => write!(f, "invalid credentials"),
            RegistryError::NotFound(t, k) => write!(f, "{t} '{k}' not found"),
            RegistryError::ForeignKey {
                table,
                id,
                referenced_by,
            } => write!(f, "{table} #{id} is still referenced by {referenced_by}"),
            RegistryError::MissingReference { table, id } => {
                write!(f, "referenced {table} #{id} does not exist")
            }
            RegistryError::DuplicateName { table, name } => {
                write!(f, "{table} named '{name}' already exists for this user")
            }
            RegistryError::Persistence(m) => write!(f, "persistence error: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(RegistryError::DuplicateUser("bob".into()).to_string().contains("bob"));
        assert!(RegistryError::NotFound("ProcessingElement", "42".into())
            .to_string()
            .contains("42"));
        let fk = RegistryError::ForeignKey {
            table: "ProcessingElement",
            id: 7,
            referenced_by: "Workflow",
        };
        assert!(fk.to_string().contains("Workflow"));
    }
}
