//! The registry store: tables, indexes, integrity rules, persistence.

use crate::error::RegistryError;
use crate::rows::*;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

/// What a search should cover (the CLI's `workflow | pe` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchTarget {
    Pe,
    Workflow,
    Both,
}

#[derive(Debug, Default, Serialize, Deserialize)]
struct Inner {
    users: Vec<UserRow>,
    pes: BTreeMap<u64, PeRow>,
    workflows: BTreeMap<u64, WorkflowRow>,
    executions: Vec<ExecutionRow>,
    responses: Vec<ResponseRow>,
    next_id: u64,
    seq: u64,
    /// Secondary index: lowercase PE name → ids (idx_pe_name).
    #[serde(skip)]
    pe_name_index: HashMap<String, Vec<u64>>,
    /// Secondary index: lowercase workflow name → ids (idx_wf_name).
    #[serde(skip)]
    wf_name_index: HashMap<String, Vec<u64>>,
}

impl Inner {
    fn next_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn rebuild_indexes(&mut self) {
        self.pe_name_index.clear();
        for (id, pe) in &self.pes {
            self.pe_name_index
                .entry(pe.name.to_lowercase())
                .or_default()
                .push(*id);
        }
        self.wf_name_index.clear();
        for (id, wf) in &self.workflows {
            self.wf_name_index
                .entry(wf.name.to_lowercase())
                .or_default()
                .push(*id);
        }
    }
}

/// Serializable snapshot of the whole registry.
#[derive(Debug, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    users: Vec<UserRow>,
    pes: Vec<PeRow>,
    workflows: Vec<WorkflowRow>,
    executions: Vec<ExecutionRow>,
    responses: Vec<ResponseRow>,
    next_id: u64,
    seq: u64,
}

/// The registry. Cheap to share: interior `RwLock`, many concurrent
/// readers (searches) against occasional writers (registrations).
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

/// Salted FNV password hash. A stand-in for the paper's server-side auth —
/// NOT cryptographically secure, and documented as such in DESIGN.md.
pub fn hash_password(username: &str, password: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in username.as_bytes().iter().chain(b"\x00laminar-salt\x00").chain(password.as_bytes()) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    // ---- users -----------------------------------------------------------

    /// Register a user; returns the new user id.
    pub fn register_user(&self, username: &str, password: &str) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        if inner.users.iter().any(|u| u.username == username) {
            return Err(RegistryError::DuplicateUser(username.to_string()));
        }
        let id = inner.next_id();
        let seq = inner.next_seq();
        inner.users.push(UserRow {
            id,
            username: username.to_string(),
            password_hash: hash_password(username, password),
            created_seq: seq,
        });
        Ok(id)
    }

    /// Verify credentials; returns the user id.
    pub fn login(&self, username: &str, password: &str) -> Result<u64, RegistryError> {
        let inner = self.inner.read();
        let user = inner
            .users
            .iter()
            .find(|u| u.username == username)
            .ok_or_else(|| RegistryError::UnknownUser(username.to_string()))?;
        if user.password_hash != hash_password(username, password) {
            return Err(RegistryError::InvalidCredentials);
        }
        Ok(user.id)
    }

    pub fn user_count(&self) -> usize {
        self.inner.read().users.len()
    }

    fn check_user(inner: &Inner, user_id: u64) -> Result<(), RegistryError> {
        if inner.users.iter().any(|u| u.id == user_id) {
            Ok(())
        } else {
            Err(RegistryError::MissingReference {
                table: "User",
                id: user_id,
            })
        }
    }

    // ---- PEs ---------------------------------------------------------------

    pub fn add_pe(&self, new: NewPe) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        Self::check_user(&inner, new.user_id)?;
        let dup = inner
            .pes
            .values()
            .any(|p| p.user_id == new.user_id && p.name == new.name);
        if dup {
            return Err(RegistryError::DuplicateName {
                table: "ProcessingElement",
                name: new.name,
            });
        }
        let id = inner.next_id();
        inner
            .pe_name_index
            .entry(new.name.to_lowercase())
            .or_default()
            .push(id);
        inner.pes.insert(
            id,
            PeRow {
                id,
                user_id: new.user_id,
                name: new.name,
                description: new.description,
                code: new.code,
                description_embedding: new.description_embedding,
                spt_embedding: new.spt_embedding,
            },
        );
        Ok(id)
    }

    pub fn get_pe(&self, id: u64) -> Result<PeRow, RegistryError> {
        self.inner
            .read()
            .pes
            .get(&id)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("ProcessingElement", id.to_string()))
    }

    /// Name lookup through the secondary index (case-insensitive).
    pub fn get_pe_by_name(&self, name: &str) -> Result<PeRow, RegistryError> {
        let inner = self.inner.read();
        let ids = inner.pe_name_index.get(&name.to_lowercase());
        ids.and_then(|ids| ids.first())
            .and_then(|id| inner.pes.get(id))
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("ProcessingElement", name.to_string()))
    }

    pub fn all_pes(&self) -> Vec<PeRow> {
        self.inner.read().pes.values().cloned().collect()
    }

    pub fn update_pe_description(
        &self,
        id: u64,
        description: &str,
        description_embedding: &str,
    ) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        let pe = inner
            .pes
            .get_mut(&id)
            .ok_or_else(|| RegistryError::NotFound("ProcessingElement", id.to_string()))?;
        pe.description = description.to_string();
        pe.description_embedding = description_embedding.to_string();
        Ok(())
    }

    /// Remove a PE. FK rule: fails while any workflow still references it.
    pub fn remove_pe(&self, id: u64) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.pes.contains_key(&id) {
            return Err(RegistryError::NotFound("ProcessingElement", id.to_string()));
        }
        if inner.workflows.values().any(|w| w.pe_ids.contains(&id)) {
            return Err(RegistryError::ForeignKey {
                table: "ProcessingElement",
                id,
                referenced_by: "Workflow",
            });
        }
        let name = inner.pes[&id].name.to_lowercase();
        inner.pes.remove(&id);
        if let Some(v) = inner.pe_name_index.get_mut(&name) {
            v.retain(|&x| x != id);
        }
        Ok(())
    }

    // ---- workflows ---------------------------------------------------------

    pub fn add_workflow(&self, new: NewWorkflow) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        Self::check_user(&inner, new.user_id)?;
        for pe_id in &new.pe_ids {
            if !inner.pes.contains_key(pe_id) {
                return Err(RegistryError::MissingReference {
                    table: "ProcessingElement",
                    id: *pe_id,
                });
            }
        }
        let dup = inner
            .workflows
            .values()
            .any(|w| w.user_id == new.user_id && w.name == new.name);
        if dup {
            return Err(RegistryError::DuplicateName {
                table: "Workflow",
                name: new.name,
            });
        }
        let id = inner.next_id();
        inner
            .wf_name_index
            .entry(new.name.to_lowercase())
            .or_default()
            .push(id);
        inner.workflows.insert(
            id,
            WorkflowRow {
                id,
                user_id: new.user_id,
                name: new.name,
                description: new.description,
                code: new.code,
                description_embedding: new.description_embedding,
                spt_embedding: new.spt_embedding,
                pe_ids: new.pe_ids,
            },
        );
        Ok(id)
    }

    pub fn get_workflow(&self, id: u64) -> Result<WorkflowRow, RegistryError> {
        self.inner
            .read()
            .workflows
            .get(&id)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("Workflow", id.to_string()))
    }

    pub fn get_workflow_by_name(&self, name: &str) -> Result<WorkflowRow, RegistryError> {
        let inner = self.inner.read();
        let ids = inner.wf_name_index.get(&name.to_lowercase());
        ids.and_then(|ids| ids.first())
            .and_then(|id| inner.workflows.get(id))
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("Workflow", name.to_string()))
    }

    pub fn all_workflows(&self) -> Vec<WorkflowRow> {
        self.inner.read().workflows.values().cloned().collect()
    }

    /// `get_PEs_By_Workflow` (Table I).
    pub fn pes_by_workflow(&self, workflow_id: u64) -> Result<Vec<PeRow>, RegistryError> {
        let inner = self.inner.read();
        let wf = inner
            .workflows
            .get(&workflow_id)
            .ok_or_else(|| RegistryError::NotFound("Workflow", workflow_id.to_string()))?;
        Ok(wf
            .pe_ids
            .iter()
            .filter_map(|id| inner.pes.get(id))
            .cloned()
            .collect())
    }

    pub fn update_workflow_description(
        &self,
        id: u64,
        description: &str,
        description_embedding: &str,
    ) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        let wf = inner
            .workflows
            .get_mut(&id)
            .ok_or_else(|| RegistryError::NotFound("Workflow", id.to_string()))?;
        wf.description = description.to_string();
        wf.description_embedding = description_embedding.to_string();
        Ok(())
    }

    pub fn remove_workflow(&self, id: u64) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        let wf = inner
            .workflows
            .remove(&id)
            .ok_or_else(|| RegistryError::NotFound("Workflow", id.to_string()))?;
        let key = wf.name.to_lowercase();
        if let Some(v) = inner.wf_name_index.get_mut(&key) {
            v.retain(|&x| x != id);
        }
        Ok(())
    }

    /// `remove_All` (Table I): clears PEs and workflows, keeps users and
    /// execution history.
    pub fn remove_all(&self) {
        let mut inner = self.inner.write();
        inner.pes.clear();
        inner.workflows.clear();
        inner.pe_name_index.clear();
        inner.wf_name_index.clear();
    }

    // ---- literal search (paper §V-A, Fig. 7) --------------------------------

    /// Case-insensitive term match over names and descriptions.
    pub fn literal_search(&self, target: SearchTarget, term: &str) -> (Vec<PeRow>, Vec<WorkflowRow>) {
        let needle = term.to_lowercase();
        let inner = self.inner.read();
        let pes = if target != SearchTarget::Workflow {
            inner
                .pes
                .values()
                .filter(|p| {
                    p.name.to_lowercase().contains(&needle)
                        || p.description.to_lowercase().contains(&needle)
                })
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        let wfs = if target != SearchTarget::Pe {
            inner
                .workflows
                .values()
                .filter(|w| {
                    w.name.to_lowercase().contains(&needle)
                        || w.description.to_lowercase().contains(&needle)
                })
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        (pes, wfs)
    }

    // ---- executions / responses ---------------------------------------------

    pub fn add_execution(
        &self,
        workflow_id: u64,
        user_id: u64,
        mapping: &str,
        input: &str,
    ) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        if !inner.workflows.contains_key(&workflow_id) {
            return Err(RegistryError::MissingReference {
                table: "Workflow",
                id: workflow_id,
            });
        }
        Self::check_user(&inner, user_id)?;
        let id = inner.next_id();
        let seq = inner.next_seq();
        inner.executions.push(ExecutionRow {
            id,
            workflow_id,
            user_id,
            mapping: mapping.to_string(),
            input: input.to_string(),
            status: ExecutionStatus::Submitted,
            submitted_seq: seq,
        });
        Ok(id)
    }

    pub fn set_execution_status(&self, id: u64, status: ExecutionStatus) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        let ex = inner
            .executions
            .iter_mut()
            .find(|e| e.id == id)
            .ok_or_else(|| RegistryError::NotFound("Execution", id.to_string()))?;
        ex.status = status;
        Ok(())
    }

    pub fn add_response(
        &self,
        execution_id: u64,
        output: &str,
        status: ExecutionStatus,
    ) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        if !inner.executions.iter().any(|e| e.id == execution_id) {
            return Err(RegistryError::MissingReference {
                table: "Execution",
                id: execution_id,
            });
        }
        let id = inner.next_id();
        inner.responses.push(ResponseRow {
            id,
            execution_id,
            output: output.to_string(),
            status,
        });
        Ok(id)
    }

    pub fn executions_for(&self, workflow_id: u64) -> Vec<ExecutionRow> {
        self.inner
            .read()
            .executions
            .iter()
            .filter(|e| e.workflow_id == workflow_id)
            .cloned()
            .collect()
    }

    pub fn responses_for(&self, execution_id: u64) -> Vec<ResponseRow> {
        self.inner
            .read()
            .responses
            .iter()
            .filter(|r| r.execution_id == execution_id)
            .cloned()
            .collect()
    }

    // ---- persistence ---------------------------------------------------------

    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.read();
        RegistrySnapshot {
            users: inner.users.clone(),
            pes: inner.pes.values().cloned().collect(),
            workflows: inner.workflows.values().cloned().collect(),
            executions: inner.executions.clone(),
            responses: inner.responses.clone(),
            next_id: inner.next_id,
            seq: inner.seq,
        }
    }

    pub fn from_snapshot(snap: RegistrySnapshot) -> Registry {
        let mut inner = Inner {
            users: snap.users,
            pes: snap.pes.into_iter().map(|p| (p.id, p)).collect(),
            workflows: snap.workflows.into_iter().map(|w| (w.id, w)).collect(),
            executions: snap.executions,
            responses: snap.responses,
            next_id: snap.next_id,
            seq: snap.seq,
            pe_name_index: HashMap::new(),
            wf_name_index: HashMap::new(),
        };
        inner.rebuild_indexes();
        Registry {
            inner: RwLock::new(inner),
        }
    }

    pub fn save_to(&self, path: &Path) -> Result<(), RegistryError> {
        let json = serde_json::to_string(&self.snapshot())
            .map_err(|e| RegistryError::Persistence(e.to_string()))?;
        std::fs::write(path, json).map_err(|e| RegistryError::Persistence(e.to_string()))
    }

    pub fn load_from(path: &Path) -> Result<Registry, RegistryError> {
        let json =
            std::fs::read_to_string(path).map_err(|e| RegistryError::Persistence(e.to_string()))?;
        let snap: RegistrySnapshot =
            serde_json::from_str(&json).map_err(|e| RegistryError::Persistence(e.to_string()))?;
        Ok(Registry::from_snapshot(snap))
    }

    /// Registry contents summary (the CLI's `list`): (PE count, WF count).
    pub fn counts(&self) -> (usize, usize) {
        let inner = self.inner.read();
        (inner.pes.len(), inner.workflows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_user() -> (Registry, u64) {
        let r = Registry::new();
        let u = r.register_user("rosa", "pw").unwrap();
        (r, u)
    }

    fn pe(user: u64, name: &str) -> NewPe {
        NewPe {
            user_id: user,
            name: name.into(),
            description: format!("{name} description"),
            code: format!("class {name}: pass"),
            description_embedding: String::new(),
            spt_embedding: String::new(),
        }
    }

    #[test]
    fn user_lifecycle() {
        let (r, u) = with_user();
        assert_eq!(r.login("rosa", "pw").unwrap(), u);
        assert_eq!(r.login("rosa", "wrong").unwrap_err(), RegistryError::InvalidCredentials);
        assert!(matches!(r.login("nobody", "pw").unwrap_err(), RegistryError::UnknownUser(_)));
        assert!(matches!(
            r.register_user("rosa", "other").unwrap_err(),
            RegistryError::DuplicateUser(_)
        ));
        assert_eq!(r.user_count(), 1);
    }

    #[test]
    fn password_hash_depends_on_user_and_password() {
        assert_ne!(hash_password("a", "pw"), hash_password("b", "pw"));
        assert_ne!(hash_password("a", "pw"), hash_password("a", "pw2"));
        assert_eq!(hash_password("a", "pw"), hash_password("a", "pw"));
    }

    #[test]
    fn pe_crud_and_indexes() {
        let (r, u) = with_user();
        let id = r.add_pe(pe(u, "IsPrime")).unwrap();
        assert_eq!(r.get_pe(id).unwrap().name, "IsPrime");
        assert_eq!(r.get_pe_by_name("isprime").unwrap().id, id, "index is case-insensitive");
        assert!(r.get_pe(999).is_err());
        assert!(r.get_pe_by_name("nope").is_err());
        r.update_pe_description(id, "new desc", "[0.1]").unwrap();
        assert_eq!(r.get_pe(id).unwrap().description, "new desc");
        r.remove_pe(id).unwrap();
        assert!(r.get_pe(id).is_err());
        assert!(r.get_pe_by_name("IsPrime").is_err(), "index updated on delete");
    }

    #[test]
    fn unique_name_per_user() {
        let (r, u) = with_user();
        r.add_pe(pe(u, "X")).unwrap();
        assert!(matches!(
            r.add_pe(pe(u, "X")).unwrap_err(),
            RegistryError::DuplicateName { .. }
        ));
        // A different user can reuse the name.
        let u2 = r.register_user("sam", "pw").unwrap();
        assert!(r.add_pe(pe(u2, "X")).is_ok());
    }

    #[test]
    fn workflow_fk_integrity() {
        let (r, u) = with_user();
        let p1 = r.add_pe(pe(u, "A")).unwrap();
        let p2 = r.add_pe(pe(u, "B")).unwrap();
        // Insertion-side FK: unknown PE id rejected.
        let bad = NewWorkflow {
            user_id: u,
            name: "wf".into(),
            description: String::new(),
            code: String::new(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
            pe_ids: vec![p1, 999],
        };
        assert!(matches!(
            r.add_workflow(bad).unwrap_err(),
            RegistryError::MissingReference { .. }
        ));
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![p1, p2],
            })
            .unwrap();
        // Deletion-side FK: PE referenced by workflow cannot be removed.
        assert!(matches!(
            r.remove_pe(p1).unwrap_err(),
            RegistryError::ForeignKey { .. }
        ));
        // Remove the workflow first, then the PE.
        r.remove_workflow(wf).unwrap();
        r.remove_pe(p1).unwrap();
    }

    #[test]
    fn pes_by_workflow_in_order() {
        let (r, u) = with_user();
        let p1 = r.add_pe(pe(u, "First")).unwrap();
        let p2 = r.add_pe(pe(u, "Second")).unwrap();
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![p2, p1],
            })
            .unwrap();
        let pes = r.pes_by_workflow(wf).unwrap();
        assert_eq!(pes.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(), vec!["Second", "First"]);
    }

    #[test]
    fn literal_search_matches_names_and_descriptions() {
        let (r, u) = with_user();
        r.add_pe(NewPe {
            description: "counts words in text".into(),
            ..pe(u, "WordCounter")
        })
        .unwrap();
        r.add_pe(pe(u, "IsPrime")).unwrap();
        r.add_workflow(NewWorkflow {
            user_id: u,
            name: "words_wf".into(),
            description: "workflow about words".into(),
            code: String::new(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
            pe_ids: vec![],
        })
        .unwrap();

        // Fig. 7: search 'words' over both kinds.
        let (pes, wfs) = r.literal_search(SearchTarget::Both, "words");
        assert_eq!(pes.len(), 1);
        assert_eq!(wfs.len(), 1);
        // Case-insensitive name match.
        let (pes, wfs) = r.literal_search(SearchTarget::Pe, "isprime");
        assert_eq!(pes.len(), 1);
        assert!(wfs.is_empty());
        // Workflow-only target.
        let (pes, wfs) = r.literal_search(SearchTarget::Workflow, "words");
        assert!(pes.is_empty());
        assert_eq!(wfs.len(), 1);
        // No match.
        let (pes, wfs) = r.literal_search(SearchTarget::Both, "zzz");
        assert!(pes.is_empty() && wfs.is_empty());
    }

    #[test]
    fn executions_and_responses() {
        let (r, u) = with_user();
        let p = r.add_pe(pe(u, "A")).unwrap();
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![p],
            })
            .unwrap();
        let ex = r.add_execution(wf, u, "multi", "10").unwrap();
        r.set_execution_status(ex, ExecutionStatus::Running).unwrap();
        let resp = r.add_response(ex, "line1\nline2", ExecutionStatus::Completed).unwrap();
        r.set_execution_status(ex, ExecutionStatus::Completed).unwrap();
        let exs = r.executions_for(wf);
        assert_eq!(exs.len(), 1);
        assert_eq!(exs[0].status, ExecutionStatus::Completed);
        let resps = r.responses_for(ex);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].id, resp);
        // FK checks.
        assert!(r.add_execution(999, u, "simple", "1").is_err());
        assert!(r.add_response(999, "x", ExecutionStatus::Failed).is_err());
    }

    #[test]
    fn remove_all_clears_registry_but_keeps_users() {
        let (r, u) = with_user();
        r.add_pe(pe(u, "A")).unwrap();
        r.add_pe(pe(u, "B")).unwrap();
        r.remove_all();
        assert_eq!(r.counts(), (0, 0));
        assert_eq!(r.user_count(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let (r, u) = with_user();
        let p = r.add_pe(pe(u, "A")).unwrap();
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: "d".into(),
                code: "c".into(),
                description_embedding: "[1.0]".into(),
                spt_embedding: "[[1, 2.0]]".into(),
                pe_ids: vec![p],
            })
            .unwrap();
        let ex = r.add_execution(wf, u, "simple", "5").unwrap();
        r.add_response(ex, "out", ExecutionStatus::Completed).unwrap();

        let dir = std::env::temp_dir().join("laminar-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        r.save_to(&path).unwrap();
        let r2 = Registry::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(r2.counts(), (1, 1));
        assert_eq!(r2.get_pe(p).unwrap().name, "A");
        assert_eq!(r2.get_workflow(wf).unwrap().spt_embedding, "[[1, 2.0]]");
        assert_eq!(r2.get_pe_by_name("a").unwrap().id, p, "indexes rebuilt after load");
        assert_eq!(r2.login("rosa", "pw").unwrap(), u);
        // Ids continue from where they left off.
        let next = r2.add_pe(pe(u, "B")).unwrap();
        assert!(next > ex);
    }

    #[test]
    fn load_from_missing_or_corrupt_file() {
        assert!(Registry::load_from(Path::new("/nonexistent/reg.json")).is_err());
        let dir = std::env::temp_dir().join("laminar-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(Registry::load_from(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let (r, u) = with_user();
        let r = std::sync::Arc::new(r);
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        r.add_pe(NewPe {
                            user_id: u,
                            name: format!("PE_{t}_{i}"),
                            description: String::new(),
                            code: String::new(),
                            description_embedding: String::new(),
                            spt_embedding: String::new(),
                        })
                        .unwrap();
                        let _ = r.literal_search(SearchTarget::Both, "PE_");
                    }
                });
            }
        });
        assert_eq!(r.counts().0, 200);
    }
}
