//! The registry store: tables, indexes, integrity rules, persistence.
//!
//! # Durability
//!
//! A registry opened with [`Registry::open`] is backed by a data
//! directory holding `snapshot.json` (atomic full snapshot) and
//! `wal.log` (a [`crate::wal`] write-ahead log). Every write path
//! appends its typed mutation record to the WAL **before** mutating
//! in-memory state, under the same write lock, so WAL order equals
//! apply order and an acknowledged mutation is always recoverable.
//! Recovery is snapshot load → WAL replay (truncating a torn tail) →
//! index rebuild. Compaction rewrites the snapshot atomically and
//! truncates the WAL; it runs automatically every
//! [`PersistOptions::snapshot_every`] records and on demand via
//! [`Registry::compact`]. A registry built with [`Registry::new`] has
//! no persistence and behaves exactly as before.

use crate::error::RegistryError;
use crate::iofault::{FaultHook, IoSite, SiteCounter};
use crate::rows::*;
use crate::wal::{self, SyncPolicy, Wal, WalOp, WalRecord};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// What a search should cover (the CLI's `workflow | pe` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchTarget {
    Pe,
    Workflow,
    Both,
}

/// Durability knobs for [`Registry::open`].
#[derive(Debug, Clone, Copy)]
pub struct PersistOptions {
    /// Auto-compact (snapshot + WAL truncate) once the WAL holds this
    /// many records. `0` disables auto-compaction.
    pub snapshot_every: u64,
    /// When WAL appends reach the disk.
    pub sync: SyncPolicy,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            snapshot_every: 1024,
            sync: SyncPolicy::OsBuffered,
        }
    }
}

/// Counters for the persistence layer, surfaced in the metrics table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PersistSnapshot {
    /// Records appended to the WAL since open.
    pub wal_appends: u64,
    /// Frame bytes appended to the WAL since open.
    pub wal_bytes: u64,
    /// fsync calls issued (per-append syncs + compaction syncs).
    pub fsyncs: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Records currently in the WAL (resets on compaction).
    pub wal_records: u64,
    /// WAL records replayed during recovery at open.
    pub recovered_records: u64,
    /// Wall-clock recovery duration (snapshot load + replay) at open.
    pub recovery_ms: u64,
    /// IO errors observed on the persistence path (WAL appends, snapshot
    /// writes, truncates) since open. Serde-defaulted for v7 payloads.
    #[serde(default)]
    pub io_errors: u64,
    /// Human-readable description of the most recent persistence error.
    #[serde(default)]
    pub last_error: Option<String>,
}

/// One unit of a batch registration: member PEs plus an optional
/// workflow row referencing them. A bare PE registration is a unit with
/// one PE and no workflow. The workflow's `pe_ids` field is ignored —
/// it is filled with the unit's resolved member ids, exactly as the
/// sequential register-workflow path does.
#[derive(Debug, Clone)]
pub struct RegistrationUnit {
    pub pes: Vec<NewPe>,
    pub workflow: Option<NewWorkflow>,
}

/// One member PE's fate inside a batch unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeOutcome {
    pub name: String,
    pub id: u64,
    /// False when the name already existed for this user and the
    /// existing id was reused (idempotent re-registration).
    pub created: bool,
}

/// Per-unit outcome of [`Registry::add_units`]. Mirrors the sequential
/// path's partial-progress semantics: member PEs registered before a
/// failure stay committed, so `pes`/`workflow` report what actually
/// landed even when `error` is set.
#[derive(Debug, Clone, Default)]
pub struct UnitOutcome {
    pub pes: Vec<PeOutcome>,
    pub workflow: Option<(String, u64)>,
    pub error: Option<RegistryError>,
}

/// What a compaction folded into the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// WAL records absorbed (and truncated away).
    pub wal_records: u64,
    /// WAL bytes absorbed.
    pub wal_bytes: u64,
    /// Size of the snapshot written.
    pub snapshot_bytes: u64,
}

#[derive(Debug, Default)]
struct PersistCounters {
    wal_appends: u64,
    wal_bytes: u64,
    fsyncs: u64,
    compactions: u64,
    recovered_records: u64,
    recovery_ms: u64,
    io_errors: u64,
    last_error: Option<String>,
}

impl PersistCounters {
    /// Record a persistence-path IO failure so callers (metrics, health
    /// probes) can see storage trouble without parsing error strings.
    fn io_failed(&mut self, context: &str, e: &dyn std::fmt::Display) {
        self.io_errors += 1;
        self.last_error = Some(format!("{context}: {e}"));
    }
}

/// Live persistence state: the open WAL plus counters. Lives inside
/// `Inner` so WAL appends happen under the registry write lock.
#[derive(Debug)]
struct Persist {
    dir: PathBuf,
    wal: Wal,
    opts: PersistOptions,
    stats: PersistCounters,
    /// Fault hook shared with the WAL, kept here so snapshot writes in
    /// `compact_locked` and the storage probe consult the same injector.
    fault: Option<FaultHook>,
}

#[derive(Debug, Default, Serialize, Deserialize)]
struct Inner {
    users: Vec<UserRow>,
    pes: BTreeMap<u64, PeRow>,
    workflows: BTreeMap<u64, WorkflowRow>,
    executions: Vec<ExecutionRow>,
    responses: Vec<ResponseRow>,
    next_id: u64,
    seq: u64,
    /// Secondary index: lowercase PE name → ids (idx_pe_name).
    #[serde(skip)]
    pe_name_index: HashMap<String, Vec<u64>>,
    /// Secondary index: lowercase workflow name → ids (idx_wf_name).
    #[serde(skip)]
    wf_name_index: HashMap<String, Vec<u64>>,
    #[serde(skip)]
    persist: Option<Persist>,
}

impl Inner {
    fn rebuild_indexes(&mut self) {
        self.pe_name_index.clear();
        for (id, pe) in &self.pes {
            self.pe_name_index
                .entry(pe.name.to_lowercase())
                .or_default()
                .push(*id);
        }
        self.wf_name_index.clear();
        for (id, wf) in &self.workflows {
            self.wf_name_index
                .entry(wf.name.to_lowercase())
                .or_default()
                .push(*id);
        }
    }

    /// Drop `id` from a name index, removing the key once empty so the
    /// index can't grow without bound under register/remove churn.
    fn unindex(index: &mut HashMap<String, Vec<u64>>, name: &str, id: u64) {
        let key = name.to_lowercase();
        if let Some(v) = index.get_mut(&key) {
            v.retain(|&x| x != id);
            if v.is_empty() {
                index.remove(&key);
            }
        }
    }

    fn bump_id(&mut self, id: u64) {
        self.next_id = self.next_id.max(id);
    }

    /// Apply one mutation record to in-memory state. This is the single
    /// mutation path shared by live writes and WAL replay, so recovery is
    /// bit-identical to the original execution. Records were validated
    /// before being logged, so apply never fails; it keeps `next_id` and
    /// `seq` as high-water marks of the ids/seqs it has seen, and every
    /// add is guarded at its recorded id so that replaying a WAL whose
    /// records a crashed compaction already folded into the snapshot
    /// (crash between rename and truncate) cannot duplicate rows.
    fn apply(&mut self, rec: &WalRecord) {
        self.seq = self.seq.max(rec.seq);
        match &rec.op {
            WalOp::AddUser(row) => {
                self.bump_id(row.id);
                if !self.users.iter().any(|u| u.id == row.id) {
                    self.users.push(row.clone());
                }
            }
            WalOp::AddPe(row) => {
                self.bump_id(row.id);
                let ids = self.pe_name_index.entry(row.name.to_lowercase()).or_default();
                if !ids.contains(&row.id) {
                    ids.push(row.id);
                }
                self.pes.insert(row.id, row.clone());
            }
            WalOp::UpdatePeDescription {
                id,
                description,
                description_embedding,
            } => {
                if let Some(pe) = self.pes.get_mut(id) {
                    pe.description = description.clone();
                    pe.description_embedding = description_embedding.clone();
                }
            }
            WalOp::RemovePe { id } => {
                if let Some(row) = self.pes.remove(id) {
                    Self::unindex(&mut self.pe_name_index, &row.name, *id);
                }
            }
            WalOp::AddWorkflow(row) => {
                self.bump_id(row.id);
                let ids = self.wf_name_index.entry(row.name.to_lowercase()).or_default();
                if !ids.contains(&row.id) {
                    ids.push(row.id);
                }
                self.workflows.insert(row.id, row.clone());
            }
            WalOp::UpdateWorkflowDescription {
                id,
                description,
                description_embedding,
            } => {
                if let Some(wf) = self.workflows.get_mut(id) {
                    wf.description = description.clone();
                    wf.description_embedding = description_embedding.clone();
                }
            }
            WalOp::RemoveWorkflow { id } => {
                if let Some(row) = self.workflows.remove(id) {
                    Self::unindex(&mut self.wf_name_index, &row.name, *id);
                }
            }
            WalOp::RemoveAll => {
                self.pes.clear();
                self.workflows.clear();
                self.pe_name_index.clear();
                self.wf_name_index.clear();
            }
            WalOp::AddExecution(row) => {
                self.bump_id(row.id);
                if !self.executions.iter().any(|e| e.id == row.id) {
                    self.executions.push(row.clone());
                }
            }
            WalOp::SetExecutionStatus { id, status } => {
                if let Some(ex) = self.executions.iter_mut().find(|e| e.id == *id) {
                    ex.status = *status;
                }
            }
            WalOp::AddResponse(row) => {
                self.bump_id(row.id);
                if !self.responses.iter().any(|r| r.id == row.id) {
                    self.responses.push(row.clone());
                }
            }
        }
    }

    fn to_snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            users: self.users.clone(),
            pes: self.pes.values().cloned().collect(),
            workflows: self.workflows.values().cloned().collect(),
            executions: self.executions.clone(),
            responses: self.responses.clone(),
            next_id: self.next_id,
            seq: self.seq,
        }
    }

    fn from_snapshot(snap: RegistrySnapshot) -> Inner {
        let mut inner = Inner {
            users: snap.users,
            pes: snap.pes.into_iter().map(|p| (p.id, p)).collect(),
            workflows: snap.workflows.into_iter().map(|w| (w.id, w)).collect(),
            executions: snap.executions,
            responses: snap.responses,
            next_id: snap.next_id,
            seq: snap.seq,
            pe_name_index: HashMap::new(),
            wf_name_index: HashMap::new(),
            persist: None,
        };
        inner.rebuild_indexes();
        inner
    }
}

/// Serializable snapshot of the whole registry. Fields are public so
/// recovery tests can compare registries structurally.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub users: Vec<UserRow>,
    pub pes: Vec<PeRow>,
    pub workflows: Vec<WorkflowRow>,
    pub executions: Vec<ExecutionRow>,
    pub responses: Vec<ResponseRow>,
    pub next_id: u64,
    pub seq: u64,
}

/// The registry. Cheap to share: interior `RwLock`, many concurrent
/// readers (searches) against occasional writers (registrations).
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

/// Salted FNV password hash. A stand-in for the paper's server-side auth —
/// NOT cryptographically secure, and documented as such in DESIGN.md.
pub fn hash_password(username: &str, password: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in username.as_bytes().iter().chain(b"\x00laminar-salt\x00").chain(password.as_bytes()) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn persist_err(context: &str, e: impl std::fmt::Display) -> RegistryError {
    RegistryError::Persistence(format!("{context}: {e}"))
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Open a durable registry backed by `dir`, recovering prior state:
    /// load `snapshot.json` if present, replay `wal.log` on top
    /// (truncating a torn tail in place), rebuild the name indexes, and
    /// leave the WAL open for appending. The directory is created if
    /// missing; an empty directory yields an empty registry.
    pub fn open(dir: &Path, opts: PersistOptions) -> Result<Registry, RegistryError> {
        Self::open_impl(dir, opts, None)
    }

    /// [`Registry::open`] with a deterministic IO fault hook installed
    /// (see [`crate::iofault`]). Every WAL append/fsync/truncate and
    /// snapshot write/fsync/rename consults the hook before touching the
    /// file, so tests can fail any single IO operation and check that
    /// "acknowledged ⇒ durable, unacknowledged ⇒ absent" holds there.
    pub fn open_with_faults(
        dir: &Path,
        opts: PersistOptions,
        fault: FaultHook,
    ) -> Result<Registry, RegistryError> {
        Self::open_impl(dir, opts, Some(fault))
    }

    fn open_impl(
        dir: &Path,
        opts: PersistOptions,
        fault: Option<FaultHook>,
    ) -> Result<Registry, RegistryError> {
        let start = Instant::now();
        std::fs::create_dir_all(dir).map_err(|e| persist_err("create data dir", e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        // A leftover snapshot.json.tmp is a compaction that died before
        // its rename — the live snapshot + WAL are still authoritative.
        let _ = std::fs::remove_file(wal::tmp_path(&snap_path));

        let mut inner = if snap_path.exists() {
            let json = std::fs::read_to_string(&snap_path)
                .map_err(|e| persist_err("read snapshot", e))?;
            let snap: RegistrySnapshot =
                serde_json::from_str(&json).map_err(|e| persist_err("parse snapshot", e))?;
            Inner::from_snapshot(snap)
        } else {
            Inner::default()
        };

        let wal_path = dir.join(WAL_FILE);
        let replayed = wal::replay(&wal_path).map_err(|e| persist_err("replay wal", e))?;
        if replayed.torn {
            wal::truncate_to(&wal_path, replayed.valid_bytes)
                .map_err(|e| persist_err("truncate torn wal tail", e))?;
        }
        let recovered = replayed.records.len() as u64;
        for rec in &replayed.records {
            inner.apply(rec);
        }

        let mut wal = Wal::open(&wal_path, opts.sync, recovered, replayed.valid_bytes)
            .map_err(|e| persist_err("open wal", e))?;
        if let Some(hook) = fault.clone() {
            wal.set_fault_hook(hook);
        }
        inner.persist = Some(Persist {
            dir: dir.to_path_buf(),
            wal,
            opts,
            stats: PersistCounters {
                recovered_records: recovered,
                recovery_ms: start.elapsed().as_millis() as u64,
                ..PersistCounters::default()
            },
            fault,
        });
        Ok(Registry {
            inner: RwLock::new(inner),
        })
    }

    /// Log `rec` to the WAL (when persistent), then apply it in memory.
    /// On WAL failure nothing is applied and the mutation is rejected —
    /// acknowledged implies durable. Runs auto-compaction when due;
    /// compaction failure never fails the already-durable mutation.
    fn commit(inner: &mut Inner, rec: WalRecord) -> Result<(), RegistryError> {
        if let Some(p) = inner.persist.as_mut() {
            let (bytes, synced) = match p.wal.append(&rec) {
                Ok(v) => v,
                Err(e) => {
                    p.stats.io_failed("wal append", &e);
                    return Err(persist_err("wal append", e));
                }
            };
            p.stats.wal_appends += 1;
            p.stats.wal_bytes += bytes;
            if synced {
                p.stats.fsyncs += 1;
            }
        }
        inner.apply(&rec);
        let due = inner
            .persist
            .as_ref()
            .is_some_and(|p| p.opts.snapshot_every > 0 && p.wal.records() >= p.opts.snapshot_every);
        if due {
            let _ = Self::compact_locked(inner); // best-effort
        }
        Ok(())
    }

    /// Fold the WAL into a fresh snapshot: serialize state, write it via
    /// temp-file + fsync + rename, then truncate the WAL. Returns `None`
    /// for a non-persistent registry. A crash between the rename and the
    /// truncate replays WAL records onto a snapshot that already contains
    /// them — harmless, because every op is idempotent at its recorded id.
    pub fn compact(&self) -> Result<Option<CompactStats>, RegistryError> {
        Self::compact_locked(&mut self.inner.write())
    }

    fn compact_locked(inner: &mut Inner) -> Result<Option<CompactStats>, RegistryError> {
        if inner.persist.is_none() {
            return Ok(None);
        }
        let json = serde_json::to_vec(&inner.to_snapshot())
            .map_err(|e| persist_err("serialise snapshot", e))?;
        let p = inner.persist.as_mut().expect("checked above");
        let stats = CompactStats {
            wal_records: p.wal.records(),
            wal_bytes: p.wal.bytes(),
            snapshot_bytes: json.len() as u64,
        };
        if let Err(e) = wal::write_atomic_hooked(&p.dir.join(SNAPSHOT_FILE), &json, p.fault.as_ref())
        {
            p.stats.io_failed("write snapshot", &e);
            return Err(persist_err("write snapshot", e));
        }
        if let Err(e) = p.wal.reset() {
            p.stats.io_failed("truncate wal", &e);
            return Err(persist_err("truncate wal", e));
        }
        p.stats.compactions += 1;
        p.stats.fsyncs += 2; // snapshot fsync + wal-truncate fsync
        Ok(Some(stats))
    }

    /// Persistence counters, or `None` for an in-memory registry.
    pub fn persist_stats(&self) -> Option<PersistSnapshot> {
        let inner = self.inner.read();
        inner.persist.as_ref().map(|p| PersistSnapshot {
            wal_appends: p.stats.wal_appends,
            wal_bytes: p.stats.wal_bytes,
            fsyncs: p.stats.fsyncs,
            compactions: p.stats.compactions,
            wal_records: p.wal.records(),
            recovered_records: p.stats.recovered_records,
            recovery_ms: p.stats.recovery_ms,
            io_errors: p.stats.io_errors,
            last_error: p.stats.last_error.clone(),
        })
    }

    /// Per-site fault-injection counters from the installed hook, or
    /// empty when no hook is installed (the production configuration).
    pub fn fault_counters(&self) -> Vec<SiteCounter> {
        self.inner
            .read()
            .persist
            .as_ref()
            .and_then(|p| p.fault.as_ref())
            .map(|h| h.counters())
            .unwrap_or_default()
    }

    /// Recovery probe for health checks: re-verify that the storage
    /// under a durable registry is writable and the WAL tail is clean.
    ///
    /// Three steps, cheapest first: (1) replay the WAL from disk as a
    /// CRC audit — a torn or unreadable tail fails the probe; (2) write,
    /// fsync, and remove a scratch `health.probe` file in the data
    /// directory, consulting the same fault hook the WAL uses (an armed
    /// persistent injector keeps the probe failing until it is cleared);
    /// (3) heal the live WAL tail under the write lock so a previously
    /// poisoned log is re-truncated to its acknowledged boundary. An
    /// in-memory registry trivially passes. Steps 1–2 take only the read
    /// lock, so searches keep serving while the probe runs.
    pub fn verify_storage(&self) -> Result<(), RegistryError> {
        let (dir, wal_path, fault) = {
            let inner = self.inner.read();
            match inner.persist.as_ref() {
                None => return Ok(()),
                Some(p) => (p.dir.clone(), p.dir.join(WAL_FILE), p.fault.clone()),
            }
        };
        let replayed = wal::replay(&wal_path).map_err(|e| persist_err("probe: replay wal", e))?;
        if replayed.torn {
            return Err(persist_err(
                "probe: wal tail",
                "torn frame past the acknowledged boundary",
            ));
        }
        let probe = dir.join("health.probe");
        let res = Self::probe_write(&probe, fault.as_ref());
        let _ = std::fs::remove_file(&probe);
        if let Err(e) = res {
            let mut inner = self.inner.write();
            if let Some(p) = inner.persist.as_mut() {
                p.stats.io_failed("probe: test append", &e);
            }
            return Err(persist_err("probe: test append", e));
        }
        let mut inner = self.inner.write();
        if let Some(p) = inner.persist.as_mut() {
            p.wal.heal().map_err(|e| persist_err("probe: heal wal", e))?;
        }
        Ok(())
    }

    /// The probe's scratch write: create/write/fsync `path`. Consults
    /// the fault hook at the WAL-append site first so injected storage
    /// failure and real storage failure look identical to the prober.
    fn probe_write(path: &Path, fault: Option<&FaultHook>) -> std::io::Result<()> {
        if let Some(hook) = fault {
            if let Some(induced) = hook.induce(IoSite::WalAppend, 0) {
                return Err(induced.into_error());
            }
        }
        let mut f = std::fs::File::create(path)?;
        std::io::Write::write_all(&mut f, b"laminar-health-probe")?;
        f.sync_data()
    }

    /// The backing data directory, if this registry is durable.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.inner.read().persist.as_ref().map(|p| p.dir.clone())
    }

    // ---- users -----------------------------------------------------------

    /// Register a user; returns the new user id.
    pub fn register_user(&self, username: &str, password: &str) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        if inner.users.iter().any(|u| u.username == username) {
            return Err(RegistryError::DuplicateUser(username.to_string()));
        }
        let id = inner.next_id + 1;
        let seq = inner.seq + 1;
        let row = UserRow {
            id,
            username: username.to_string(),
            password_hash: hash_password(username, password),
            created_seq: seq,
        };
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::AddUser(row) })?;
        Ok(id)
    }

    /// Verify credentials; returns the user id.
    pub fn login(&self, username: &str, password: &str) -> Result<u64, RegistryError> {
        let inner = self.inner.read();
        let user = inner
            .users
            .iter()
            .find(|u| u.username == username)
            .ok_or_else(|| RegistryError::UnknownUser(username.to_string()))?;
        if user.password_hash != hash_password(username, password) {
            return Err(RegistryError::InvalidCredentials);
        }
        Ok(user.id)
    }

    pub fn user_count(&self) -> usize {
        self.inner.read().users.len()
    }

    fn check_user(inner: &Inner, user_id: u64) -> Result<(), RegistryError> {
        if inner.users.iter().any(|u| u.id == user_id) {
            Ok(())
        } else {
            Err(RegistryError::MissingReference {
                table: "User",
                id: user_id,
            })
        }
    }

    // ---- PEs ---------------------------------------------------------------

    pub fn add_pe(&self, new: NewPe) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        Self::check_user(&inner, new.user_id)?;
        // Duplicate detection goes through the lowercase name index so it
        // matches what `get_pe_by_name` can actually reach: `IsPrime`
        // then `isprime` under one user is a duplicate, not a shadowed row.
        let key = new.name.to_lowercase();
        let dup = inner.pe_name_index.get(&key).is_some_and(|ids| {
            ids.iter()
                .any(|id| inner.pes.get(id).is_some_and(|p| p.user_id == new.user_id))
        });
        if dup {
            return Err(RegistryError::DuplicateName {
                table: "ProcessingElement",
                name: new.name,
            });
        }
        let id = inner.next_id + 1;
        let seq = inner.seq + 1;
        let row = PeRow {
            id,
            user_id: new.user_id,
            name: new.name,
            description: new.description,
            code: new.code,
            description_embedding: new.description_embedding,
            spt_embedding: new.spt_embedding,
        };
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::AddPe(row) })?;
        Ok(id)
    }

    /// Batch registration with group commit: validate every unit under
    /// **one** write-lock hold, append all resulting records as **one**
    /// multi-op WAL frame (one fsync under `EveryAppend`), then apply.
    ///
    /// Per-unit semantics mirror the sequential register path exactly:
    /// a duplicate PE name (same user, case-insensitive) reuses the
    /// existing id instead of failing; a member-PE error stops the unit
    /// (earlier members stay committed, the workflow is skipped); a
    /// duplicate workflow name fails the unit while its member PEs stay.
    /// Units later in the batch see the effects of earlier units, as if
    /// registered sequentially. The outer `Err` is reserved for WAL
    /// failure, in which case nothing was applied.
    pub fn add_units(
        &self,
        units: Vec<RegistrationUnit>,
    ) -> Result<Vec<UnitOutcome>, RegistryError> {
        let mut guard = self.inner.write();
        let inner = &mut *guard;
        let mut frame: Vec<WalRecord> = Vec::new();
        let mut outcomes = Vec::with_capacity(units.len());
        // Ids/seqs are pre-assigned against local counters; rows become
        // visible only when the whole frame is durable and applied.
        // Pending name maps give later units intra-batch visibility.
        let mut next_id = inner.next_id;
        let mut seq = inner.seq;
        let mut pending_pe_names: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
        let mut pending_wf_names: HashMap<String, Vec<u64>> = HashMap::new();
        for unit in units {
            let mut out = UnitOutcome::default();
            let mut member_ids: Vec<u64> = Vec::new();
            for new in unit.pes {
                if let Err(e) = Self::check_user(inner, new.user_id) {
                    out.error = Some(e);
                    break;
                }
                let key = new.name.to_lowercase();
                let dup_committed = inner.pe_name_index.get(&key).is_some_and(|ids| {
                    ids.iter()
                        .any(|id| inner.pes.get(id).is_some_and(|p| p.user_id == new.user_id))
                });
                let dup_pending = pending_pe_names
                    .get(&key)
                    .is_some_and(|v| v.iter().any(|&(_, u)| u == new.user_id));
                if dup_committed || dup_pending {
                    // Reuse the resolved id, like the sequential path's
                    // duplicate handling: first id under the name —
                    // committed rows sort before batch-pending ones,
                    // matching the index order after a sequential run.
                    let existing = inner
                        .pe_name_index
                        .get(&key)
                        .and_then(|ids| ids.first().copied())
                        .or_else(|| {
                            pending_pe_names
                                .get(&key)
                                .and_then(|v| v.first().map(|&(id, _)| id))
                        })
                        .expect("duplicate implies a resolvable id");
                    member_ids.push(existing);
                    out.pes.push(PeOutcome {
                        name: new.name,
                        id: existing,
                        created: false,
                    });
                    continue;
                }
                next_id += 1;
                seq += 1;
                let id = next_id;
                pending_pe_names
                    .entry(key)
                    .or_default()
                    .push((id, new.user_id));
                member_ids.push(id);
                out.pes.push(PeOutcome {
                    name: new.name.clone(),
                    id,
                    created: true,
                });
                frame.push(WalRecord {
                    seq,
                    op: WalOp::AddPe(PeRow {
                        id,
                        user_id: new.user_id,
                        name: new.name,
                        description: new.description,
                        code: new.code,
                        description_embedding: new.description_embedding,
                        spt_embedding: new.spt_embedding,
                    }),
                });
            }
            if out.error.is_none() {
                if let Some(wf) = unit.workflow {
                    let valid_user = Self::check_user(inner, wf.user_id);
                    let key = wf.name.to_lowercase();
                    let dup_committed = inner.wf_name_index.get(&key).is_some_and(|ids| {
                        ids.iter().any(|id| {
                            inner.workflows.get(id).is_some_and(|w| w.user_id == wf.user_id)
                        })
                    });
                    let dup_pending = pending_wf_names
                        .get(&key)
                        .is_some_and(|v| v.contains(&wf.user_id));
                    if let Err(e) = valid_user {
                        out.error = Some(e);
                    } else if dup_committed || dup_pending {
                        out.error = Some(RegistryError::DuplicateName {
                            table: "Workflow",
                            name: wf.name,
                        });
                    } else {
                        next_id += 1;
                        seq += 1;
                        let id = next_id;
                        pending_wf_names.entry(key).or_default().push(wf.user_id);
                        out.workflow = Some((wf.name.clone(), id));
                        frame.push(WalRecord {
                            seq,
                            op: WalOp::AddWorkflow(WorkflowRow {
                                id,
                                user_id: wf.user_id,
                                name: wf.name,
                                description: wf.description,
                                code: wf.code,
                                description_embedding: wf.description_embedding,
                                spt_embedding: wf.spt_embedding,
                                pe_ids: member_ids.clone(),
                            }),
                        });
                    }
                }
            }
            outcomes.push(out);
        }
        // Group commit: one frame, durable before anything is applied.
        if let Some(p) = inner.persist.as_mut() {
            let (bytes, synced) = match p.wal.append_batch(&frame) {
                Ok(v) => v,
                Err(e) => {
                    p.stats.io_failed("wal append batch", &e);
                    return Err(persist_err("wal append batch", e));
                }
            };
            p.stats.wal_appends += frame.len() as u64;
            p.stats.wal_bytes += bytes;
            if synced {
                p.stats.fsyncs += 1;
            }
        }
        for rec in &frame {
            inner.apply(rec);
        }
        let due = inner
            .persist
            .as_ref()
            .is_some_and(|p| p.opts.snapshot_every > 0 && p.wal.records() >= p.opts.snapshot_every);
        if due {
            let _ = Self::compact_locked(inner); // best-effort
        }
        Ok(outcomes)
    }

    pub fn get_pe(&self, id: u64) -> Result<PeRow, RegistryError> {
        self.inner
            .read()
            .pes
            .get(&id)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("ProcessingElement", id.to_string()))
    }

    /// Name lookup through the secondary index (case-insensitive).
    pub fn get_pe_by_name(&self, name: &str) -> Result<PeRow, RegistryError> {
        let inner = self.inner.read();
        let ids = inner.pe_name_index.get(&name.to_lowercase());
        ids.and_then(|ids| ids.first())
            .and_then(|id| inner.pes.get(id))
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("ProcessingElement", name.to_string()))
    }

    pub fn all_pes(&self) -> Vec<PeRow> {
        self.inner.read().pes.values().cloned().collect()
    }

    pub fn update_pe_description(
        &self,
        id: u64,
        description: &str,
        description_embedding: &str,
    ) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.pes.contains_key(&id) {
            return Err(RegistryError::NotFound("ProcessingElement", id.to_string()));
        }
        let seq = inner.seq + 1;
        Self::commit(
            &mut inner,
            WalRecord {
                seq,
                op: WalOp::UpdatePeDescription {
                    id,
                    description: description.to_string(),
                    description_embedding: description_embedding.to_string(),
                },
            },
        )
    }

    /// Remove a PE. FK rule: fails while any workflow still references it.
    pub fn remove_pe(&self, id: u64) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.pes.contains_key(&id) {
            return Err(RegistryError::NotFound("ProcessingElement", id.to_string()));
        }
        if inner.workflows.values().any(|w| w.pe_ids.contains(&id)) {
            return Err(RegistryError::ForeignKey {
                table: "ProcessingElement",
                id,
                referenced_by: "Workflow",
            });
        }
        let seq = inner.seq + 1;
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::RemovePe { id } })
    }

    // ---- workflows ---------------------------------------------------------

    pub fn add_workflow(&self, new: NewWorkflow) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        Self::check_user(&inner, new.user_id)?;
        for pe_id in &new.pe_ids {
            if !inner.pes.contains_key(pe_id) {
                return Err(RegistryError::MissingReference {
                    table: "ProcessingElement",
                    id: *pe_id,
                });
            }
        }
        // Case-insensitive duplicate detection through the index (see
        // `add_pe`), still scoped per user.
        let key = new.name.to_lowercase();
        let dup = inner.wf_name_index.get(&key).is_some_and(|ids| {
            ids.iter()
                .any(|id| inner.workflows.get(id).is_some_and(|w| w.user_id == new.user_id))
        });
        if dup {
            return Err(RegistryError::DuplicateName {
                table: "Workflow",
                name: new.name,
            });
        }
        let id = inner.next_id + 1;
        let seq = inner.seq + 1;
        let row = WorkflowRow {
            id,
            user_id: new.user_id,
            name: new.name,
            description: new.description,
            code: new.code,
            description_embedding: new.description_embedding,
            spt_embedding: new.spt_embedding,
            pe_ids: new.pe_ids,
        };
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::AddWorkflow(row) })?;
        Ok(id)
    }

    pub fn get_workflow(&self, id: u64) -> Result<WorkflowRow, RegistryError> {
        self.inner
            .read()
            .workflows
            .get(&id)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("Workflow", id.to_string()))
    }

    pub fn get_workflow_by_name(&self, name: &str) -> Result<WorkflowRow, RegistryError> {
        let inner = self.inner.read();
        let ids = inner.wf_name_index.get(&name.to_lowercase());
        ids.and_then(|ids| ids.first())
            .and_then(|id| inner.workflows.get(id))
            .cloned()
            .ok_or_else(|| RegistryError::NotFound("Workflow", name.to_string()))
    }

    pub fn all_workflows(&self) -> Vec<WorkflowRow> {
        self.inner.read().workflows.values().cloned().collect()
    }

    /// `get_PEs_By_Workflow` (Table I).
    pub fn pes_by_workflow(&self, workflow_id: u64) -> Result<Vec<PeRow>, RegistryError> {
        let inner = self.inner.read();
        let wf = inner
            .workflows
            .get(&workflow_id)
            .ok_or_else(|| RegistryError::NotFound("Workflow", workflow_id.to_string()))?;
        Ok(wf
            .pe_ids
            .iter()
            .filter_map(|id| inner.pes.get(id))
            .cloned()
            .collect())
    }

    pub fn update_workflow_description(
        &self,
        id: u64,
        description: &str,
        description_embedding: &str,
    ) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.workflows.contains_key(&id) {
            return Err(RegistryError::NotFound("Workflow", id.to_string()));
        }
        let seq = inner.seq + 1;
        Self::commit(
            &mut inner,
            WalRecord {
                seq,
                op: WalOp::UpdateWorkflowDescription {
                    id,
                    description: description.to_string(),
                    description_embedding: description_embedding.to_string(),
                },
            },
        )
    }

    pub fn remove_workflow(&self, id: u64) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.workflows.contains_key(&id) {
            return Err(RegistryError::NotFound("Workflow", id.to_string()));
        }
        let seq = inner.seq + 1;
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::RemoveWorkflow { id } })
    }

    /// `remove_All` (Table I): clears PEs and workflows, keeps users and
    /// execution history. Fallible because the tombstone must reach the
    /// WAL before the wipe is acknowledged.
    pub fn remove_all(&self) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        let seq = inner.seq + 1;
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::RemoveAll })
    }

    // ---- literal search (paper §V-A, Fig. 7) --------------------------------

    /// Case-insensitive term match over names and descriptions.
    pub fn literal_search(&self, target: SearchTarget, term: &str) -> (Vec<PeRow>, Vec<WorkflowRow>) {
        let needle = term.to_lowercase();
        let inner = self.inner.read();
        let pes = if target != SearchTarget::Workflow {
            inner
                .pes
                .values()
                .filter(|p| {
                    p.name.to_lowercase().contains(&needle)
                        || p.description.to_lowercase().contains(&needle)
                })
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        let wfs = if target != SearchTarget::Pe {
            inner
                .workflows
                .values()
                .filter(|w| {
                    w.name.to_lowercase().contains(&needle)
                        || w.description.to_lowercase().contains(&needle)
                })
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        (pes, wfs)
    }

    // ---- executions / responses ---------------------------------------------

    pub fn add_execution(
        &self,
        workflow_id: u64,
        user_id: u64,
        mapping: &str,
        input: &str,
    ) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        if !inner.workflows.contains_key(&workflow_id) {
            return Err(RegistryError::MissingReference {
                table: "Workflow",
                id: workflow_id,
            });
        }
        Self::check_user(&inner, user_id)?;
        let id = inner.next_id + 1;
        let seq = inner.seq + 1;
        let row = ExecutionRow {
            id,
            workflow_id,
            user_id,
            mapping: mapping.to_string(),
            input: input.to_string(),
            status: ExecutionStatus::Submitted,
            submitted_seq: seq,
        };
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::AddExecution(row) })?;
        Ok(id)
    }

    pub fn set_execution_status(&self, id: u64, status: ExecutionStatus) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.executions.iter().any(|e| e.id == id) {
            return Err(RegistryError::NotFound("Execution", id.to_string()));
        }
        let seq = inner.seq + 1;
        Self::commit(
            &mut inner,
            WalRecord { seq, op: WalOp::SetExecutionStatus { id, status } },
        )
    }

    pub fn add_response(
        &self,
        execution_id: u64,
        output: &str,
        status: ExecutionStatus,
    ) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write();
        if !inner.executions.iter().any(|e| e.id == execution_id) {
            return Err(RegistryError::MissingReference {
                table: "Execution",
                id: execution_id,
            });
        }
        let id = inner.next_id + 1;
        let seq = inner.seq + 1;
        let row = ResponseRow {
            id,
            execution_id,
            output: output.to_string(),
            status,
        };
        Self::commit(&mut inner, WalRecord { seq, op: WalOp::AddResponse(row) })?;
        Ok(id)
    }

    pub fn executions_for(&self, workflow_id: u64) -> Vec<ExecutionRow> {
        self.inner
            .read()
            .executions
            .iter()
            .filter(|e| e.workflow_id == workflow_id)
            .cloned()
            .collect()
    }

    pub fn responses_for(&self, execution_id: u64) -> Vec<ResponseRow> {
        self.inner
            .read()
            .responses
            .iter()
            .filter(|r| r.execution_id == execution_id)
            .cloned()
            .collect()
    }

    // ---- persistence ---------------------------------------------------------

    pub fn snapshot(&self) -> RegistrySnapshot {
        self.inner.read().to_snapshot()
    }

    pub fn from_snapshot(snap: RegistrySnapshot) -> Registry {
        Registry {
            inner: RwLock::new(Inner::from_snapshot(snap)),
        }
    }

    /// Write a snapshot atomically: temp file + fsync + rename, so a
    /// crash mid-write can never corrupt an existing snapshot.
    pub fn save_to(&self, path: &Path) -> Result<(), RegistryError> {
        let json = serde_json::to_vec(&self.snapshot())
            .map_err(|e| persist_err("serialise snapshot", e))?;
        wal::write_atomic(path, &json).map_err(|e| persist_err("write snapshot", e))
    }

    pub fn load_from(path: &Path) -> Result<Registry, RegistryError> {
        let json =
            std::fs::read_to_string(path).map_err(|e| RegistryError::Persistence(e.to_string()))?;
        let snap: RegistrySnapshot =
            serde_json::from_str(&json).map_err(|e| RegistryError::Persistence(e.to_string()))?;
        Ok(Registry::from_snapshot(snap))
    }

    /// Registry contents summary (the CLI's `list`): (PE count, WF count).
    pub fn counts(&self) -> (usize, usize) {
        let inner = self.inner.read();
        (inner.pes.len(), inner.workflows.len())
    }

    /// Sorted copies of the name indexes, for tests that assert the
    /// incrementally-maintained indexes match a from-scratch rebuild.
    #[doc(hidden)]
    pub fn debug_name_indexes(&self) -> (Vec<(String, Vec<u64>)>, Vec<(String, Vec<u64>)>) {
        let inner = self.inner.read();
        let mut pe: Vec<_> = inner
            .pe_name_index
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        pe.sort();
        let mut wf: Vec<_> = inner
            .wf_name_index
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        wf.sort();
        (pe, wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_user() -> (Registry, u64) {
        let r = Registry::new();
        let u = r.register_user("rosa", "pw").unwrap();
        (r, u)
    }

    fn pe(user: u64, name: &str) -> NewPe {
        NewPe {
            user_id: user,
            name: name.into(),
            description: format!("{name} description"),
            code: format!("class {name}: pass"),
            description_embedding: String::new(),
            spt_embedding: String::new(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laminar-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn user_lifecycle() {
        let (r, u) = with_user();
        assert_eq!(r.login("rosa", "pw").unwrap(), u);
        assert_eq!(r.login("rosa", "wrong").unwrap_err(), RegistryError::InvalidCredentials);
        assert!(matches!(r.login("nobody", "pw").unwrap_err(), RegistryError::UnknownUser(_)));
        assert!(matches!(
            r.register_user("rosa", "other").unwrap_err(),
            RegistryError::DuplicateUser(_)
        ));
        assert_eq!(r.user_count(), 1);
    }

    #[test]
    fn password_hash_depends_on_user_and_password() {
        assert_ne!(hash_password("a", "pw"), hash_password("b", "pw"));
        assert_ne!(hash_password("a", "pw"), hash_password("a", "pw2"));
        assert_eq!(hash_password("a", "pw"), hash_password("a", "pw"));
    }

    #[test]
    fn pe_crud_and_indexes() {
        let (r, u) = with_user();
        let id = r.add_pe(pe(u, "IsPrime")).unwrap();
        assert_eq!(r.get_pe(id).unwrap().name, "IsPrime");
        assert_eq!(r.get_pe_by_name("isprime").unwrap().id, id, "index is case-insensitive");
        assert!(r.get_pe(999).is_err());
        assert!(r.get_pe_by_name("nope").is_err());
        r.update_pe_description(id, "new desc", "[0.1]").unwrap();
        assert_eq!(r.get_pe(id).unwrap().description, "new desc");
        r.remove_pe(id).unwrap();
        assert!(r.get_pe(id).is_err());
        assert!(r.get_pe_by_name("IsPrime").is_err(), "index updated on delete");
    }

    #[test]
    fn unique_name_per_user() {
        let (r, u) = with_user();
        r.add_pe(pe(u, "X")).unwrap();
        assert!(matches!(
            r.add_pe(pe(u, "X")).unwrap_err(),
            RegistryError::DuplicateName { .. }
        ));
        // A different user can reuse the name.
        let u2 = r.register_user("sam", "pw").unwrap();
        assert!(r.add_pe(pe(u2, "X")).is_ok());
    }

    #[test]
    fn duplicate_names_are_case_insensitive() {
        // Regression: duplicate detection used exact string comparison
        // while the name index is lowercase-keyed, so `IsPrime` then
        // `isprime` both registered but the second was unreachable by
        // name lookup.
        let (r, u) = with_user();
        let id = r.add_pe(pe(u, "IsPrime")).unwrap();
        assert!(matches!(
            r.add_pe(pe(u, "isprime")).unwrap_err(),
            RegistryError::DuplicateName { table: "ProcessingElement", .. }
        ));
        assert!(matches!(
            r.add_pe(pe(u, "ISPRIME")).unwrap_err(),
            RegistryError::DuplicateName { .. }
        ));
        assert_eq!(r.get_pe_by_name("IsPrime").unwrap().id, id);
        assert_eq!(r.counts().0, 1, "no shadowed row was created");

        r.add_workflow(NewWorkflow {
            user_id: u,
            name: "Pipeline".into(),
            description: String::new(),
            code: String::new(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
            pe_ids: vec![],
        })
        .unwrap();
        assert!(matches!(
            r.add_workflow(NewWorkflow {
                user_id: u,
                name: "pipeline".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![],
            })
            .unwrap_err(),
            RegistryError::DuplicateName { table: "Workflow", .. }
        ));
        // A different user can still reuse the name in any case.
        let u2 = r.register_user("sam", "pw").unwrap();
        assert!(r.add_pe(pe(u2, "ISPRIME")).is_ok());
    }

    #[test]
    fn name_index_does_not_grow_under_churn() {
        // Regression: remove_pe/remove_workflow retained the id out of
        // the index Vec but left the empty key behind, so the index grew
        // without bound under register/remove churn.
        let (r, u) = with_user();
        let (pe_baseline, wf_baseline) = r.debug_name_indexes();
        for i in 0..100 {
            let id = r.add_pe(pe(u, &format!("Churn{i}"))).unwrap();
            r.remove_pe(id).unwrap();
            let wid = r
                .add_workflow(NewWorkflow {
                    user_id: u,
                    name: format!("ChurnWf{i}"),
                    description: String::new(),
                    code: String::new(),
                    description_embedding: String::new(),
                    spt_embedding: String::new(),
                    pe_ids: vec![],
                })
                .unwrap();
            r.remove_workflow(wid).unwrap();
        }
        let (pe_after, wf_after) = r.debug_name_indexes();
        assert_eq!(pe_after, pe_baseline, "PE index back to baseline");
        assert_eq!(wf_after, wf_baseline, "workflow index back to baseline");
    }

    #[test]
    fn every_mutation_advances_seq() {
        // Regression: add_pe/add_workflow/update_* never advanced `seq`,
        // making it unusable as a WAL ordering cursor.
        let r = Registry::new();
        let mut last = r.snapshot().seq;
        let mut bump = |r: &Registry, what: &str| {
            let now = r.snapshot().seq;
            assert_eq!(now, last + 1, "{what} must advance seq by exactly 1");
            last = now;
        };
        let u = r.register_user("rosa", "pw").unwrap();
        bump(&r, "register_user");
        let p = r.add_pe(pe(u, "A")).unwrap();
        bump(&r, "add_pe");
        r.update_pe_description(p, "d", "[1.0]").unwrap();
        bump(&r, "update_pe_description");
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![p],
            })
            .unwrap();
        bump(&r, "add_workflow");
        r.update_workflow_description(wf, "d", "[1.0]").unwrap();
        bump(&r, "update_workflow_description");
        let ex = r.add_execution(wf, u, "simple", "1").unwrap();
        bump(&r, "add_execution");
        r.set_execution_status(ex, ExecutionStatus::Running).unwrap();
        bump(&r, "set_execution_status");
        r.add_response(ex, "out", ExecutionStatus::Completed).unwrap();
        bump(&r, "add_response");
        r.remove_workflow(wf).unwrap();
        bump(&r, "remove_workflow");
        r.remove_pe(p).unwrap();
        bump(&r, "remove_pe");
        r.remove_all().unwrap();
        bump(&r, "remove_all");
    }

    #[test]
    fn workflow_fk_integrity() {
        let (r, u) = with_user();
        let p1 = r.add_pe(pe(u, "A")).unwrap();
        let p2 = r.add_pe(pe(u, "B")).unwrap();
        // Insertion-side FK: unknown PE id rejected.
        let bad = NewWorkflow {
            user_id: u,
            name: "wf".into(),
            description: String::new(),
            code: String::new(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
            pe_ids: vec![p1, 999],
        };
        assert!(matches!(
            r.add_workflow(bad).unwrap_err(),
            RegistryError::MissingReference { .. }
        ));
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![p1, p2],
            })
            .unwrap();
        // Deletion-side FK: PE referenced by workflow cannot be removed.
        assert!(matches!(
            r.remove_pe(p1).unwrap_err(),
            RegistryError::ForeignKey { .. }
        ));
        // Remove the workflow first, then the PE.
        r.remove_workflow(wf).unwrap();
        r.remove_pe(p1).unwrap();
    }

    #[test]
    fn pes_by_workflow_in_order() {
        let (r, u) = with_user();
        let p1 = r.add_pe(pe(u, "First")).unwrap();
        let p2 = r.add_pe(pe(u, "Second")).unwrap();
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![p2, p1],
            })
            .unwrap();
        let pes = r.pes_by_workflow(wf).unwrap();
        assert_eq!(pes.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(), vec!["Second", "First"]);
    }

    #[test]
    fn literal_search_matches_names_and_descriptions() {
        let (r, u) = with_user();
        r.add_pe(NewPe {
            description: "counts words in text".into(),
            ..pe(u, "WordCounter")
        })
        .unwrap();
        r.add_pe(pe(u, "IsPrime")).unwrap();
        r.add_workflow(NewWorkflow {
            user_id: u,
            name: "words_wf".into(),
            description: "workflow about words".into(),
            code: String::new(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
            pe_ids: vec![],
        })
        .unwrap();

        // Fig. 7: search 'words' over both kinds.
        let (pes, wfs) = r.literal_search(SearchTarget::Both, "words");
        assert_eq!(pes.len(), 1);
        assert_eq!(wfs.len(), 1);
        // Case-insensitive name match.
        let (pes, wfs) = r.literal_search(SearchTarget::Pe, "isprime");
        assert_eq!(pes.len(), 1);
        assert!(wfs.is_empty());
        // Workflow-only target.
        let (pes, wfs) = r.literal_search(SearchTarget::Workflow, "words");
        assert!(pes.is_empty());
        assert_eq!(wfs.len(), 1);
        // No match.
        let (pes, wfs) = r.literal_search(SearchTarget::Both, "zzz");
        assert!(pes.is_empty() && wfs.is_empty());
    }

    #[test]
    fn executions_and_responses() {
        let (r, u) = with_user();
        let p = r.add_pe(pe(u, "A")).unwrap();
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: String::new(),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![p],
            })
            .unwrap();
        let ex = r.add_execution(wf, u, "multi", "10").unwrap();
        r.set_execution_status(ex, ExecutionStatus::Running).unwrap();
        let resp = r.add_response(ex, "line1\nline2", ExecutionStatus::Completed).unwrap();
        r.set_execution_status(ex, ExecutionStatus::Completed).unwrap();
        let exs = r.executions_for(wf);
        assert_eq!(exs.len(), 1);
        assert_eq!(exs[0].status, ExecutionStatus::Completed);
        let resps = r.responses_for(ex);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].id, resp);
        // FK checks.
        assert!(r.add_execution(999, u, "simple", "1").is_err());
        assert!(r.add_response(999, "x", ExecutionStatus::Failed).is_err());
    }

    #[test]
    fn remove_all_clears_registry_but_keeps_users() {
        let (r, u) = with_user();
        r.add_pe(pe(u, "A")).unwrap();
        r.add_pe(pe(u, "B")).unwrap();
        r.remove_all().unwrap();
        assert_eq!(r.counts(), (0, 0));
        assert_eq!(r.user_count(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let (r, u) = with_user();
        let p = r.add_pe(pe(u, "A")).unwrap();
        let wf = r
            .add_workflow(NewWorkflow {
                user_id: u,
                name: "wf".into(),
                description: "d".into(),
                code: "c".into(),
                description_embedding: "[1.0]".into(),
                spt_embedding: "[[1, 2.0]]".into(),
                pe_ids: vec![p],
            })
            .unwrap();
        let ex = r.add_execution(wf, u, "simple", "5").unwrap();
        r.add_response(ex, "out", ExecutionStatus::Completed).unwrap();

        let dir = tmp_dir("roundtrip");
        let path = dir.join("snapshot.json");
        r.save_to(&path).unwrap();
        let r2 = Registry::load_from(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(r2.counts(), (1, 1));
        assert_eq!(r2.get_pe(p).unwrap().name, "A");
        assert_eq!(r2.get_workflow(wf).unwrap().spt_embedding, "[[1, 2.0]]");
        assert_eq!(r2.get_pe_by_name("a").unwrap().id, p, "indexes rebuilt after load");
        assert_eq!(r2.login("rosa", "pw").unwrap(), u);
        // Ids continue from where they left off.
        let next = r2.add_pe(pe(u, "B")).unwrap();
        assert!(next > ex);
    }

    #[test]
    fn load_from_missing_or_corrupt_file() {
        assert!(Registry::load_from(Path::new("/nonexistent/reg.json")).is_err());
        let dir = tmp_dir("corrupt-load");
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(Registry::load_from(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_to_is_atomic_and_truncated_snapshot_fails_loudly() {
        // Regression: save_to used a bare fs::write, so a crash mid-write
        // corrupted the only copy. Now it goes temp + fsync + rename.
        let (r, u) = with_user();
        r.add_pe(pe(u, "A")).unwrap();
        let dir = tmp_dir("atomic-save");
        let path = dir.join("snapshot.json");
        r.save_to(&path).unwrap();
        let intact = std::fs::read(&path).unwrap();
        assert!(!wal::tmp_path(&path).exists(), "temp file renamed away");

        // A truncated snapshot (simulated torn write) fails loudly…
        let truncated = &intact[..intact.len() / 2];
        let torn = dir.join("torn.json");
        std::fs::write(&torn, truncated).unwrap();
        assert!(matches!(
            Registry::load_from(&torn).unwrap_err(),
            RegistryError::Persistence(_)
        ));

        // …while the previous intact snapshot still loads: overwriting
        // through save_to never leaves a torn live file even if the new
        // state serialises first to the side.
        r.add_pe(pe(u, "B")).unwrap();
        r.save_to(&path).unwrap();
        let r2 = Registry::load_from(&path).unwrap();
        assert_eq!(r2.counts().0, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_registry_survives_reopen() {
        let dir = tmp_dir("durable");
        let wf;
        let u;
        {
            let r = Registry::open(&dir, PersistOptions::default()).unwrap();
            u = r.register_user("rosa", "pw").unwrap();
            let p = r.add_pe(pe(u, "A")).unwrap();
            wf = r
                .add_workflow(NewWorkflow {
                    user_id: u,
                    name: "wf".into(),
                    description: "d".into(),
                    code: "c".into(),
                    description_embedding: "[1.0]".into(),
                    spt_embedding: String::new(),
                    pe_ids: vec![p],
                })
                .unwrap();
            let stats = r.persist_stats().unwrap();
            assert_eq!(stats.wal_appends, 3);
            assert_eq!(stats.wal_records, 3);
            assert_eq!(stats.compactions, 0);
        }
        // Reopen: snapshot absent, everything comes back via WAL replay.
        let r2 = Registry::open(&dir, PersistOptions::default()).unwrap();
        let stats = r2.persist_stats().unwrap();
        assert_eq!(stats.recovered_records, 3);
        assert_eq!(r2.login("rosa", "pw").unwrap(), u);
        assert_eq!(r2.get_workflow_by_name("WF").unwrap().id, wf, "indexes warm after recovery");
        // Mutations keep appending to the recovered WAL.
        r2.add_pe(pe(u, "B")).unwrap();
        drop(r2);
        let r3 = Registry::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r3.persist_stats().unwrap().recovered_records, 4);
        assert_eq!(r3.counts(), (2, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compaction_truncates_wal_and_survives_reopen() {
        let dir = tmp_dir("autocompact");
        {
            let r = Registry::open(
                &dir,
                PersistOptions {
                    snapshot_every: 4,
                    ..PersistOptions::default()
                },
            )
            .unwrap();
            let u = r.register_user("rosa", "pw").unwrap();
            for i in 0..7 {
                r.add_pe(pe(u, &format!("P{i}"))).unwrap();
            }
            let stats = r.persist_stats().unwrap();
            assert_eq!(stats.compactions, 2, "8 records / snapshot_every=4");
            assert_eq!(stats.wal_records, 0, "WAL truncated at the threshold");
            assert_eq!(stats.wal_appends, 8, "appends keep counting across compactions");
        }
        let r2 = Registry::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r2.counts().0, 7);
        assert_eq!(
            r2.persist_stats().unwrap().recovered_records,
            0,
            "everything came from the snapshot"
        );
        assert_eq!(r2.login("rosa", "pw").unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_compact_reports_stats() {
        let dir = tmp_dir("compact");
        let r = Registry::open(&dir, PersistOptions::default()).unwrap();
        assert!(Registry::new().compact().unwrap().is_none(), "in-memory: no-op");
        let u = r.register_user("rosa", "pw").unwrap();
        r.add_pe(pe(u, "A")).unwrap();
        let stats = r.compact().unwrap().expect("persistent registry compacts");
        assert_eq!(stats.wal_records, 2);
        assert!(stats.snapshot_bytes > 0);
        assert_eq!(r.persist_stats().unwrap().wal_records, 0);
        // Compacting an empty WAL is a harmless no-op snapshot rewrite.
        let again = r.compact().unwrap().unwrap();
        assert_eq!(again.wal_records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_recovers_prefix() {
        let dir = tmp_dir("torn-tail");
        {
            let r = Registry::open(&dir, PersistOptions::default()).unwrap();
            let u = r.register_user("rosa", "pw").unwrap();
            r.add_pe(pe(u, "A")).unwrap();
            r.add_pe(pe(u, "B")).unwrap();
        }
        // Tear the last frame: cut 3 bytes off the WAL.
        let wal_path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let r2 = Registry::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r2.persist_stats().unwrap().recovered_records, 2);
        assert_eq!(r2.counts().0, 1, "torn add_pe(B) was never acknowledged-durable");
        assert!(r2.get_pe_by_name("a").is_ok());
        assert!(r2.get_pe_by_name("b").is_err());
        // The torn tail was truncated in place: a further reopen is clean.
        let r3 = Registry::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r3.persist_stats().unwrap().recovered_records, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_tmp_snapshot_is_discarded_on_open() {
        let dir = tmp_dir("tmp-left");
        {
            let r = Registry::open(&dir, PersistOptions::default()).unwrap();
            r.register_user("rosa", "pw").unwrap();
        }
        // Simulate a compaction that died before the rename.
        std::fs::write(dir.join("snapshot.json.tmp"), "garbage{{{").unwrap();
        let r2 = Registry::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r2.user_count(), 1);
        assert!(!dir.join("snapshot.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn unit(user: u64, wf_name: &str, pe_names: &[&str]) -> RegistrationUnit {
        RegistrationUnit {
            pes: pe_names.iter().map(|n| pe(user, n)).collect(),
            workflow: Some(NewWorkflow {
                user_id: user,
                name: wf_name.into(),
                description: format!("{wf_name} description"),
                code: String::new(),
                description_embedding: String::new(),
                spt_embedding: String::new(),
                pe_ids: vec![],
            }),
        }
    }

    #[test]
    fn add_units_commits_pes_and_workflows() {
        let (r, u) = with_user();
        let outcomes = r
            .add_units(vec![
                unit(u, "wf1", &["A", "B"]),
                RegistrationUnit {
                    pes: vec![pe(u, "Solo")],
                    workflow: None,
                },
            ])
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].error.is_none());
        assert_eq!(outcomes[0].pes.len(), 2);
        assert!(outcomes[0].pes.iter().all(|p| p.created));
        let (wf_name, wf_id) = outcomes[0].workflow.clone().unwrap();
        assert_eq!(wf_name, "wf1");
        // The workflow references the unit's members in order.
        let wf = r.get_workflow(wf_id).unwrap();
        assert_eq!(
            wf.pe_ids,
            outcomes[0].pes.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        assert!(outcomes[1].workflow.is_none());
        assert_eq!(r.counts(), (3, 1));
        // Ids and seq advanced exactly as a sequential run would.
        assert_eq!(r.snapshot().seq, 1 + 4, "user + 3 PEs + 1 workflow");
    }

    #[test]
    fn add_units_reuses_duplicate_pe_ids() {
        let (r, u) = with_user();
        let a = r.add_pe(pe(u, "A")).unwrap();
        let outcomes = r
            .add_units(vec![unit(u, "wf1", &["A", "B"]), unit(u, "wf2", &["B", "C"])])
            .unwrap();
        assert!(outcomes.iter().all(|o| o.error.is_none()));
        // "A" reused the committed id; the second unit's "B" reused the
        // first unit's pending "B".
        assert_eq!(outcomes[0].pes[0], PeOutcome { name: "A".into(), id: a, created: false });
        assert!(outcomes[0].pes[1].created);
        let b = outcomes[0].pes[1].id;
        assert_eq!(outcomes[1].pes[0], PeOutcome { name: "B".into(), id: b, created: false });
        assert!(outcomes[1].pes[1].created);
        assert_eq!(r.counts(), (3, 2), "A, B, C — no duplicate rows");
    }

    #[test]
    fn add_units_partial_failure_keeps_the_rest() {
        let (r, u) = with_user();
        r.add_workflow(NewWorkflow {
            user_id: u,
            name: "taken".into(),
            description: String::new(),
            code: String::new(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
            pe_ids: vec![],
        })
        .unwrap();
        let outcomes = r
            .add_units(vec![
                unit(u, "ok1", &["A"]),
                unit(u, "taken", &["B"]), // workflow dup: unit fails…
                RegistrationUnit {
                    pes: vec![pe(999, "Ghost")], // unknown user: PE fails
                    workflow: None,
                },
                unit(u, "ok2", &["C"]),
            ])
            .unwrap();
        assert!(outcomes[0].error.is_none());
        assert!(matches!(
            outcomes[1].error,
            Some(RegistryError::DuplicateName { table: "Workflow", .. })
        ));
        // …but its member PEs stay committed, like the sequential path.
        assert_eq!(outcomes[1].pes.len(), 1);
        assert!(r.get_pe_by_name("B").is_ok());
        assert!(matches!(
            outcomes[2].error,
            Some(RegistryError::MissingReference { .. })
        ));
        assert!(outcomes[2].pes.is_empty());
        assert!(outcomes[3].error.is_none(), "later units commit normally");
        assert_eq!(r.counts(), (3, 3), "A, B, C + taken, ok1, ok2");
    }

    #[test]
    fn add_units_groups_wal_records_into_one_fsync() {
        let dir = tmp_dir("units-group");
        let r = Registry::open(
            &dir,
            PersistOptions {
                snapshot_every: 0,
                sync: SyncPolicy::EveryAppend,
            },
        )
        .unwrap();
        let u = r.register_user("rosa", "pw").unwrap();
        let before = r.persist_stats().unwrap();
        r.add_units(vec![unit(u, "wf1", &["A", "B", "C"])]).unwrap();
        let after = r.persist_stats().unwrap();
        assert_eq!(after.wal_appends - before.wal_appends, 4, "3 PEs + 1 workflow");
        assert_eq!(after.fsyncs - before.fsyncs, 1, "one fsync for the whole batch");
        drop(r);
        // The batch survives reopen through the group-commit frame.
        let r2 = Registry::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r2.counts(), (3, 1));
        assert_eq!(r2.get_workflow_by_name("wf1").unwrap().pe_ids.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_units_matches_sequential_registration_state() {
        // The core equivalence: one batch == the same items registered
        // one by one, bit-identical at the snapshot level.
        let seq_reg = Registry::new();
        let u1 = seq_reg.register_user("rosa", "pw").unwrap();
        let batch_reg = Registry::new();
        let u2 = batch_reg.register_user("rosa", "pw").unwrap();
        assert_eq!(u1, u2);

        let items = vec![unit(u1, "wf1", &["A", "B"]), unit(u1, "wf2", &["B", "C"])];
        // Sequential: register each unit through the single-row paths.
        for it in &items {
            let mut ids = Vec::new();
            for p in &it.pes {
                match seq_reg.add_pe(p.clone()) {
                    Ok(id) => ids.push(id),
                    Err(RegistryError::DuplicateName { .. }) => {
                        ids.push(seq_reg.get_pe_by_name(&p.name).unwrap().id)
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            let wf = it.workflow.clone().unwrap();
            seq_reg
                .add_workflow(NewWorkflow {
                    pe_ids: ids,
                    ..wf
                })
                .unwrap();
        }
        let outcomes = batch_reg.add_units(items).unwrap();
        assert!(outcomes.iter().all(|o| o.error.is_none()));
        assert_eq!(batch_reg.snapshot(), seq_reg.snapshot());
        assert_eq!(
            batch_reg.debug_name_indexes(),
            seq_reg.debug_name_indexes()
        );
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let (r, u) = with_user();
        let r = std::sync::Arc::new(r);
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        r.add_pe(NewPe {
                            user_id: u,
                            name: format!("PE_{t}_{i}"),
                            description: String::new(),
                            code: String::new(),
                            description_embedding: String::new(),
                            spt_embedding: String::new(),
                        })
                        .unwrap();
                        let _ = r.literal_search(SearchTarget::Both, "PE_");
                    }
                });
            }
        });
        assert_eq!(r.counts().0, 200);
    }
}
