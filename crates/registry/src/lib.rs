//! `laminar-registry` — the Laminar registry (paper §III, §IV-D).
//!
//! The paper's registry is a MySQL database whose schema (Fig. 6,
//! Table II) stores users, workflows, processing elements, executions and
//! responses, with Python code and embeddings held in character large
//! objects. This crate is the in-memory relational substitute: the same
//! tables, keys, unique and secondary indexes, foreign-key integrity rules
//! and CLOB-style unbounded text columns, plus JSON snapshot persistence.
//!
//! What it deliberately does *not* replicate is the SQL wire protocol — no
//! experiment in the paper exercises it.
//!
//! ```
//! use laminar_registry::{Registry, NewPe};
//!
//! let reg = Registry::new();
//! let user = reg.register_user("rosa", "secret").unwrap();
//! let pe = reg
//!     .add_pe(NewPe {
//!         user_id: user,
//!         name: "IsPrime".into(),
//!         description: "checks whether a number is prime".into(),
//!         code: "class IsPrime(IterativePE): ...".into(),
//!         description_embedding: String::new(),
//!         spt_embedding: String::new(),
//!     })
//!     .unwrap();
//! assert_eq!(reg.get_pe(pe).unwrap().name, "IsPrime");
//! ```

pub mod error;
pub mod iofault;
pub mod rows;
pub mod schema;
pub mod store;
pub mod wal;

pub use error::RegistryError;
pub use iofault::{
    FaultEvent, FaultHook, FaultKind, FaultMode, FaultSpec, Induced, IoFaultHook, IoFaultInjector,
    IoSite, SiteCounter,
};
pub use rows::{
    ExecutionRow, ExecutionStatus, NewPe, NewWorkflow, PeRow, ResponseRow, UserRow, WorkflowRow,
};
pub use schema::{schema_ddl, table_descriptions};
pub use store::{
    CompactStats, PeOutcome, PersistOptions, PersistSnapshot, RegistrationUnit, Registry,
    RegistrySnapshot, SearchTarget, UnitOutcome, SNAPSHOT_FILE, WAL_FILE,
};
pub use wal::SyncPolicy;
