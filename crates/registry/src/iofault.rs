//! Deterministic IO fault injection for the durability layer.
//!
//! The enactment layer earned a seeded chaos harness in `d4py::fault`;
//! this module is its storage twin. A [`IoFaultHook`] is threaded through
//! every WAL and snapshot IO site ([`IoSite`]) — consulted immediately
//! *before* the real syscall, it can make the operation fail as if the
//! device had: `ENOSPC` before any byte lands, a short (torn) write that
//! leaves a prefix of the frame on disk, or an fsync error after the data
//! reached the page cache.
//!
//! The stock implementation, [`IoFaultInjector`], is seeded and
//! deterministic: the same seed over the same operation sequence produces
//! a bit-identical fault schedule, recorded in a journal so two runs can
//! be compared event-for-event. Faults can be scheduled at the Nth
//! matching operation, persistently from the Nth onward (a full disk that
//! stays full until [`IoFaultInjector::clear`]), or randomly at a seeded
//! percentage.
//!
//! Production servers never construct a hook — every instrumented site
//! costs one `Option` check when no injector is installed.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The instrumented IO sites of the durability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoSite {
    /// A single-record WAL frame write (`Wal::append`).
    WalAppend,
    /// A group-commit WAL frame write (`Wal::append_batch`).
    WalBatchAppend,
    /// The `sync_data` following a WAL frame under `SyncPolicy::EveryAppend`.
    WalFsync,
    /// The WAL truncation after a snapshot compaction (`Wal::reset`).
    WalTruncate,
    /// Writing the bytes of `snapshot.json.tmp`.
    SnapshotWrite,
    /// The `sync_all` of the snapshot tmp file.
    SnapshotFsync,
    /// The atomic rename of the tmp file over `snapshot.json`.
    SnapshotRename,
}

impl IoSite {
    /// Every site, in a fixed order (indexes the per-site counters).
    pub const ALL: [IoSite; 7] = [
        IoSite::WalAppend,
        IoSite::WalBatchAppend,
        IoSite::WalFsync,
        IoSite::WalTruncate,
        IoSite::SnapshotWrite,
        IoSite::SnapshotFsync,
        IoSite::SnapshotRename,
    ];

    /// Stable name, used by the metrics row group and error messages.
    pub fn name(self) -> &'static str {
        match self {
            IoSite::WalAppend => "wal_append",
            IoSite::WalBatchAppend => "wal_batch_append",
            IoSite::WalFsync => "wal_fsync",
            IoSite::WalTruncate => "wal_truncate",
            IoSite::SnapshotWrite => "snapshot_write",
            IoSite::SnapshotFsync => "snapshot_fsync",
            IoSite::SnapshotRename => "snapshot_rename",
        }
    }

    fn index(self) -> usize {
        match self {
            IoSite::WalAppend => 0,
            IoSite::WalBatchAppend => 1,
            IoSite::WalFsync => 2,
            IoSite::WalTruncate => 3,
            IoSite::SnapshotWrite => 4,
            IoSite::SnapshotFsync => 5,
            IoSite::SnapshotRename => 6,
        }
    }
}

/// What the injected failure looks like to the IO site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device is full: the operation fails before any byte lands.
    Enospc,
    /// A torn write: a prefix of the buffer reaches the file, then the
    /// error surfaces (models a crash or device error mid-`write`).
    ShortWrite,
    /// The data reached the page cache but `fsync` failed — durability
    /// of the preceding write is unknown.
    FsyncError,
}

/// When the matching operations fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail exactly the nth (1-based) matching operation, once.
    Nth(u64),
    /// Fail every matching operation from the nth (1-based) onward — a
    /// persistent fault (the disk stays full) until
    /// [`IoFaultInjector::clear`] is called.
    From(u64),
    /// Fail each matching operation with the given percent probability,
    /// drawn from the seeded generator.
    Random(u32),
}

/// One injector configuration: which sites fail, when, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Sites the fault applies to; empty means every site.
    pub sites: Vec<IoSite>,
    pub mode: FaultMode,
    pub kind: FaultKind,
    /// For [`FaultKind::ShortWrite`]: how many bytes of the buffer reach
    /// the file before the failure. `None` draws a deterministic cut
    /// (strictly inside the buffer) from the seed.
    pub short_cut: Option<usize>,
}

impl FaultSpec {
    /// Fail the nth (1-based) operation at one site, once.
    pub fn nth_at(site: IoSite, n: u64, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            sites: vec![site],
            mode: FaultMode::Nth(n),
            kind,
            short_cut: None,
        }
    }

    /// A persistent fault at every site from the first operation onward
    /// (a disk that is full and stays full until `clear()`).
    pub fn persistent(kind: FaultKind) -> FaultSpec {
        FaultSpec {
            sites: Vec::new(),
            mode: FaultMode::From(1),
            kind,
            short_cut: None,
        }
    }
}

/// What a consulted hook tells the IO site to do.
#[derive(Debug)]
pub enum Induced {
    /// Fail before any byte reaches the file.
    Error(io::Error),
    /// Write only the first `written` bytes of the buffer, then surface
    /// the error — the torn bytes really land on disk.
    Short { written: usize, error: io::Error },
}

impl Induced {
    /// The error to surface, discarding any short-write prefix length
    /// (for sites that write no buffer: fsync, rename, truncate).
    pub fn into_error(self) -> io::Error {
        match self {
            Induced::Error(e) => e,
            Induced::Short { error, .. } => error,
        }
    }
}

/// Per-site observation counters, reported by [`IoFaultHook::counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCounter {
    pub site: IoSite,
    /// Operations that consulted the hook at this site.
    pub ops: u64,
    /// Operations the hook failed.
    pub injected: u64,
}

/// Trait-based hook threaded through the WAL and snapshot IO sites.
///
/// `induce` is consulted immediately before each instrumented operation;
/// `len` is the number of bytes about to be written (0 for
/// fsync/rename/truncate sites). Returning `Some` makes the operation
/// fail without (or, for [`Induced::Short`], after partially) touching
/// the file.
pub trait IoFaultHook: Send + Sync + std::fmt::Debug {
    fn induce(&self, site: IoSite, len: usize) -> Option<Induced>;

    /// Per-site `(ops, injected)` counters for the `storage_health`
    /// metrics row group. Hooks that do not count report nothing.
    fn counters(&self) -> Vec<SiteCounter> {
        Vec::new()
    }
}

/// Shared handle to an installed hook.
pub type FaultHook = Arc<dyn IoFaultHook>;

/// One journal entry: the decision taken for one matching operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 1-based index among the operations matching the site filter.
    pub op: u64,
    pub site: IoSite,
    /// Whether the operation was failed.
    pub injected: bool,
}

/// The seeded, deterministic injector: same seed over the same operation
/// sequence ⇒ bit-identical fault schedule (compare [`journal`]s).
///
/// [`journal`]: IoFaultInjector::journal
#[derive(Debug)]
pub struct IoFaultInjector {
    spec: FaultSpec,
    armed: AtomicBool,
    rng: Mutex<u64>,
    /// Count of operations matching the site filter while armed.
    matched: AtomicU64,
    ops: [AtomicU64; 7],
    injected: [AtomicU64; 7],
    journal: Mutex<Vec<FaultEvent>>,
}

impl IoFaultInjector {
    pub fn new(seed: u64, spec: FaultSpec) -> Arc<IoFaultInjector> {
        Arc::new(IoFaultInjector {
            spec,
            armed: AtomicBool::new(true),
            // xorshift must not start at 0.
            rng: Mutex::new(seed | 1),
            matched: AtomicU64::new(0),
            ops: Default::default(),
            injected: Default::default(),
            journal: Mutex::new(Vec::new()),
        })
    }

    /// The fault condition clears (space freed, device back): stop
    /// injecting. Counters and journal are kept.
    pub fn clear(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Re-arm a cleared injector.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The decision journal so far (one entry per matching operation).
    pub fn journal(&self) -> Vec<FaultEvent> {
        self.journal.lock().unwrap().clone()
    }

    fn next_u64(&self) -> u64 {
        let mut s = self.rng.lock().unwrap();
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x
    }

    fn error(&self, site: IoSite) -> io::Error {
        let msg = match self.spec.kind {
            FaultKind::Enospc => {
                format!("injected ENOSPC at {}: no space left on device", site.name())
            }
            FaultKind::ShortWrite => format!("injected short write at {}", site.name()),
            FaultKind::FsyncError => format!("injected fsync failure at {}", site.name()),
        };
        io::Error::other(msg)
    }
}

impl IoFaultHook for IoFaultInjector {
    fn induce(&self, site: IoSite, len: usize) -> Option<Induced> {
        self.ops[site.index()].fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        if !(self.spec.sites.is_empty() || self.spec.sites.contains(&site)) {
            return None;
        }
        let op = self.matched.fetch_add(1, Ordering::SeqCst) + 1;
        let hit = match self.spec.mode {
            FaultMode::Nth(n) => op == n,
            FaultMode::From(n) => op >= n,
            FaultMode::Random(percent) => self.next_u64() % 100 < u64::from(percent),
        };
        self.journal.lock().unwrap().push(FaultEvent { op, site, injected: hit });
        if !hit {
            return None;
        }
        self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        let error = self.error(site);
        match self.spec.kind {
            // A short write needs a buffer to tear; sites that write no
            // bytes (fsync/rename/truncate) degrade to a plain error.
            FaultKind::ShortWrite if len > 0 => {
                let written = match self.spec.short_cut {
                    Some(cut) => cut.min(len),
                    None => (self.next_u64() as usize) % len,
                };
                Some(Induced::Short { written, error })
            }
            _ => Some(Induced::Error(error)),
        }
    }

    fn counters(&self) -> Vec<SiteCounter> {
        IoSite::ALL
            .iter()
            .map(|&site| SiteCounter {
                site,
                ops: self.ops[site.index()].load(Ordering::Relaxed),
                injected: self.injected[site.index()].load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive an injector through a fixed operation sequence.
    fn drive(inj: &IoFaultInjector) -> Vec<bool> {
        let mut outcomes = Vec::new();
        for i in 0..40u64 {
            let site = IoSite::ALL[(i % 7) as usize];
            outcomes.push(inj.induce(site, 64).is_some());
        }
        outcomes
    }

    #[test]
    fn same_seed_means_bit_identical_schedule() {
        let a = IoFaultInjector::new(
            42,
            FaultSpec {
                sites: Vec::new(),
                mode: FaultMode::Random(30),
                kind: FaultKind::Enospc,
                short_cut: None,
            },
        );
        let b = IoFaultInjector::new(
            42,
            FaultSpec {
                sites: Vec::new(),
                mode: FaultMode::Random(30),
                kind: FaultKind::Enospc,
                short_cut: None,
            },
        );
        assert_eq!(drive(&a), drive(&b));
        assert_eq!(a.journal(), b.journal());
        assert!(a.injected_total() > 0, "30% over 40 ops should fire");
        // A different seed diverges (overwhelmingly likely at 40 draws).
        let c = IoFaultInjector::new(
            43,
            FaultSpec {
                sites: Vec::new(),
                mode: FaultMode::Random(30),
                kind: FaultKind::Enospc,
                short_cut: None,
            },
        );
        assert_ne!(a.journal(), c.journal());
    }

    #[test]
    fn nth_fails_exactly_once_at_the_right_operation() {
        let inj = IoFaultInjector::new(1, FaultSpec::nth_at(IoSite::WalAppend, 3, FaultKind::Enospc));
        // Non-matching sites pass and do not advance the matched count.
        assert!(inj.induce(IoSite::SnapshotWrite, 10).is_none());
        assert!(inj.induce(IoSite::WalAppend, 10).is_none());
        assert!(inj.induce(IoSite::WalAppend, 10).is_none());
        let third = inj.induce(IoSite::WalAppend, 10);
        assert!(matches!(third, Some(Induced::Error(_))), "{third:?}");
        assert!(inj.induce(IoSite::WalAppend, 10).is_none(), "Nth fires once");
        assert_eq!(inj.injected_total(), 1);
        let counters = inj.counters();
        let wal = counters.iter().find(|c| c.site == IoSite::WalAppend).unwrap();
        assert_eq!((wal.ops, wal.injected), (4, 1));
    }

    #[test]
    fn persistent_fault_fails_until_cleared() {
        let inj = IoFaultInjector::new(7, FaultSpec::persistent(FaultKind::Enospc));
        for _ in 0..3 {
            assert!(inj.induce(IoSite::WalAppend, 8).is_some());
        }
        inj.clear();
        assert!(!inj.is_armed());
        assert!(inj.induce(IoSite::WalAppend, 8).is_none());
        inj.arm();
        assert!(inj.induce(IoSite::WalAppend, 8).is_some());
    }

    #[test]
    fn short_write_cuts_inside_the_buffer() {
        let inj = IoFaultInjector::new(
            5,
            FaultSpec {
                sites: vec![IoSite::WalAppend],
                mode: FaultMode::From(1),
                kind: FaultKind::ShortWrite,
                short_cut: None,
            },
        );
        for _ in 0..10 {
            match inj.induce(IoSite::WalAppend, 32) {
                Some(Induced::Short { written, .. }) => assert!(written < 32),
                other => panic!("expected a short write: {other:?}"),
            }
        }
        // An explicit cut is honoured (clamped to the buffer).
        let pinned = IoFaultInjector::new(
            5,
            FaultSpec {
                sites: vec![IoSite::WalAppend],
                mode: FaultMode::From(1),
                kind: FaultKind::ShortWrite,
                short_cut: Some(5),
            },
        );
        match pinned.induce(IoSite::WalAppend, 32) {
            Some(Induced::Short { written, .. }) => assert_eq!(written, 5),
            other => panic!("{other:?}"),
        }
        // Zero-length sites degrade to a plain error.
        assert!(matches!(
            pinned.induce(IoSite::WalAppend, 0),
            Some(Induced::Error(_))
        ));
    }
}
