//! Schema description — the reproduction of Fig. 6 / Table II.
//!
//! `schema_ddl` renders the schema as MySQL-flavoured DDL; the evaluation
//! binary `table2_schema` prints it next to Table II's prose so a reviewer
//! can diff the two.

/// One table's summary row for Table II.
pub struct TableDescription {
    pub name: &'static str,
    pub description: &'static str,
}

/// Table II of the paper, verbatim structure.
pub fn table_descriptions() -> Vec<TableDescription> {
    vec![
        TableDescription {
            name: "User",
            description: "Stores user information. Each user can be associated with multiple \
                          workflows, ensuring a one-to-many relationship.",
        },
        TableDescription {
            name: "Workflow",
            description: "Contains details about each workflow. Each workflow can have multiple \
                          PEs and can be executed multiple times by different users.",
        },
        TableDescription {
            name: "ProcessingElement",
            description: "Stores information about the processing elements. PEs are reusable \
                          components that can be associated with multiple workflows.",
        },
        TableDescription {
            name: "Execution",
            description: "Tracks the execution of workflows. It includes execution-specific \
                          details. Each execution record is linked to a workflow and user.",
        },
        TableDescription {
            name: "Response",
            description: "Captures the results of workflow executions. Each response is linked \
                          to a specific execution.",
        },
    ]
}

/// MySQL-flavoured DDL for the normalised schema (Fig. 6), including the
/// CLOB columns (`LONGTEXT`) and the secondary indexes the paper added for
/// performance.
pub fn schema_ddl() -> String {
    r#"CREATE TABLE User (
    id              BIGINT PRIMARY KEY AUTO_INCREMENT,
    username        VARCHAR(255) NOT NULL,
    password_hash   BIGINT NOT NULL,
    created_seq     BIGINT NOT NULL,
    UNIQUE INDEX idx_user_username (username)
);

CREATE TABLE ProcessingElement (
    id                     BIGINT PRIMARY KEY AUTO_INCREMENT,
    user_id                BIGINT NOT NULL,
    name                   VARCHAR(255) NOT NULL,
    description            LONGTEXT,
    code                   LONGTEXT NOT NULL,       -- CLOB (was VARCHAR in 1.0)
    description_embedding  LONGTEXT,                -- JSON embedding (CLOB)
    spt_embedding          LONGTEXT,                -- Aroma SPT features, JSON (CLOB)
    FOREIGN KEY (user_id) REFERENCES User(id),
    INDEX idx_pe_name (name),
    INDEX idx_pe_user (user_id),
    UNIQUE INDEX idx_pe_user_name (user_id, name)
);

CREATE TABLE Workflow (
    id                     BIGINT PRIMARY KEY AUTO_INCREMENT,
    user_id                BIGINT NOT NULL,
    name                   VARCHAR(255) NOT NULL,
    description            LONGTEXT,
    code                   LONGTEXT NOT NULL,
    description_embedding  LONGTEXT,
    spt_embedding          LONGTEXT,
    FOREIGN KEY (user_id) REFERENCES User(id),
    INDEX idx_wf_name (name),
    INDEX idx_wf_user (user_id),
    UNIQUE INDEX idx_wf_user_name (user_id, name)
);

CREATE TABLE WorkflowPe (
    workflow_id  BIGINT NOT NULL,
    pe_id        BIGINT NOT NULL,
    position     INT NOT NULL,
    PRIMARY KEY (workflow_id, pe_id, position),
    FOREIGN KEY (workflow_id) REFERENCES Workflow(id),
    FOREIGN KEY (pe_id) REFERENCES ProcessingElement(id)
);

CREATE TABLE Execution (
    id             BIGINT PRIMARY KEY AUTO_INCREMENT,
    workflow_id    BIGINT NOT NULL,
    user_id        BIGINT NOT NULL,
    mapping        VARCHAR(32) NOT NULL,
    input          LONGTEXT,
    status         ENUM('Submitted','Running','Completed','Failed') NOT NULL,
    submitted_seq  BIGINT NOT NULL,
    FOREIGN KEY (workflow_id) REFERENCES Workflow(id),
    FOREIGN KEY (user_id) REFERENCES User(id),
    INDEX idx_exec_workflow (workflow_id)
);

CREATE TABLE Response (
    id            BIGINT PRIMARY KEY AUTO_INCREMENT,
    execution_id  BIGINT NOT NULL,
    output        LONGTEXT,
    status        ENUM('Submitted','Running','Completed','Failed') NOT NULL,
    FOREIGN KEY (execution_id) REFERENCES Execution(id),
    INDEX idx_resp_execution (execution_id)
);
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_has_five_tables() {
        let t = table_descriptions();
        assert_eq!(t.len(), 5);
        let names: Vec<_> = t.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["User", "Workflow", "ProcessingElement", "Execution", "Response"]
        );
    }

    #[test]
    fn ddl_covers_schema_elements() {
        let ddl = schema_ddl();
        for table in [
            "CREATE TABLE User",
            "CREATE TABLE ProcessingElement",
            "CREATE TABLE Workflow",
            "CREATE TABLE WorkflowPe",
            "CREATE TABLE Execution",
            "CREATE TABLE Response",
        ] {
            assert!(ddl.contains(table), "missing {table}");
        }
        assert!(ddl.contains("spt_embedding"), "Fig. 6's sptEmbedding column");
        assert!(ddl.matches("LONGTEXT").count() >= 8, "CLOB columns");
        assert!(ddl.matches("FOREIGN KEY").count() >= 6, "FK integrity");
        assert!(ddl.matches("INDEX").count() >= 8, "indexes for performance");
    }
}
