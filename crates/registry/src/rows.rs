//! Row types for the Fig. 6 schema.
//!
//! `code`, `description_embedding` and `spt_embedding` are CLOB-style
//! columns: unbounded `String`s (the paper's §IV-D change from bounded
//! VARCHAR to character large objects).

use serde::{Deserialize, Serialize};

/// `User` table (Table II): one row per registered user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserRow {
    pub id: u64,
    pub username: String,
    /// Salted hash — see `store::hash_password`. NOT cryptographic; a
    /// stand-in for the paper's server-side auth.
    pub password_hash: u64,
    /// Monotonic registration sequence number (stands in for created_at).
    pub created_seq: u64,
}

/// `ProcessingElement` table: reusable components, possibly shared by many
/// workflows (many-to-many through `WorkflowPe`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeRow {
    pub id: u64,
    pub user_id: u64,
    pub name: String,
    pub description: String,
    /// Full Python source (CLOB).
    pub code: String,
    /// UniXcoder-style description embedding, JSON (CLOB).
    pub description_embedding: String,
    /// Aroma SPT feature embedding, JSON (CLOB) — Fig. 6's `sptEmbedding`.
    pub spt_embedding: String,
}

/// `Workflow` table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowRow {
    pub id: u64,
    pub user_id: u64,
    pub name: String,
    pub description: String,
    pub code: String,
    pub description_embedding: String,
    pub spt_embedding: String,
    /// Member PEs in graph order (the `WorkflowPe` association rows).
    pub pe_ids: Vec<u64>,
}

/// Execution lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionStatus {
    Submitted,
    Running,
    Completed,
    Failed,
}

/// `Execution` table: one row per workflow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRow {
    pub id: u64,
    pub workflow_id: u64,
    pub user_id: u64,
    /// Mapping name: "simple" | "multi" | "dynamic".
    pub mapping: String,
    /// Run input rendered as text (iterations or data list).
    pub input: String,
    pub status: ExecutionStatus,
    pub submitted_seq: u64,
}

/// `Response` table: captured output of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseRow {
    pub id: u64,
    pub execution_id: u64,
    /// Captured output stream (CLOB).
    pub output: String,
    pub status: ExecutionStatus,
}

/// Insertion payload for a PE.
#[derive(Debug, Clone)]
pub struct NewPe {
    pub user_id: u64,
    pub name: String,
    pub description: String,
    pub code: String,
    pub description_embedding: String,
    pub spt_embedding: String,
}

/// Insertion payload for a workflow.
#[derive(Debug, Clone)]
pub struct NewWorkflow {
    pub user_id: u64,
    pub name: String,
    pub description: String,
    pub code: String,
    pub description_embedding: String,
    pub spt_embedding: String,
    pub pe_ids: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serde_roundtrip() {
        let pe = PeRow {
            id: 1,
            user_id: 2,
            name: "IsPrime".into(),
            description: "d".into(),
            code: "class IsPrime: pass".into(),
            description_embedding: "[]".into(),
            spt_embedding: "[]".into(),
        };
        let json = serde_json::to_string(&pe).unwrap();
        assert_eq!(serde_json::from_str::<PeRow>(&json).unwrap(), pe);

        let ex = ExecutionRow {
            id: 1,
            workflow_id: 2,
            user_id: 3,
            mapping: "multi".into(),
            input: "10".into(),
            status: ExecutionStatus::Running,
            submitted_seq: 4,
        };
        let json = serde_json::to_string(&ex).unwrap();
        assert_eq!(serde_json::from_str::<ExecutionRow>(&json).unwrap(), ex);
    }

    #[test]
    fn clob_columns_hold_large_text() {
        // The §IV-D motivation: code larger than a VARCHAR limit.
        let big = "x = 1\n".repeat(100_000);
        let pe = PeRow {
            id: 1,
            user_id: 1,
            name: "Big".into(),
            description: String::new(),
            code: big.clone(),
            description_embedding: String::new(),
            spt_embedding: String::new(),
        };
        assert_eq!(pe.code.len(), big.len());
    }
}
