//! The registry write-ahead log.
//!
//! An append-only file of typed mutation records. Every registry write
//! appends its record here **before** the in-memory mutation is applied,
//! so an acknowledged mutation is always recoverable after a crash.
//!
//! # On-disk format
//!
//! Each record is one frame:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE over payload] [payload: `len` bytes of JSON]
//! ```
//!
//! The payload is the serde-JSON encoding of a [`WalRecord`] (a JSON
//! object) or, for a group-commit frame, of a `Vec<WalRecord>` (a JSON
//! array) — the two are distinguished by the payload's first byte, so the
//! formats coexist in one log. Frames are written with a single
//! `write_all`, so on most filesystems a crash leaves at worst one torn
//! frame at the tail.
//!
//! # Group commit
//!
//! [`Wal::append_batch`] packs N records into **one** frame: one
//! `write_all`, one fsync under [`SyncPolicy::EveryAppend`]. Because the
//! CRC covers the whole payload, the frame is the atomicity unit — a
//! batch replays all-or-nothing under the torn-tail rule below.
//!
//! # Torn-tail contract
//!
//! [`replay`] scans frames from the start and stops at the first
//! incomplete header, over-long length, checksum mismatch, or undecodable
//! payload. Everything before that point is returned; everything from it
//! on is reported as a torn tail (`Replay::valid_bytes` marks the cut).
//! The caller truncates the file there and continues — a crash mid-append
//! therefore loses only the unacknowledged record being written, never a
//! previously acknowledged one.
//!
//! # Self-healing tail
//!
//! A *failed* append (ENOSPC mid-frame, a short write, a failed fsync)
//! can leave torn bytes after the last acknowledged frame while the
//! process keeps running. Before the fix in this module, a later
//! successful append would land **after** those torn bytes and the
//! torn-tail rule above would discard it (and everything after it) at
//! replay — a single transient IO error permanently poisoned the log.
//! [`Wal::append`]/[`Wal::append_batch`] now roll the tail back on any
//! failure: seek to the last acknowledged frame boundary and truncate
//! the file there, so a retry appends onto a clean tail. If even the
//! rollback fails the log marks itself unhealthy and refuses appends
//! until [`Wal::heal`] succeeds.
//!
//! # Fault injection
//!
//! Every IO site here consults an optional [`crate::iofault::IoFaultHook`]
//! immediately before the real syscall (see [`Wal::set_fault_hook`] and
//! [`write_atomic_hooked`]), which is how the storage chaos suite drives
//! deterministic ENOSPC/short-write/fsync failures through the exact
//! production code paths.

use crate::iofault::{FaultHook, Induced, IoSite};
use crate::rows::{ExecutionRow, ExecutionStatus, PeRow, ResponseRow, UserRow, WorkflowRow};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one record's payload (a defence against interpreting a
/// corrupt length prefix as a multi-gigabyte allocation). CLOB columns are
/// unbounded in the schema, but a single mutation beyond this is a bug.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// One typed registry mutation. Records carry the *resulting* rows
/// (ids already assigned), so replay is a pure, validation-free apply —
/// the write path validated before appending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    AddUser(UserRow),
    AddPe(PeRow),
    UpdatePeDescription {
        id: u64,
        description: String,
        description_embedding: String,
    },
    RemovePe {
        id: u64,
    },
    AddWorkflow(WorkflowRow),
    UpdateWorkflowDescription {
        id: u64,
        description: String,
        description_embedding: String,
    },
    RemoveWorkflow {
        id: u64,
    },
    /// `remove_All` (Table I): clears PEs and workflows.
    RemoveAll,
    AddExecution(ExecutionRow),
    SetExecutionStatus {
        id: u64,
        status: ExecutionStatus,
    },
    AddResponse(ResponseRow),
}

/// One WAL entry: the registry's mutation sequence number plus the op.
/// `seq` is strictly increasing across the log (every mutation advances
/// it), which makes it the recovery ordering cursor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    pub seq: u64,
    pub op: WalOp,
}

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Leave flushing to the OS page cache: fastest, survives process
    /// crashes but not power loss.
    #[default]
    OsBuffered,
    /// `fsync` after every append: survives power loss at the cost of one
    /// disk round-trip per mutation.
    EveryAppend,
}

/// Outcome of replaying a WAL file.
#[derive(Debug, Default)]
pub struct Replay {
    /// Records decoded, in log order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last intact frame.
    pub valid_bytes: u64,
    /// True when bytes after `valid_bytes` had to be discarded (torn or
    /// corrupt tail).
    pub torn: bool,
}

// ---- CRC-32 (IEEE), table-driven, no external dependency ----------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb88320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---- atomic file replacement --------------------------------------------

/// Sibling `<name>.tmp` path used for atomic replacement.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-safe file replacement: write `bytes` to `<path>.tmp`, fsync it,
/// rename over `path`, then fsync the parent directory so the rename
/// itself is durable. A crash at any point leaves either the old intact
/// file or the new intact file — never a torn one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    write_atomic_hooked(path, bytes, None)
}

/// [`write_atomic`] with an optional fault hook consulted at each of its
/// three IO sites (`SnapshotWrite`, `SnapshotFsync`, `SnapshotRename`).
/// On an injected failure the tmp file is removed (or left torn for a
/// short write — the next open discards leftover tmps either way) and
/// the target file is untouched.
pub fn write_atomic_hooked(
    path: &Path,
    bytes: &[u8],
    fault: Option<&FaultHook>,
) -> std::io::Result<()> {
    let induce = |site: IoSite, len: usize| fault.and_then(|h| h.induce(site, len));
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        match induce(IoSite::SnapshotWrite, bytes.len()) {
            None => f.write_all(bytes)?,
            Some(Induced::Short { written, error }) => {
                // The torn prefix really lands in the tmp file.
                let _ = f.write_all(&bytes[..written.min(bytes.len())]);
                return Err(error);
            }
            Some(Induced::Error(e)) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        }
        match induce(IoSite::SnapshotFsync, 0) {
            None => f.sync_all()?,
            Some(i) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(i.into_error());
            }
        }
    }
    match induce(IoSite::SnapshotRename, 0) {
        None => std::fs::rename(&tmp, path)?,
        Some(i) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(i.into_error());
        }
    }
    if let Some(parent) = path.parent() {
        // Directory fsync is best-effort: not every platform/filesystem
        // supports opening a directory for sync.
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---- the log -------------------------------------------------------------

/// An open write-ahead log, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    sync: SyncPolicy,
    /// Records currently in the file (replayed count + appends since).
    records: u64,
    /// Bytes currently in the file.
    bytes: u64,
    /// Optional fault hook consulted before every IO (test/chaos only).
    fault: Option<FaultHook>,
    /// Set when a failed append could not roll the tail back; appends
    /// refuse until [`Wal::heal`] succeeds.
    poisoned: bool,
}

impl Wal {
    /// Open (creating if absent) for appending, with `records`/`bytes`
    /// primed from a prior [`replay`] of the same file.
    pub fn open(
        path: &Path,
        sync: SyncPolicy,
        records: u64,
        bytes: u64,
    ) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new().create(true).read(true).write(true).open(path)?;
        file.seek(SeekFrom::Start(bytes))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            sync,
            records,
            bytes,
            fault: None,
            poisoned: false,
        })
    }

    /// Install a fault hook, consulted before every append/fsync/truncate.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault = Some(hook);
    }

    fn induce(&self, site: IoSite, len: usize) -> Option<Induced> {
        self.fault.as_ref().and_then(|h| h.induce(site, len))
    }

    /// Encode one frame: `[len][crc][payload]`.
    fn frame(payload: &[u8]) -> Vec<u8> {
        debug_assert!(payload.len() as u64 <= MAX_RECORD_BYTES as u64);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        frame
    }

    /// Write one frame at the tail, rolling the tail back to the last
    /// acknowledged boundary on any failure (the self-healing tail — see
    /// the module doc). Counters advance only on full success.
    fn append_frame(&mut self, frame: &[u8], recs: u64, site: IoSite) -> std::io::Result<(u64, bool)> {
        self.heal()?;
        let written = match self.induce(site, frame.len()) {
            None => self.file.write_all(frame),
            Some(Induced::Short { written, error }) => {
                // The torn prefix really lands on disk, exactly like a
                // device error mid-write.
                let _ = self.file.write_all(&frame[..written.min(frame.len())]);
                Err(error)
            }
            Some(Induced::Error(e)) => Err(e),
        };
        if let Err(e) = written {
            self.rewind_tail();
            return Err(e);
        }
        let synced = matches!(self.sync, SyncPolicy::EveryAppend);
        if synced {
            let sync = match self.induce(IoSite::WalFsync, 0) {
                None => self.file.sync_data(),
                Some(i) => Err(i.into_error()),
            };
            if let Err(e) = sync {
                // The frame reached the page cache but durability is
                // unknown; discard it so an unacknowledged record can
                // never replay.
                self.rewind_tail();
                return Err(e);
            }
        }
        self.records += recs;
        self.bytes += frame.len() as u64;
        Ok((frame.len() as u64, synced))
    }

    /// Roll the file back to the last acknowledged frame boundary. On
    /// failure the log is poisoned until [`Wal::heal`] succeeds.
    fn rewind_tail(&mut self) {
        let ok = self.file.set_len(self.bytes).is_ok()
            && self.file.seek(SeekFrom::Start(self.bytes)).is_ok();
        self.poisoned = !ok;
    }

    /// Retry the tail rollback of a poisoned log; a no-op when healthy.
    pub fn heal(&mut self) -> std::io::Result<()> {
        if !self.poisoned {
            return Ok(());
        }
        self.file.set_len(self.bytes)?;
        self.file.seek(SeekFrom::Start(self.bytes))?;
        self.poisoned = false;
        Ok(())
    }

    /// False while a failed rollback keeps the log refusing appends.
    pub fn healthy(&self) -> bool {
        !self.poisoned
    }

    /// Append one record. Returns `(frame bytes written, fsynced)`. The
    /// record is durable (per the sync policy) when this returns; on
    /// error the file tail is rolled back to the last acknowledged frame.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<(u64, bool)> {
        let payload = serde_json::to_vec(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let frame = Self::frame(&payload);
        self.append_frame(&frame, 1, IoSite::WalAppend)
    }

    /// Group-commit: append `recs` as **one** multi-op frame — a single
    /// `write_all` and (under [`SyncPolicy::EveryAppend`]) a single
    /// fsync, regardless of batch size. Returns `(frame bytes written,
    /// fsynced)`. The payload is a JSON array, which [`replay`] decodes
    /// back into the individual records; the CRC makes the whole batch
    /// atomic (all-or-nothing on a torn tail). Appending an empty batch
    /// is a no-op.
    pub fn append_batch(&mut self, recs: &[WalRecord]) -> std::io::Result<(u64, bool)> {
        if recs.is_empty() {
            return Ok((0, false));
        }
        let payload = serde_json::to_vec(recs)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let frame = Self::frame(&payload);
        self.append_frame(&frame, recs.len() as u64, IoSite::WalBatchAppend)
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Truncate the log to empty (after a successful snapshot has made
    /// its contents redundant). Durable before returning.
    pub fn reset(&mut self) -> std::io::Result<()> {
        if let Some(i) = self.induce(IoSite::WalTruncate, 0) {
            return Err(i.into_error());
        }
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.records = 0;
        self.bytes = 0;
        self.poisoned = false;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Replay a WAL file, tolerating a torn tail (see the module doc). A
/// missing file replays as empty. The file itself is not modified; the
/// caller decides whether to truncate at `valid_bytes`.
pub fn replay(path: &Path) -> std::io::Result<Replay> {
    let buf = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    };
    let mut out = Replay::default();
    let mut pos = 0usize;
    loop {
        let Some(header) = buf.get(pos..pos + 8) else {
            // Incomplete header (or clean EOF at pos == len).
            out.torn = pos < buf.len();
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as u64 > MAX_RECORD_BYTES as u64 {
            out.torn = true;
            break;
        }
        let Some(payload) = buf.get(pos + 8..pos + 8 + len) else {
            out.torn = true; // torn payload
            break;
        };
        if crc32(payload) != crc {
            out.torn = true;
            break;
        }
        // A single-op frame is a JSON object; a group-commit frame is a
        // JSON array of records (see the module doc).
        match serde_json::from_slice::<WalRecord>(payload) {
            Ok(rec) => out.records.push(rec),
            Err(_) => {
                let Ok(batch) = serde_json::from_slice::<Vec<WalRecord>>(payload) else {
                    out.torn = true;
                    break;
                };
                out.records.extend(batch);
            }
        }
        pos += 8 + len;
        out.valid_bytes = pos as u64;
    }
    Ok(out)
}

/// Truncate `path` to `valid_bytes`, discarding a torn tail in place.
pub fn truncate_to(path: &Path, valid_bytes: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(valid_bytes)?;
    f.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::AddUser(UserRow {
                id: seq,
                username: format!("user{seq}"),
                password_hash: 0xdead_beef ^ seq,
                created_seq: seq,
            }),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laminar-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        for s in 1..=5 {
            wal.append(&rec(s)).unwrap();
        }
        assert_eq!(wal.records(), 5);
        drop(wal);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn);
        assert_eq!(rep.records.len(), 5);
        assert_eq!(rep.records[4], rec(5));
        assert_eq!(rep.valid_bytes, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let rep = replay(Path::new("/nonexistent/wal.log")).unwrap();
        assert!(rep.records.is_empty());
        assert!(!rep.torn);
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        let first_len = wal.bytes();
        wal.append(&rec(2)).unwrap();
        let full_len = wal.bytes();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cut the second frame at every byte boundary: the first record
        // must always survive, the second never partially.
        for cut in first_len..full_len {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let rep = replay(&path).unwrap();
            assert_eq!(rep.records.len(), 1, "cut at {cut}");
            assert_eq!(rep.valid_bytes, first_len);
            assert_eq!(rep.torn, cut != first_len, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payload_byte_truncates_there() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        let first_len = wal.bytes() as usize;
        wal.append(&rec(2)).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[first_len + 12] ^= 0xff; // flip a byte inside the second payload
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert!(rep.torn);
        assert_eq!(rep.records.len(), 1);
        // Truncating at valid_bytes then reopening appends cleanly.
        truncate_to(&path, rep.valid_bytes).unwrap();
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 1, rep.valid_bytes).unwrap();
        wal.append(&rec(3)).unwrap();
        drop(wal);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn);
        assert_eq!(
            rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absurd_length_prefix_is_rejected_not_allocated() {
        let dir = tmp_dir("length");
        let path = dir.join("wal.log");
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(b"junk");
        std::fs::write(&path, &frame).unwrap();
        let rep = replay(&path).unwrap();
        assert!(rep.torn);
        assert!(rep.records.is_empty());
        assert_eq!(rep.valid_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmp_dir("reset");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::EveryAppend, 0, 0).unwrap();
        let (_, synced) = wal.append(&rec(1)).unwrap();
        assert!(synced, "EveryAppend fsyncs");
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), 0);
        wal.append(&rec(2)).unwrap();
        drop(wal);
        let rep = replay(&path).unwrap();
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.records[0].seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_frame_roundtrips_with_one_fsync() {
        let dir = tmp_dir("batch");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::EveryAppend, 0, 0).unwrap();
        let recs: Vec<WalRecord> = (1..=4).map(rec).collect();
        let (bytes, synced) = wal.append_batch(&recs).unwrap();
        assert!(bytes > 0);
        assert!(synced, "one fsync for the whole batch");
        assert_eq!(wal.records(), 4);
        drop(wal);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn);
        assert_eq!(rep.records, recs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = tmp_dir("batch-empty");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::EveryAppend, 0, 0).unwrap();
        let (bytes, synced) = wal.append_batch(&[]).unwrap();
        assert_eq!((bytes, synced), (0, false));
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_single_and_batch_frames_replay_in_order() {
        let dir = tmp_dir("batch-mixed");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.append_batch(&[rec(2), rec(3)]).unwrap();
        wal.append(&rec(4)).unwrap();
        wal.append_batch(&[rec(5)]).unwrap();
        assert_eq!(wal.records(), 5);
        drop(wal);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn);
        assert_eq!(
            rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_batch_frame_is_all_or_nothing_at_every_cut() {
        let dir = tmp_dir("batch-torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        let first_len = wal.bytes();
        wal.append_batch(&[rec(2), rec(3), rec(4)]).unwrap();
        let full_len = wal.bytes();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cut the batch frame at every byte boundary: the single record
        // always survives, and no batch member ever replays partially —
        // either all three or none.
        for cut in first_len..full_len {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let rep = replay(&path).unwrap();
            assert_eq!(rep.records.len(), 1, "cut at {cut}: batch must vanish whole");
            assert_eq!(rep.valid_bytes, first_len);
        }
        // The intact file replays all four.
        std::fs::write(&path, &full).unwrap();
        let rep = replay(&path).unwrap();
        assert_eq!(rep.records.len(), 4);
        assert!(!rep.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_batch_payload_drops_whole_batch() {
        let dir = tmp_dir("batch-corrupt");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        let first_len = wal.bytes() as usize;
        wal.append_batch(&[rec(2), rec(3)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[first_len + 12] ^= 0xff; // flip a byte inside the batch payload
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert!(rep.torn);
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.valid_bytes, first_len as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_and_cleans_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("snapshot.json");
        std::fs::write(&path, b"old").unwrap();
        write_atomic(&path, b"new contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        assert!(!tmp_path(&path).exists(), "tmp renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_append_heals_tail_at_every_cut_byte() {
        use crate::iofault::{FaultKind, FaultSpec, IoFaultInjector};
        // Regression for the torn-tail poisoning bug: a short write that
        // leaves N bytes of a failed frame on disk, followed by a
        // successful append, used to bury the new frame behind torn
        // bytes — replay then discarded it. With the self-healing tail
        // the retry must land on a clean boundary for EVERY cut point.
        let probe_frame_len = {
            let dir = tmp_dir("heal-probe");
            let path = dir.join("wal.log");
            let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
            wal.append(&rec(2)).unwrap();
            let len = wal.bytes();
            std::fs::remove_dir_all(&dir).ok();
            len as usize
        };
        for cut in 0..=probe_frame_len {
            let dir = tmp_dir(&format!("heal-{cut}"));
            let path = dir.join("wal.log");
            let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
            wal.append(&rec(1)).unwrap();
            let acknowledged = wal.bytes();
            let inj = IoFaultInjector::new(
                1,
                FaultSpec {
                    sites: vec![IoSite::WalAppend],
                    mode: crate::iofault::FaultMode::Nth(1),
                    kind: FaultKind::ShortWrite,
                    short_cut: Some(cut),
                },
            );
            wal.set_fault_hook(inj);
            assert!(wal.append(&rec(2)).is_err(), "cut at {cut}");
            assert!(wal.healthy(), "tail rollback must succeed: cut {cut}");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                acknowledged,
                "torn bytes truncated at cut {cut}"
            );
            // The retry (the Nth fault fired once) succeeds and replays.
            wal.append(&rec(3)).unwrap();
            drop(wal);
            let rep = replay(&path).unwrap();
            assert!(!rep.torn, "cut at {cut}");
            assert_eq!(
                rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
                vec![1, 3],
                "cut at {cut}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn failed_fsync_discards_the_unacknowledged_frame() {
        use crate::iofault::{FaultKind, FaultSpec, IoFaultInjector};
        let dir = tmp_dir("fsync-fault");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::EveryAppend, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        let acknowledged = wal.bytes();
        wal.set_fault_hook(IoFaultInjector::new(
            3,
            FaultSpec::nth_at(IoSite::WalFsync, 1, FaultKind::FsyncError),
        ));
        // The frame write succeeds; the fsync fails — the frame must not
        // survive, because the caller never acknowledged it.
        assert!(wal.append(&rec(2)).is_err());
        assert_eq!(wal.records(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), acknowledged);
        wal.append(&rec(3)).unwrap();
        drop(wal);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn);
        assert_eq!(
            rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_append_fault_is_all_or_nothing() {
        use crate::iofault::{FaultKind, FaultSpec, IoFaultInjector};
        let dir = tmp_dir("batch-fault");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.set_fault_hook(IoFaultInjector::new(
            9,
            FaultSpec::nth_at(IoSite::WalBatchAppend, 1, FaultKind::Enospc),
        ));
        assert!(wal.append_batch(&[rec(2), rec(3)]).is_err());
        assert_eq!(wal.records(), 1, "no batch member counted");
        // Retry succeeds (Nth fired) and the whole batch lands.
        wal.append_batch(&[rec(2), rec(3)]).unwrap();
        drop(wal);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn);
        assert_eq!(
            rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hooked_write_atomic_fails_sites_without_corrupting_target() {
        use crate::iofault::{FaultHook, FaultKind, FaultSpec, IoFaultInjector};
        let dir = tmp_dir("atomic-fault");
        let path = dir.join("snapshot.json");
        std::fs::write(&path, b"old").unwrap();
        for (site, kind) in [
            (IoSite::SnapshotWrite, FaultKind::Enospc),
            (IoSite::SnapshotWrite, FaultKind::ShortWrite),
            (IoSite::SnapshotFsync, FaultKind::FsyncError),
            (IoSite::SnapshotRename, FaultKind::Enospc),
        ] {
            let hook: FaultHook = IoFaultInjector::new(11, FaultSpec::nth_at(site, 1, kind));
            let err = write_atomic_hooked(&path, b"new contents", Some(&hook)).unwrap_err();
            assert!(err.to_string().contains("injected"), "{site:?}: {err}");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                b"old",
                "{site:?} must leave the target intact"
            );
        }
        // With the faults exhausted the same hook lets the write through.
        let hook: FaultHook = IoFaultInjector::new(
            11,
            FaultSpec::nth_at(IoSite::SnapshotWrite, 99, FaultKind::Enospc),
        );
        write_atomic_hooked(&path, b"new contents", Some(&hook)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_fault_leaves_log_intact() {
        use crate::iofault::{FaultKind, FaultSpec, IoFaultInjector};
        let dir = tmp_dir("reset-fault");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.set_fault_hook(IoFaultInjector::new(
            2,
            FaultSpec::nth_at(IoSite::WalTruncate, 1, FaultKind::Enospc),
        ));
        assert!(wal.reset().is_err());
        assert_eq!(wal.records(), 1, "failed reset keeps the log");
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_ops_roundtrip_through_frames() {
        let ops = vec![
            WalOp::RemovePe { id: 3 },
            WalOp::RemoveWorkflow { id: 4 },
            WalOp::RemoveAll,
            WalOp::SetExecutionStatus {
                id: 9,
                status: ExecutionStatus::Completed,
            },
            WalOp::UpdatePeDescription {
                id: 1,
                description: "d".into(),
                description_embedding: "[0.5]".into(),
            },
        ];
        let dir = tmp_dir("ops");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, SyncPolicy::OsBuffered, 0, 0).unwrap();
        for (i, op) in ops.iter().enumerate() {
            wal.append(&WalRecord {
                seq: i as u64 + 1,
                op: op.clone(),
            })
            .unwrap();
        }
        drop(wal);
        let rep = replay(&path).unwrap();
        assert_eq!(rep.records.len(), ops.len());
        for (r, op) in rep.records.iter().zip(&ops) {
            assert_eq!(&r.op, op);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
