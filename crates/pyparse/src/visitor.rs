//! Pre-order tree traversal with enter/leave callbacks.
//!
//! The SPT builder and the description generator both need depth-aware
//! walks; this tiny visitor keeps that logic in one place.

use crate::token::Token;
use crate::tree::{NodeId, NodeKind, ParseTree, SyntaxKind};

/// Callbacks for [`walk`]. All methods have empty defaults, so visitors
/// implement only what they need.
pub trait Visit {
    /// Called when entering an internal node, before its children.
    fn enter(&mut self, _tree: &ParseTree, _id: NodeId, _kind: SyntaxKind, _depth: usize) {}
    /// Called when leaving an internal node, after its children.
    fn leave(&mut self, _tree: &ParseTree, _id: NodeId, _kind: SyntaxKind, _depth: usize) {}
    /// Called for each leaf token.
    fn token(&mut self, _tree: &ParseTree, _id: NodeId, _tok: &Token, _depth: usize) {}
}

/// Depth-first pre-order walk from `start` (use `tree.root` for the whole
/// tree). Iterative, so pathological deep trees cannot overflow the stack.
pub fn walk<V: Visit>(tree: &ParseTree, start: NodeId, v: &mut V) {
    enum Step {
        Enter(NodeId, usize),
        Leave(NodeId, usize),
    }
    let mut stack = vec![Step::Enter(start, 0)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(id, depth) => match &tree.node(id).kind {
                NodeKind::Leaf(tok) => v.token(tree, id, tok, depth),
                NodeKind::Internal(kind) => {
                    v.enter(tree, id, *kind, depth);
                    stack.push(Step::Leave(id, depth));
                    for &c in tree.node(id).children.iter().rev() {
                        stack.push(Step::Enter(c, depth + 1));
                    }
                }
            },
            Step::Leave(id, depth) => {
                if let NodeKind::Internal(kind) = &tree.node(id).kind {
                    v.leave(tree, id, *kind, depth);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl Visit for Recorder {
        fn enter(&mut self, _t: &ParseTree, _id: NodeId, kind: SyntaxKind, depth: usize) {
            self.events.push(format!("enter {} @{depth}", kind.name()));
        }
        fn leave(&mut self, _t: &ParseTree, _id: NodeId, kind: SyntaxKind, depth: usize) {
            self.events.push(format!("leave {} @{depth}", kind.name()));
        }
        fn token(&mut self, _t: &ParseTree, _id: NodeId, tok: &Token, _depth: usize) {
            self.events.push(format!("tok {tok}"));
        }
    }

    #[test]
    fn enter_leave_balance() {
        let t = parse("def f():\n    return 1\n");
        let mut r = Recorder::default();
        walk(&t, t.root.unwrap(), &mut r);
        let enters = r.events.iter().filter(|e| e.starts_with("enter")).count();
        let leaves = r.events.iter().filter(|e| e.starts_with("leave")).count();
        assert_eq!(enters, leaves);
        assert_eq!(r.events.first().unwrap(), "enter module @0");
        assert_eq!(r.events.last().unwrap(), "leave module @0");
    }

    #[test]
    fn tokens_in_source_order() {
        let t = parse("x = 1 + 2\n");
        let mut r = Recorder::default();
        walk(&t, t.root.unwrap(), &mut r);
        let toks: Vec<_> = r
            .events
            .iter()
            .filter(|e| e.starts_with("tok"))
            .cloned()
            .collect();
        assert_eq!(toks, vec!["tok x", "tok =", "tok 1", "tok +", "tok 2"]);
    }

    #[test]
    fn deep_tree_does_not_overflow() {
        // 1000 nested unary minuses — recursion in the *parser* is bounded
        // by this too, but the walker must be iterative regardless.
        let src = format!("x = {}1\n", "-".repeat(1000));
        let t = parse(&src);
        let mut r = Recorder::default();
        walk(&t, t.root.unwrap(), &mut r);
        assert!(r.events.len() > 2000);
    }
}
