//! Concrete parse trees.
//!
//! The tree is stored as an arena of nodes indexed by [`NodeId`]; children
//! are stored in order. Leaves carry their original [`Token`]s (keywords and
//! punctuation included) because Aroma's SPT labels are built from exactly
//! those leaves (paper §II-E, Fig. 2).

use crate::token::{TokKind, Token};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in its [`ParseTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Grammar production of an internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SyntaxKind {
    Module,
    // Compound statements
    ClassDef,
    FuncDef,
    Decorator,
    Parameters,
    Param,
    Block,
    IfStmt,
    ElifClause,
    ElseClause,
    WhileStmt,
    ForStmt,
    TryStmt,
    ExceptClause,
    FinallyClause,
    WithStmt,
    WithItem,
    // Simple statements
    ExprStmt,
    Assign,
    AugAssign,
    AnnAssign,
    ReturnStmt,
    PassStmt,
    BreakStmt,
    ContinueStmt,
    ImportStmt,
    ImportFromStmt,
    ImportAlias,
    GlobalStmt,
    NonlocalStmt,
    AssertStmt,
    RaiseStmt,
    DelStmt,
    YieldStmt,
    // Expressions
    Ternary,
    BoolOp,
    NotOp,
    Compare,
    BinOp,
    UnaryOp,
    Power,
    AwaitExpr,
    Call,
    Arguments,
    Argument,
    KeywordArgument,
    StarArgument,
    Attribute,
    Subscript,
    Slice,
    Lambda,
    TupleExpr,
    ListExpr,
    DictExpr,
    SetExpr,
    DictItem,
    Comprehension,
    CompFor,
    CompIf,
    Starred,
    WalrusExpr,
    YieldExpr,
    ParenExpr,
    /// Placeholder emitted when error recovery skipped tokens.
    ErrorNode,
}

impl SyntaxKind {
    /// Human-readable production name (used in tree dumps and SPT debugging).
    pub fn name(self) -> &'static str {
        use SyntaxKind::*;
        match self {
            Module => "module",
            ClassDef => "classdef",
            FuncDef => "funcdef",
            Decorator => "decorator",
            Parameters => "parameters",
            Param => "param",
            Block => "block",
            IfStmt => "if_stmt",
            ElifClause => "elif_clause",
            ElseClause => "else_clause",
            WhileStmt => "while_stmt",
            ForStmt => "for_stmt",
            TryStmt => "try_stmt",
            ExceptClause => "except_clause",
            FinallyClause => "finally_clause",
            WithStmt => "with_stmt",
            WithItem => "with_item",
            ExprStmt => "expr_stmt",
            Assign => "assign",
            AugAssign => "aug_assign",
            AnnAssign => "ann_assign",
            ReturnStmt => "return_stmt",
            PassStmt => "pass_stmt",
            BreakStmt => "break_stmt",
            ContinueStmt => "continue_stmt",
            ImportStmt => "import_stmt",
            ImportFromStmt => "import_from_stmt",
            ImportAlias => "import_alias",
            GlobalStmt => "global_stmt",
            NonlocalStmt => "nonlocal_stmt",
            AssertStmt => "assert_stmt",
            RaiseStmt => "raise_stmt",
            DelStmt => "del_stmt",
            YieldStmt => "yield_stmt",
            Ternary => "ternary",
            BoolOp => "bool_op",
            NotOp => "not_op",
            Compare => "compare",
            BinOp => "bin_op",
            UnaryOp => "unary_op",
            Power => "power",
            AwaitExpr => "await_expr",
            Call => "call",
            Arguments => "arguments",
            Argument => "argument",
            KeywordArgument => "keyword_argument",
            StarArgument => "star_argument",
            Attribute => "attribute",
            Subscript => "subscript",
            Slice => "slice",
            Lambda => "lambda",
            TupleExpr => "tuple",
            ListExpr => "list",
            DictExpr => "dict",
            SetExpr => "set",
            DictItem => "dict_item",
            Comprehension => "comprehension",
            CompFor => "comp_for",
            CompIf => "comp_if",
            Starred => "starred",
            WalrusExpr => "walrus",
            YieldExpr => "yield_expr",
            ParenExpr => "paren_expr",
            ErrorNode => "error",
        }
    }
}

/// Node payload: an internal grammar production or a token leaf.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    Internal(SyntaxKind),
    Leaf(Token),
}

/// One arena slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub kind: NodeKind,
    pub children: Vec<NodeId>,
    /// Parent node, `None` for the root. Filled in by the parser.
    pub parent: Option<NodeId>,
}

/// A parsed module (or expression) with its diagnostics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParseTree {
    pub nodes: Vec<Node>,
    /// Root node id; `None` only for the empty tree.
    pub root: Option<NodeId>,
    /// Parser diagnostics (recoverable).
    pub errors: Vec<String>,
}

impl ParseTree {
    pub fn new() -> Self {
        ParseTree::default()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn push(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            children: Vec::new(),
            parent: None,
        });
        id
    }

    pub fn add_child(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[parent.index()].children.push(child);
        self.nodes[child.index()].parent = Some(parent);
    }

    /// Kind of an internal node, `None` for leaves.
    pub fn kind(&self, id: NodeId) -> Option<SyntaxKind> {
        match self.node(id).kind {
            NodeKind::Internal(k) => Some(k),
            NodeKind::Leaf(_) => None,
        }
    }

    /// Token of a leaf node, `None` for internal nodes.
    pub fn leaf(&self, id: NodeId) -> Option<&Token> {
        match &self.node(id).kind {
            NodeKind::Leaf(t) => Some(t),
            NodeKind::Internal(_) => None,
        }
    }

    /// All nodes of the given kind, in pre-order.
    pub fn find_kind(&self, kind: SyntaxKind) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.preorder_collect(root, kind, &mut out);
        }
        out
    }

    fn preorder_collect(&self, id: NodeId, kind: SyntaxKind, out: &mut Vec<NodeId>) {
        if self.kind(id) == Some(kind) {
            out.push(id);
        }
        for &c in &self.node(id).children {
            self.preorder_collect(c, kind, out);
        }
    }

    /// All leaf tokens under `id`, in source order.
    pub fn leaves_under(&self, id: NodeId) -> Vec<&Token> {
        let mut out = Vec::new();
        self.collect_leaves(id, &mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, id: NodeId, out: &mut Vec<&'a Token>) {
        match &self.node(id).kind {
            NodeKind::Leaf(t) => out.push(t),
            NodeKind::Internal(_) => {
                for &c in &self.node(id).children {
                    self.collect_leaves(c, out);
                }
            }
        }
    }

    /// Reconstruct (approximately) the source text of a subtree: tokens
    /// joined by single spaces. Good enough for display and for feeding
    /// recommendations back through the parser.
    pub fn text_of(&self, id: NodeId) -> String {
        let leaves = self.leaves_under(id);
        let mut s = String::new();
        for t in leaves {
            if t.kind.is_synthetic() {
                continue;
            }
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&t.text);
        }
        s
    }

    /// Number of nodes (internal + leaf) in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        1 + self
            .node(id)
            .children
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// Depth of the deepest leaf (root = 1). Empty tree → 0.
    pub fn depth(&self) -> usize {
        fn go(t: &ParseTree, id: NodeId) -> usize {
            1 + t
                .node(id)
                .children
                .iter()
                .map(|&c| go(t, c))
                .max()
                .unwrap_or(0)
        }
        self.root.map(|r| go(self, r)).unwrap_or(0)
    }

    /// The first `FuncDef` whose name is `name`, if any.
    pub fn find_funcdef(&self, name: &str) -> Option<NodeId> {
        self.find_kind(SyntaxKind::FuncDef).into_iter().find(|&f| {
            self.node(f)
                .children
                .iter()
                .filter_map(|&c| self.leaf(c))
                .any(|t| t.kind == TokKind::Name && t.text == name)
        })
    }

    /// Name of a `ClassDef` / `FuncDef` node (the first Name leaf child).
    pub fn def_name(&self, id: NodeId) -> Option<&str> {
        self.node(id)
            .children
            .iter()
            .filter_map(|&c| self.leaf(c))
            .find(|t| t.kind == TokKind::Name)
            .map(|t| t.text.as_str())
    }

    /// Multi-line indented dump, for debugging and golden tests.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        if let Some(r) = self.root {
            self.dump_node(r, 0, &mut s);
        }
        s
    }

    fn dump_node(&self, id: NodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match &self.node(id).kind {
            NodeKind::Internal(k) => {
                out.push_str(k.name());
                out.push('\n');
                for &c in &self.node(id).children {
                    self.dump_node(c, depth + 1, out);
                }
            }
            NodeKind::Leaf(t) => {
                out.push_str(&format!("{t}\n"));
            }
        }
    }

    /// Structural integrity check used by property tests: every child's
    /// parent pointer is correct, the root has no parent, and every node is
    /// reachable from the root exactly once.
    pub fn check_integrity(&self) -> Result<(), String> {
        let Some(root) = self.root else {
            if self.nodes.is_empty() {
                return Ok(());
            }
            return Err("nodes exist but root is None".into());
        };
        if self.node(root).parent.is_some() {
            return Err("root has a parent".into());
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                return Err(format!("node {id:?} reachable twice"));
            }
            seen[id.index()] = true;
            for &c in &self.node(id).children {
                if self.node(c).parent != Some(id) {
                    return Err(format!("child {c:?} has wrong parent"));
                }
                stack.push(c);
            }
        }
        // Unreached nodes are allowed (parser may abandon partial nodes
        // during recovery) but must be a small minority.
        Ok(())
    }
}

impl fmt::Display for ParseTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{TokKind, Token};

    fn leaf(t: &str) -> NodeKind {
        NodeKind::Leaf(Token::new(TokKind::Name, t, 1, 0))
    }

    fn tiny_tree() -> ParseTree {
        let mut t = ParseTree::new();
        let root = t.push(NodeKind::Internal(SyntaxKind::Module));
        t.root = Some(root);
        let stmt = t.push(NodeKind::Internal(SyntaxKind::ExprStmt));
        t.add_child(root, stmt);
        let a = t.push(leaf("a"));
        let b = t.push(leaf("b"));
        t.add_child(stmt, a);
        t.add_child(stmt, b);
        t
    }

    #[test]
    fn arena_linking() {
        let t = tiny_tree();
        assert_eq!(t.nodes.len(), 4);
        assert_eq!(t.kind(t.root.unwrap()), Some(SyntaxKind::Module));
        assert!(t.check_integrity().is_ok());
    }

    #[test]
    fn leaves_and_text() {
        let t = tiny_tree();
        let root = t.root.unwrap();
        assert_eq!(t.leaves_under(root).len(), 2);
        assert_eq!(t.text_of(root), "a b");
    }

    #[test]
    fn subtree_size_and_depth() {
        let t = tiny_tree();
        assert_eq!(t.subtree_size(t.root.unwrap()), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(ParseTree::new().depth(), 0);
    }

    #[test]
    fn find_kind_preorder() {
        let t = tiny_tree();
        assert_eq!(t.find_kind(SyntaxKind::ExprStmt).len(), 1);
        assert_eq!(t.find_kind(SyntaxKind::ClassDef).len(), 0);
    }

    #[test]
    fn integrity_detects_bad_parent() {
        let mut t = tiny_tree();
        // Corrupt a parent pointer.
        t.nodes[2].parent = None;
        assert!(t.check_integrity().is_err());
    }

    #[test]
    fn dump_is_indented() {
        let t = tiny_tree();
        let d = t.dump();
        assert!(d.starts_with("module\n"));
        assert!(d.contains("  expr_stmt\n"));
        assert!(d.contains("    a\n"));
    }

    #[test]
    fn syntax_kind_names_are_unique() {
        use std::collections::HashSet;
        let kinds = [
            SyntaxKind::Module,
            SyntaxKind::ClassDef,
            SyntaxKind::FuncDef,
            SyntaxKind::Block,
            SyntaxKind::IfStmt,
            SyntaxKind::Call,
            SyntaxKind::BinOp,
            SyntaxKind::ErrorNode,
        ];
        let names: HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
