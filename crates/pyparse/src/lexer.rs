//! Error-tolerant lexer for the Python subset.
//!
//! Produces the token stream the parser consumes, including the synthetic
//! `NEWLINE` / `INDENT` / `DEDENT` tokens of Python's layout-sensitive
//! grammar. The lexer never aborts: malformed input (unterminated strings,
//! stray characters, inconsistent dedents) is recorded as a [`LexError`] and
//! lexing continues, because Laminar's structural search must accept
//! incomplete code fragments (paper §VI).

use crate::token::{is_keyword, TokKind, Token};
use std::fmt;

/// A recoverable lexical diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming lexer state. Most callers should use the [`lex`] convenience
/// function, which drives the lexer to EOF and returns the full token list.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Stack of indentation widths; always starts with 0.
    indents: Vec<u32>,
    /// Nesting depth of `(` `[` `{` — newlines inside brackets are implicit
    /// continuations and produce no NEWLINE/INDENT/DEDENT.
    bracket_depth: u32,
    /// True when at the start of a logical line (indentation pending).
    at_line_start: bool,
    /// True once a non-layout token has been emitted on the current logical line.
    line_has_content: bool,
    /// DEDENT tokens still owed when a line dedents several levels at once.
    pending_dedents: u32,
    errors: Vec<LexError>,
}

/// Lex `src` to completion.
///
/// Returns every token including a final `Eof`, plus any recoverable
/// diagnostics. The token stream is always structurally balanced: every
/// `Indent` has a matching `Dedent` before `Eof`.
pub fn lex(src: &str) -> (Vec<Token>, Vec<LexError>) {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let t = lx.next_token();
        let done = t.kind == TokKind::Eof;
        out.push(t);
        if done {
            break;
        }
    }
    (out, lx.errors)
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 0,
            indents: vec![0],
            bracket_depth: 0,
            at_line_start: true,
            line_has_content: false,
            pending_dedents: 0,
            errors: Vec::new(),
        }
    }

    /// Diagnostics accumulated so far.
    pub fn errors(&self) -> &[LexError] {
        &self.errors
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&mut self, message: impl Into<String>) {
        self.errors.push(LexError {
            line: self.line,
            col: self.col,
            message: message.into(),
        });
    }

    /// Produce the next token. After `Eof` is returned, keeps returning `Eof`.
    pub fn next_token(&mut self) -> Token {
        loop {
            if self.pending_dedents > 0 {
                self.pending_dedents -= 1;
                return Token::new(TokKind::Dedent, "", self.line, self.col);
            }
            if self.at_line_start && self.bracket_depth == 0 {
                if let Some(tok) = self.handle_line_start() {
                    return tok;
                }
                continue;
            }

            // Skip intra-line whitespace and comments.
            loop {
                match self.peek() {
                    Some(b' ') | Some(b'\t') | Some(b'\r') => {
                        self.bump();
                    }
                    Some(b'#') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    Some(b'\\') if self.peek_at(1) == Some(b'\n') => {
                        // Explicit line continuation.
                        self.bump();
                        self.bump();
                    }
                    Some(b'\\') if self.peek_at(1) == Some(b'\r') && self.peek_at(2) == Some(b'\n') => {
                        self.bump();
                        self.bump();
                        self.bump();
                    }
                    _ => break,
                }
            }

            let (line, col) = (self.line, self.col);
            match self.peek() {
                None => {
                    // EOF: close any open logical line, then unwind indentation.
                    if self.line_has_content {
                        self.line_has_content = false;
                        return Token::new(TokKind::Newline, "", line, col);
                    }
                    if self.indents.len() > 1 {
                        self.indents.pop();
                        return Token::new(TokKind::Dedent, "", line, col);
                    }
                    return Token::new(TokKind::Eof, "", line, col);
                }
                Some(b'\n') => {
                    self.bump();
                    if self.bracket_depth > 0 {
                        continue; // implicit continuation
                    }
                    self.at_line_start = true;
                    if self.line_has_content {
                        self.line_has_content = false;
                        return Token::new(TokKind::Newline, "", line, col);
                    }
                    continue; // blank line
                }
                Some(c) => {
                    self.line_has_content = true;
                    return self.lex_primary(c, line, col);
                }
            }
        }
    }

    /// Measure indentation at the start of a logical line and emit
    /// INDENT/DEDENT tokens as needed. Returns `None` when the line is blank
    /// or comment-only (caller loops).
    fn handle_line_start(&mut self) -> Option<Token> {
        // First: if pending dedents are owed from a previous measurement we
        // handle them eagerly below, so just measure.
        let mut width: u32 = 0;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b' ') => {
                    width += 1;
                    self.bump();
                }
                Some(b'\t') => {
                    width = (width / 8 + 1) * 8; // tabstop-8, as CPython
                    self.bump();
                }
                _ => break,
            }
        }
        match self.peek() {
            None => {
                self.at_line_start = false;
                return None;
            }
            Some(b'\n') | Some(b'\r') | Some(b'#') => {
                // Blank or comment-only line: no layout effect. Consume to EOL.
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == b'\n' {
                        break;
                    }
                }
                return None;
            }
            _ => {}
        }
        let _ = start;
        let (line, col) = (self.line, self.col);
        let cur = *self.indents.last().expect("indent stack never empty");
        self.at_line_start = false;
        if width > cur {
            self.indents.push(width);
            return Some(Token::new(TokKind::Indent, "", line, col));
        }
        if width < cur {
            let mut pops: u32 = 0;
            while *self.indents.last().unwrap() > width {
                self.indents.pop();
                pops += 1;
            }
            if *self.indents.last().unwrap() != width {
                // Inconsistent dedent: note it and align to the enclosing
                // level. Pushing `width` as a new level would create an
                // INDENT-less level and unbalance the token stream.
                self.error(format!(
                    "unindent to column {width} does not match any outer indentation level"
                ));
            }
            debug_assert!(pops >= 1);
            self.pending_dedents = pops - 1;
            return Some(Token::new(TokKind::Dedent, "", line, col));
        }
        None
    }

    fn lex_primary(&mut self, c: u8, line: u32, col: u32) -> Token {
        // String prefixes: r, b, f, u and two-letter combos, followed by a quote.
        if c.is_ascii_alphabetic() || c == b'_' {
            if let Some(tok) = self.try_lex_prefixed_string(line, col) {
                return tok;
            }
            return self.lex_name(line, col);
        }
        if c.is_ascii_digit() {
            return self.lex_number(line, col);
        }
        if c == b'.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            return self.lex_number(line, col);
        }
        if c == b'"' || c == b'\'' {
            return self.lex_string(line, col);
        }
        self.lex_operator(line, col)
    }

    fn try_lex_prefixed_string(&mut self, line: u32, col: u32) -> Option<Token> {
        let mut i = 0;
        while i < 3 {
            match self.peek_at(i) {
                Some(b) if matches!(b.to_ascii_lowercase(), b'r' | b'b' | b'f' | b'u') => i += 1,
                Some(b'"') | Some(b'\'') if i > 0 => {
                    // Consume prefix letters then lex the string body.
                    let mut prefix = String::new();
                    for _ in 0..i {
                        prefix.push(self.bump().unwrap() as char);
                    }
                    let s = self.lex_string(line, col);
                    return Some(Token::new(TokKind::Str, format!("{prefix}{}", s.text), line, col));
                }
                _ => return None,
            }
        }
        None
    }

    fn lex_name(&mut self, line: u32, col: u32) -> Token {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let kind = if is_keyword(&text) { TokKind::Keyword } else { TokKind::Name };
        Token::new(kind, text, line, col)
    }

    fn lex_number(&mut self, line: u32, col: u32) -> Token {
        let start = self.pos;
        // Radix prefixes.
        if self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1).map(|b| b.to_ascii_lowercase()),
                Some(b'x') | Some(b'o') | Some(b'b')
            )
        {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            return Token::new(TokKind::Number, text, line, col);
        }
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'_' => {
                    self.bump();
                }
                b'.' if !seen_dot && !seen_exp => {
                    // Don't swallow `1.method()` — only a digit or end-of-number after '.'
                    if self.peek_at(1).is_some_and(|d| d.is_ascii_alphabetic() && d != b'e' && d != b'E') {
                        break;
                    }
                    seen_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !seen_exp => {
                    let next = self.peek_at(1);
                    if next.is_some_and(|d| d.is_ascii_digit())
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && self.peek_at(2).is_some_and(|d| d.is_ascii_digit()))
                    {
                        seen_exp = true;
                        self.bump(); // e
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                b'j' | b'J' => {
                    self.bump();
                    break;
                }
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        Token::new(TokKind::Number, text, line, col)
    }

    fn lex_string(&mut self, line: u32, col: u32) -> Token {
        let quote = self.peek().expect("lex_string called at a quote");
        let start = self.pos;
        // Triple-quoted?
        let triple = self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote);
        if triple {
            self.bump();
            self.bump();
            self.bump();
            loop {
                match self.peek() {
                    None => {
                        self.error("unterminated triple-quoted string");
                        break;
                    }
                    Some(c) if c == quote
                        && self.peek_at(1) == Some(quote)
                        && self.peek_at(2) == Some(quote) =>
                    {
                        self.bump();
                        self.bump();
                        self.bump();
                        break;
                    }
                    Some(b'\\') => {
                        self.bump();
                        self.bump();
                    }
                    _ => {
                        self.bump();
                    }
                }
            }
        } else {
            self.bump();
            loop {
                match self.peek() {
                    None | Some(b'\n') => {
                        self.error("unterminated string literal");
                        break;
                    }
                    Some(c) if c == quote => {
                        self.bump();
                        break;
                    }
                    Some(b'\\') => {
                        self.bump();
                        self.bump();
                    }
                    _ => {
                        self.bump();
                    }
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        Token::new(TokKind::Str, text, line, col)
    }

    fn lex_operator(&mut self, line: u32, col: u32) -> Token {
        // Maximal-munch over the Python operator set.
        const THREE: &[&str] = &["**=", "//=", ">>=", "<<=", "...", "!=="];
        const TWO: &[&str] = &[
            "**", "//", ">>", "<<", "<=", ">=", "==", "!=", "->", ":=", "+=", "-=", "*=", "/=",
            "%=", "&=", "|=", "^=", "@=",
        ];
        let rest = &self.src[self.pos..];
        let take = |n: usize, lx: &mut Self| -> String {
            let mut s = String::with_capacity(n);
            for _ in 0..n {
                s.push(lx.bump().unwrap() as char);
            }
            s
        };
        if rest.len() >= 3 {
            let s3 = std::str::from_utf8(&rest[..3]).unwrap_or("");
            if THREE.contains(&s3) {
                let text = take(3, self);
                return Token::new(TokKind::Op, text, line, col);
            }
        }
        if rest.len() >= 2 {
            let s2 = std::str::from_utf8(&rest[..2]).unwrap_or("");
            if TWO.contains(&s2) {
                let text = take(2, self);
                return Token::new(TokKind::Op, text, line, col);
            }
        }
        let c = self.bump().expect("lex_operator at EOF");
        match c {
            b'(' | b'[' | b'{' => self.bracket_depth += 1,
            b')' | b']' | b'}' => self.bracket_depth = self.bracket_depth.saturating_sub(1),
            _ => {}
        }
        let known = b"+-*/%@<>=&|^~!,:.;()[]{}";
        if !known.contains(&c) {
            self.error(format!("unexpected character {:?}", c as char));
        }
        Token::new(TokKind::Op, (c as char).to_string(), line, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokKind::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).0.into_iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| !t.kind.is_synthetic())
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(texts("x = 1 + 2"), vec!["x", "=", "1", "+", "2"]);
        assert_eq!(kinds("x = 1"), vec![Name, Op, Number, Newline, Eof]);
    }

    #[test]
    fn keywords_vs_names() {
        let toks = lex("def foo(self): return None").0;
        assert_eq!(toks[0].kind, Keyword);
        assert_eq!(toks[1].kind, Name);
        let ret = toks.iter().find(|t| t.text == "return").unwrap();
        assert_eq!(ret.kind, Keyword);
        let none = toks.iter().find(|t| t.text == "None").unwrap();
        assert_eq!(none.kind, Keyword);
    }

    #[test]
    fn indentation_block() {
        let src = "if x:\n    y = 1\nz = 2\n";
        let k = kinds(src);
        assert_eq!(
            k,
            vec![Keyword, Name, Op, Newline, Indent, Name, Op, Number, Newline, Dedent, Name, Op, Number, Newline, Eof]
        );
    }

    #[test]
    fn nested_blocks_unwind_at_eof() {
        let src = "if a:\n    if b:\n        c = 1\n";
        let k = kinds(src);
        let dedents = k.iter().filter(|&&t| t == Dedent).count();
        let indents = k.iter().filter(|&&t| t == Indent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2, "all indents must unwind before EOF: {k:?}");
        assert_eq!(*k.last().unwrap(), Eof);
    }

    #[test]
    fn multi_level_dedent() {
        let src = "if a:\n    if b:\n        c = 1\nd = 2\n";
        let k = kinds(src);
        // Two dedents must appear before the `d` name token.
        let d_pos = lex(src).0.iter().position(|t| t.text == "d").unwrap();
        let dedents_before = k[..d_pos].iter().filter(|&&t| t == Dedent).count();
        assert_eq!(dedents_before, 2, "{k:?}");
    }

    #[test]
    fn blank_and_comment_lines_are_layout_neutral() {
        let src = "if x:\n    a = 1\n\n    # comment\n    b = 2\n";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|&&t| t == Indent).count(), 1);
        assert_eq!(k.iter().filter(|&&t| t == Dedent).count(), 1);
        let (toks, errs) = lex(src);
        assert!(errs.is_empty());
        assert!(toks.iter().any(|t| t.text == "b"));
    }

    #[test]
    fn brackets_suppress_newlines() {
        let src = "x = f(1,\n      2,\n      3)\ny = 2\n";
        let (toks, errs) = lex(src);
        assert!(errs.is_empty());
        let newlines = toks.iter().filter(|t| t.kind == Newline).count();
        assert_eq!(newlines, 2, "one per logical line: {toks:?}");
        assert_eq!(toks.iter().filter(|t| t.kind == Indent).count(), 0);
    }

    #[test]
    fn strings_single_double_escape() {
        assert_eq!(texts(r#"s = "a\"b""#), vec!["s", "=", r#""a\"b""#]);
        assert_eq!(texts("s = 'it\\'s'"), vec!["s", "=", "'it\\'s'"]);
    }

    #[test]
    fn triple_quoted_string_spans_lines() {
        let src = "s = \"\"\"line1\nline2\"\"\"\nx = 1\n";
        let (toks, errs) = lex(src);
        assert!(errs.is_empty());
        let s = toks.iter().find(|t| t.kind == Str).unwrap();
        assert!(s.text.contains("line1\nline2"));
        assert!(toks.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn string_prefixes() {
        let (toks, errs) = lex("a = f\"x{y}\"\nb = r'raw'\nc = rb'bytes'\n");
        assert!(errs.is_empty());
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == Str).collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[0].text.starts_with('f'));
        assert!(strs[1].text.starts_with('r'));
        assert!(strs[2].text.starts_with("rb"));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            texts("a = 1 + 2.5 + 1e-3 + 0xFF + 0b101 + 10_000 + 3j"),
            vec!["a", "=", "1", "+", "2.5", "+", "1e-3", "+", "0xFF", "+", "0b101", "+", "10_000", "+", "3j"]
        );
    }

    #[test]
    fn number_dot_method_not_swallowed() {
        assert_eq!(texts("x = 1 .bit_length()"), vec!["x", "=", "1", ".", "bit_length", "(", ")"]);
        // `1.5.is_integer()` — the second dot is an attribute access.
        assert_eq!(
            texts("y = 1.5.is_integer()"),
            vec!["y", "=", "1.5", ".", "is_integer", "(", ")"]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            texts("a **= 2; b //= 3; c = a != b; d = a <= b; e = x if y else z; f = a @ b"),
            vec!["a", "**=", "2", ";", "b", "//=", "3", ";", "c", "=", "a", "!=", "b", ";", "d", "=",
                 "a", "<=", "b", ";", "e", "=", "x", "if", "y", "else", "z", ";", "f", "=", "a", "@", "b"]
        );
        assert_eq!(texts("def f() -> int: ..."), vec!["def", "f", "(", ")", "->", "int", ":", "..."]);
        assert_eq!(texts("if (n := 10) > 5: pass"), vec!["if", "(", "n", ":=", "10", ")", ">", "5", ":", "pass"]);
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(texts("x = 1  # set x\n# whole line\ny = 2"), vec!["x", "=", "1", "y", "=", "2"]);
    }

    #[test]
    fn line_continuation_backslash() {
        let (toks, errs) = lex("x = 1 + \\\n    2\n");
        assert!(errs.is_empty());
        assert_eq!(toks.iter().filter(|t| t.kind == Newline).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.kind == Indent).count(), 0);
    }

    #[test]
    fn unterminated_string_is_recoverable() {
        let (toks, errs) = lex("s = 'oops\nx = 1\n");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unterminated"));
        assert!(toks.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn inconsistent_dedent_recovers() {
        let src = "if a:\n        b = 1\n    c = 2\n";
        let (toks, errs) = lex(src);
        assert_eq!(errs.len(), 1);
        assert!(toks.iter().any(|t| t.text == "c"));
    }

    #[test]
    fn unexpected_char_recorded() {
        let (toks, errs) = lex("x = 1 ? 2\n");
        assert_eq!(errs.len(), 1);
        assert!(toks.iter().any(|t| t.text == "2"));
    }

    #[test]
    fn missing_trailing_newline() {
        let k = kinds("x = 1");
        assert_eq!(k, vec![Name, Op, Number, Newline, Eof]);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert_eq!(kinds(""), vec![Eof]);
        assert_eq!(kinds("\n\n\n"), vec![Eof]);
        assert_eq!(kinds("   \n  # c\n"), vec![Eof]);
    }

    #[test]
    fn tabs_count_as_tabstop_8() {
        let src = "if x:\n\ty = 1\n\tz = 2\n";
        let (toks, errs) = lex(src);
        assert!(errs.is_empty());
        assert_eq!(toks.iter().filter(|t| t.kind == Indent).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.kind == Dedent).count(), 1);
    }

    #[test]
    fn walrus_and_arrow_positions() {
        let toks = lex("def f(a, b=1) -> int:\n    return (a := b)\n").0;
        assert!(toks.iter().any(|t| t.is_op("->")));
        assert!(toks.iter().any(|t| t.is_op(":=")));
    }

    #[test]
    fn token_positions_are_tracked() {
        let toks = lex("x = 1\ny = 2\n").0;
        let y = toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 2);
        assert_eq!(y.col, 0);
        let two = toks.iter().find(|t| t.text == "2").unwrap();
        assert_eq!(two.line, 2);
        assert_eq!(two.col, 4);
    }
}
