//! Error-tolerant recursive-descent parser.
//!
//! Produces a concrete [`ParseTree`] — internal nodes for grammar
//! productions, leaves for *every* kept token (keywords, operators,
//! punctuation, names, literals). The parser mirrors the shape of the
//! Python 3 reference grammar closely enough that the SPTs derived from it
//! match what the paper's ANTLR pipeline would produce.
//!
//! Recovery discipline: any statement that fails to parse becomes an
//! [`SyntaxKind::ErrorNode`] containing the skipped tokens, and parsing
//! resumes at the next statement boundary. A truncated input (the 50/75/90 %
//! omission experiments of §VII-D) therefore still yields a tree covering
//! everything before the truncation point.

use crate::lexer::lex;
use crate::token::{TokKind, Token};
use crate::tree::{NodeId, NodeKind, ParseTree, SyntaxKind};
use std::fmt;

/// A (recoverable) parse diagnostic. The parser never fails outright; these
/// are collected on [`ParseTree::errors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a module. Never fails: diagnostics end up in `tree.errors`.
pub fn parse(src: &str) -> ParseTree {
    let (toks, lex_errors) = lex(src);
    let mut p = Parser::new(toks);
    let root = p.parse_module();
    let mut tree = p.tree;
    tree.root = Some(root);
    for e in lex_errors {
        tree.errors.push(e.to_string());
    }
    for e in p.errors {
        tree.errors.push(e.to_string());
    }
    tree
}

/// Parse a single expression (e.g. a search query fragment).
pub fn parse_expression(src: &str) -> ParseTree {
    let (toks, lex_errors) = lex(src);
    let mut p = Parser::new(toks);
    let root = p.parse_testlist_star();
    let mut tree = p.tree;
    tree.root = Some(root);
    for e in lex_errors {
        tree.errors.push(e.to_string());
    }
    for e in p.errors {
        tree.errors.push(e.to_string());
    }
    tree
}

/// Recursive-descent parser state.
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    pub(crate) tree: ParseTree,
    errors: Vec<ParseError>,
}

impl Parser {
    pub fn new(toks: Vec<Token>) -> Self {
        Parser {
            toks,
            pos: 0,
            tree: ParseTree::new(),
            errors: Vec::new(),
        }
    }

    // ---- token helpers -------------------------------------------------

    fn cur(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek(&self, off: usize) -> &Token {
        let i = (self.pos + off).min(self.toks.len() - 1);
        &self.toks[i]
    }

    fn at_eof(&self) -> bool {
        self.cur().kind == TokKind::Eof
    }

    fn at_kw(&self, s: &str) -> bool {
        self.cur().is_kw(s)
    }

    fn at_op(&self, s: &str) -> bool {
        self.cur().is_op(s)
    }

    fn at_kind(&self, k: TokKind) -> bool {
        self.cur().kind == k
    }

    fn error_here(&mut self, msg: impl Into<String>) {
        let t = self.cur().clone();
        self.errors.push(ParseError {
            line: t.line,
            col: t.col,
            message: msg.into(),
        });
    }

    /// Consume the current token as a leaf child of `parent`.
    fn bump_into(&mut self, parent: NodeId) {
        if self.at_eof() {
            return;
        }
        let tok = self.toks[self.pos].clone();
        self.pos += 1;
        let leaf = self.tree.push(NodeKind::Leaf(tok));
        self.tree.add_child(parent, leaf);
    }

    /// Consume the current token without keeping it (layout tokens).
    fn skip(&mut self) {
        if !self.at_eof() {
            self.pos += 1;
        }
    }

    fn expect_op(&mut self, s: &str, parent: NodeId) {
        if self.at_op(s) {
            self.bump_into(parent);
        } else {
            self.error_here(format!("expected '{s}', found '{}'", self.cur()));
        }
    }

    fn expect_kw(&mut self, s: &str, parent: NodeId) {
        if self.at_kw(s) {
            self.bump_into(parent);
        } else {
            self.error_here(format!("expected keyword '{s}', found '{}'", self.cur()));
        }
    }

    fn expect_name(&mut self, parent: NodeId) {
        if self.at_kind(TokKind::Name) {
            self.bump_into(parent);
        } else {
            self.error_here(format!("expected name, found '{}'", self.cur()));
        }
    }

    fn expect_newline(&mut self) {
        if self.at_kind(TokKind::Newline) {
            self.skip();
        } else if !self.at_eof() && !self.at_kind(TokKind::Dedent) {
            self.error_here(format!("expected end of line, found '{}'", self.cur()));
            self.recover_to_line_end();
        }
    }

    /// Skip tokens up to and including the next NEWLINE (or stop at
    /// DEDENT/EOF) — the statement-level synchronisation point.
    fn recover_to_line_end(&mut self) {
        loop {
            match self.cur().kind {
                TokKind::Newline => {
                    self.skip();
                    return;
                }
                TokKind::Dedent | TokKind::Eof => return,
                _ => self.skip(),
            }
        }
    }

    fn node(&mut self, kind: SyntaxKind) -> NodeId {
        self.tree.push(NodeKind::Internal(kind))
    }

    // ---- module & statements -------------------------------------------

    pub fn parse_module(&mut self) -> NodeId {
        let module = self.node(SyntaxKind::Module);
        while !self.at_eof() {
            // Tolerate stray layout tokens at top level (truncated inputs).
            if matches!(self.cur().kind, TokKind::Newline | TokKind::Indent | TokKind::Dedent) {
                self.skip();
                continue;
            }
            let before = self.pos;
            let stmt = self.parse_statement();
            self.tree.add_child(module, stmt);
            if self.pos == before {
                // Defensive: guarantee progress even on pathological input.
                self.skip();
            }
        }
        module
    }

    fn parse_statement(&mut self) -> NodeId {
        if self.at_op("@") {
            return self.parse_decorated();
        }
        if self.at_kw("async") {
            // async def / async for / async with — parse the underlying
            // statement and prepend the `async` leaf.
            let kw = self.toks[self.pos].clone();
            self.pos += 1;
            let inner = self.parse_statement();
            let leaf = self.tree.push(NodeKind::Leaf(kw));
            // Prepend: re-order children so `async` comes first.
            self.tree.nodes[inner.index()].children.insert(0, leaf);
            self.tree.nodes[leaf.index()].parent = Some(inner);
            return inner;
        }
        let kw = if self.cur().kind == TokKind::Keyword {
            self.cur().text.as_str()
        } else {
            ""
        };
        match kw {
            "if" => self.parse_if(),
            "while" => self.parse_while(),
            "for" => self.parse_for(),
            "try" => self.parse_try(),
            "with" => self.parse_with(),
            "def" => self.parse_funcdef(),
            "class" => self.parse_classdef(),
            _ => self.parse_simple_stmt_line(),
        }
    }

    fn parse_decorated(&mut self) -> NodeId {
        // Decorators attach to the following def/class by becoming its
        // leading children (keeps the tree flat, as ANTLR's `decorated`
        // production effectively does).
        let mut decs = Vec::new();
        while self.at_op("@") {
            let d = self.node(SyntaxKind::Decorator);
            self.bump_into(d); // @
            let expr = self.parse_test();
            self.tree.add_child(d, expr);
            self.expect_newline();
            decs.push(d);
        }
        let def = if self.at_kw("class") {
            self.parse_classdef()
        } else if self.at_kw("def") || self.at_kw("async") {
            if self.at_kw("async") {
                // Reuse the async path in parse_statement.
                self.parse_statement()
            } else {
                self.parse_funcdef()
            }
        } else {
            self.error_here("expected 'def' or 'class' after decorator");
            self.parse_simple_stmt_line()
        };
        for (i, d) in decs.into_iter().enumerate() {
            self.tree.nodes[def.index()].children.insert(i, d);
            self.tree.nodes[d.index()].parent = Some(def);
        }
        def
    }

    fn parse_classdef(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::ClassDef);
        self.expect_kw("class", n);
        self.expect_name(n);
        if self.at_op("(") {
            self.bump_into(n);
            if !self.at_op(")") {
                self.parse_arglist_into(n);
            }
            self.expect_op(")", n);
        }
        self.expect_op(":", n);
        let body = self.parse_block();
        self.tree.add_child(n, body);
        n
    }

    fn parse_funcdef(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::FuncDef);
        self.expect_kw("def", n);
        self.expect_name(n);
        let params = self.node(SyntaxKind::Parameters);
        self.expect_op("(", params);
        while !self.at_op(")") && !self.at_eof() && !self.at_kind(TokKind::Newline) {
            let p = self.node(SyntaxKind::Param);
            if self.at_op("*") || self.at_op("**") {
                self.bump_into(p);
            }
            if self.at_kind(TokKind::Name) {
                self.bump_into(p);
            } else if !self.at_op(",") && !self.at_op(")") {
                self.error_here(format!("expected parameter, found '{}'", self.cur()));
                self.skip();
            }
            if self.at_op(":") {
                self.bump_into(p);
                let ann = self.parse_test();
                self.tree.add_child(p, ann);
            }
            if self.at_op("=") {
                self.bump_into(p);
                let default = self.parse_test();
                self.tree.add_child(p, default);
            }
            self.tree.add_child(params, p);
            if self.at_op(",") {
                self.bump_into(params);
            } else {
                break;
            }
        }
        self.expect_op(")", params);
        self.tree.add_child(n, params);
        if self.at_op("->") {
            self.bump_into(n);
            let ret = self.parse_test();
            self.tree.add_child(n, ret);
        }
        self.expect_op(":", n);
        let body = self.parse_block();
        self.tree.add_child(n, body);
        n
    }

    fn parse_if(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::IfStmt);
        self.expect_kw("if", n);
        let cond = self.parse_namedexpr();
        self.tree.add_child(n, cond);
        self.expect_op(":", n);
        let body = self.parse_block();
        self.tree.add_child(n, body);
        while self.at_kw("elif") {
            let e = self.node(SyntaxKind::ElifClause);
            self.bump_into(e);
            let c = self.parse_namedexpr();
            self.tree.add_child(e, c);
            self.expect_op(":", e);
            let b = self.parse_block();
            self.tree.add_child(e, b);
            self.tree.add_child(n, e);
        }
        if self.at_kw("else") {
            let e = self.node(SyntaxKind::ElseClause);
            self.bump_into(e);
            self.expect_op(":", e);
            let b = self.parse_block();
            self.tree.add_child(e, b);
            self.tree.add_child(n, e);
        }
        n
    }

    fn parse_while(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::WhileStmt);
        self.expect_kw("while", n);
        let cond = self.parse_namedexpr();
        self.tree.add_child(n, cond);
        self.expect_op(":", n);
        let body = self.parse_block();
        self.tree.add_child(n, body);
        if self.at_kw("else") {
            let e = self.node(SyntaxKind::ElseClause);
            self.bump_into(e);
            self.expect_op(":", e);
            let b = self.parse_block();
            self.tree.add_child(e, b);
            self.tree.add_child(n, e);
        }
        n
    }

    fn parse_for(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::ForStmt);
        self.expect_kw("for", n);
        let target = self.parse_target_list();
        self.tree.add_child(n, target);
        self.expect_kw("in", n);
        let iter = self.parse_testlist_star();
        self.tree.add_child(n, iter);
        self.expect_op(":", n);
        let body = self.parse_block();
        self.tree.add_child(n, body);
        if self.at_kw("else") {
            let e = self.node(SyntaxKind::ElseClause);
            self.bump_into(e);
            self.expect_op(":", e);
            let b = self.parse_block();
            self.tree.add_child(e, b);
            self.tree.add_child(n, e);
        }
        n
    }

    fn parse_try(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::TryStmt);
        self.expect_kw("try", n);
        self.expect_op(":", n);
        let body = self.parse_block();
        self.tree.add_child(n, body);
        while self.at_kw("except") {
            let e = self.node(SyntaxKind::ExceptClause);
            self.bump_into(e);
            if !self.at_op(":") {
                let exc = self.parse_test();
                self.tree.add_child(e, exc);
                if self.at_kw("as") {
                    self.bump_into(e);
                    self.expect_name(e);
                }
            }
            self.expect_op(":", e);
            let b = self.parse_block();
            self.tree.add_child(e, b);
            self.tree.add_child(n, e);
        }
        if self.at_kw("else") {
            let e = self.node(SyntaxKind::ElseClause);
            self.bump_into(e);
            self.expect_op(":", e);
            let b = self.parse_block();
            self.tree.add_child(e, b);
            self.tree.add_child(n, e);
        }
        if self.at_kw("finally") {
            let e = self.node(SyntaxKind::FinallyClause);
            self.bump_into(e);
            self.expect_op(":", e);
            let b = self.parse_block();
            self.tree.add_child(e, b);
            self.tree.add_child(n, e);
        }
        n
    }

    fn parse_with(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::WithStmt);
        self.expect_kw("with", n);
        loop {
            let item = self.node(SyntaxKind::WithItem);
            let ctx = self.parse_test();
            self.tree.add_child(item, ctx);
            if self.at_kw("as") {
                self.bump_into(item);
                let target = self.parse_target_atom();
                self.tree.add_child(item, target);
            }
            self.tree.add_child(n, item);
            if self.at_op(",") {
                self.bump_into(n);
            } else {
                break;
            }
        }
        self.expect_op(":", n);
        let body = self.parse_block();
        self.tree.add_child(n, body);
        n
    }

    /// block: simple_stmts | NEWLINE INDENT statement+ DEDENT
    fn parse_block(&mut self) -> NodeId {
        let block = self.node(SyntaxKind::Block);
        if self.at_kind(TokKind::Newline) {
            self.skip();
            if self.at_kind(TokKind::Indent) {
                self.skip();
                while !self.at_kind(TokKind::Dedent) && !self.at_eof() {
                    if self.at_kind(TokKind::Newline) || self.at_kind(TokKind::Indent) {
                        self.skip();
                        continue;
                    }
                    let before = self.pos;
                    let stmt = self.parse_statement();
                    self.tree.add_child(block, stmt);
                    if self.pos == before {
                        self.skip();
                    }
                }
                if self.at_kind(TokKind::Dedent) {
                    self.skip();
                }
            } else if !self.at_eof() {
                self.error_here("expected an indented block");
            }
            // At EOF with no indent: an empty block (truncated input) — fine.
        } else if !self.at_eof() {
            // Inline suite: simple_stmt (';' simple_stmt)* NEWLINE
            loop {
                let stmt = self.parse_simple_stmt();
                self.tree.add_child(block, stmt);
                if self.at_op(";") {
                    self.skip();
                    if self.at_kind(TokKind::Newline) || self.at_eof() {
                        break;
                    }
                } else {
                    break;
                }
            }
            self.expect_newline();
        }
        block
    }

    /// One source line of `;`-separated simple statements.
    fn parse_simple_stmt_line(&mut self) -> NodeId {
        let first = self.parse_simple_stmt();
        if !self.at_op(";") {
            self.expect_newline();
            return first;
        }
        // Wrap multiple statements in an ExprStmt-like container only when
        // needed; reuse Block to hold them keeps kinds honest.
        let block = self.node(SyntaxKind::Block);
        self.tree.add_child(block, first);
        while self.at_op(";") {
            self.skip();
            if self.at_kind(TokKind::Newline) || self.at_eof() {
                break;
            }
            let s = self.parse_simple_stmt();
            self.tree.add_child(block, s);
        }
        self.expect_newline();
        block
    }

    fn parse_simple_stmt(&mut self) -> NodeId {
        let kw = if self.cur().kind == TokKind::Keyword {
            self.cur().text.as_str()
        } else {
            ""
        };
        match kw {
            "pass" => self.leaf_stmt(SyntaxKind::PassStmt),
            "break" => self.leaf_stmt(SyntaxKind::BreakStmt),
            "continue" => self.leaf_stmt(SyntaxKind::ContinueStmt),
            "return" => {
                let n = self.node(SyntaxKind::ReturnStmt);
                self.bump_into(n);
                if !self.at_line_end() {
                    let e = self.parse_testlist_star();
                    self.tree.add_child(n, e);
                }
                n
            }
            "raise" => {
                let n = self.node(SyntaxKind::RaiseStmt);
                self.bump_into(n);
                if !self.at_line_end() {
                    let e = self.parse_test();
                    self.tree.add_child(n, e);
                    if self.at_kw("from") {
                        self.bump_into(n);
                        let c = self.parse_test();
                        self.tree.add_child(n, c);
                    }
                }
                n
            }
            "global" | "nonlocal" => {
                let kind = if kw == "global" {
                    SyntaxKind::GlobalStmt
                } else {
                    SyntaxKind::NonlocalStmt
                };
                let n = self.node(kind);
                self.bump_into(n);
                self.expect_name(n);
                while self.at_op(",") {
                    self.bump_into(n);
                    self.expect_name(n);
                }
                n
            }
            "assert" => {
                let n = self.node(SyntaxKind::AssertStmt);
                self.bump_into(n);
                let e = self.parse_test();
                self.tree.add_child(n, e);
                if self.at_op(",") {
                    self.bump_into(n);
                    let m = self.parse_test();
                    self.tree.add_child(n, m);
                }
                n
            }
            "del" => {
                let n = self.node(SyntaxKind::DelStmt);
                self.bump_into(n);
                let t = self.parse_target_list();
                self.tree.add_child(n, t);
                n
            }
            "import" => {
                let n = self.node(SyntaxKind::ImportStmt);
                self.bump_into(n);
                self.parse_import_aliases(n);
                n
            }
            "from" => {
                let n = self.node(SyntaxKind::ImportFromStmt);
                self.bump_into(n);
                // dotted module path (possibly relative)
                while self.at_op(".") || self.at_op("...") {
                    self.bump_into(n);
                }
                if self.at_kind(TokKind::Name) {
                    self.bump_into(n);
                    while self.at_op(".") {
                        self.bump_into(n);
                        self.expect_name(n);
                    }
                }
                self.expect_kw("import", n);
                if self.at_op("*") {
                    self.bump_into(n);
                } else if self.at_op("(") {
                    self.bump_into(n);
                    self.parse_import_aliases(n);
                    self.expect_op(")", n);
                } else {
                    self.parse_import_aliases(n);
                }
                n
            }
            "yield" => {
                let n = self.node(SyntaxKind::YieldStmt);
                let y = self.parse_yield_expr();
                self.tree.add_child(n, y);
                n
            }
            _ => self.parse_expr_stmt(),
        }
    }

    fn parse_import_aliases(&mut self, parent: NodeId) {
        loop {
            let a = self.node(SyntaxKind::ImportAlias);
            self.expect_name(a);
            while self.at_op(".") {
                self.bump_into(a);
                self.expect_name(a);
            }
            if self.at_kw("as") {
                self.bump_into(a);
                self.expect_name(a);
            }
            self.tree.add_child(parent, a);
            if self.at_op(",") {
                self.bump_into(parent);
            } else {
                break;
            }
        }
    }

    fn leaf_stmt(&mut self, kind: SyntaxKind) -> NodeId {
        let n = self.node(kind);
        self.bump_into(n);
        n
    }

    fn at_line_end(&self) -> bool {
        matches!(
            self.cur().kind,
            TokKind::Newline | TokKind::Eof | TokKind::Dedent
        ) || self.at_op(";")
    }

    /// expr_stmt: testlist (annassign | augassign test | ('=' testlist)*)
    fn parse_expr_stmt(&mut self) -> NodeId {
        let first = self.parse_testlist_star();
        if self.at_op(":") {
            // Annotated assignment: `x: int = 5`
            let n = self.node(SyntaxKind::AnnAssign);
            self.tree.add_child(n, first);
            self.bump_into(n); // :
            let ann = self.parse_test();
            self.tree.add_child(n, ann);
            if self.at_op("=") {
                self.bump_into(n);
                let v = self.parse_testlist_star();
                self.tree.add_child(n, v);
            }
            return n;
        }
        const AUG: &[&str] = &[
            "+=", "-=", "*=", "/=", "//=", "%=", "**=", ">>=", "<<=", "&=", "|=", "^=", "@=",
        ];
        if self.cur().kind == TokKind::Op && AUG.contains(&self.cur().text.as_str()) {
            let n = self.node(SyntaxKind::AugAssign);
            self.tree.add_child(n, first);
            self.bump_into(n);
            let v = self.parse_testlist_star();
            self.tree.add_child(n, v);
            return n;
        }
        if self.at_op("=") {
            let n = self.node(SyntaxKind::Assign);
            self.tree.add_child(n, first);
            while self.at_op("=") {
                self.bump_into(n);
                let v = self.parse_testlist_star();
                self.tree.add_child(n, v);
            }
            return n;
        }
        let n = self.node(SyntaxKind::ExprStmt);
        self.tree.add_child(n, first);
        n
    }

    // ---- targets ---------------------------------------------------------

    fn parse_target_list(&mut self) -> NodeId {
        let first = self.parse_target_atom();
        if !self.at_op(",") {
            return first;
        }
        let n = self.node(SyntaxKind::TupleExpr);
        self.tree.add_child(n, first);
        while self.at_op(",") {
            self.bump_into(n);
            if self.at_kw("in") || self.at_op("=") || self.at_line_end() || self.at_op(":") {
                break;
            }
            let t = self.parse_target_atom();
            self.tree.add_child(n, t);
        }
        n
    }

    fn parse_target_atom(&mut self) -> NodeId {
        if self.at_op("*") {
            let n = self.node(SyntaxKind::Starred);
            self.bump_into(n);
            let inner = self.parse_target_atom();
            self.tree.add_child(n, inner);
            return n;
        }
        // Targets share the postfix grammar (attribute/subscript chains).
        self.parse_postfix()
    }

    // ---- expressions ------------------------------------------------------

    /// testlist_star_expr: (test|star_expr) (',' (test|star_expr))* [',']
    pub fn parse_testlist_star(&mut self) -> NodeId {
        let first = self.parse_star_or_test();
        if !self.at_op(",") {
            return first;
        }
        let n = self.node(SyntaxKind::TupleExpr);
        self.tree.add_child(n, first);
        while self.at_op(",") {
            self.bump_into(n);
            if self.expr_terminator() {
                break;
            }
            let t = self.parse_star_or_test();
            self.tree.add_child(n, t);
        }
        n
    }

    fn expr_terminator(&self) -> bool {
        self.at_line_end()
            || self.at_op(")")
            || self.at_op("]")
            || self.at_op("}")
            || self.at_op("=")
            || self.at_op(":")
            || self.at_kw("in")
            || self.at_kw("for")
            || self.at_kw("if")
            || self.at_kw("else")
            || self.at_kw("as")
    }

    fn parse_star_or_test(&mut self) -> NodeId {
        if self.at_op("*") || self.at_op("**") {
            let n = self.node(SyntaxKind::Starred);
            self.bump_into(n);
            let inner = self.parse_test();
            self.tree.add_child(n, inner);
            return n;
        }
        self.parse_namedexpr()
    }

    /// namedexpr_test: test [':=' test]
    fn parse_namedexpr(&mut self) -> NodeId {
        let lhs = self.parse_test();
        if self.at_op(":=") {
            let n = self.node(SyntaxKind::WalrusExpr);
            self.tree.add_child(n, lhs);
            self.bump_into(n);
            let rhs = self.parse_test();
            self.tree.add_child(n, rhs);
            return n;
        }
        lhs
    }

    /// test: or_test ['if' or_test 'else' test] | lambdef
    pub fn parse_test(&mut self) -> NodeId {
        if self.at_kw("lambda") {
            return self.parse_lambda();
        }
        if self.at_kw("yield") {
            return self.parse_yield_expr();
        }
        let body = self.parse_or_test();
        if self.at_kw("if") {
            let n = self.node(SyntaxKind::Ternary);
            self.tree.add_child(n, body);
            self.bump_into(n); // if
            let cond = self.parse_or_test();
            self.tree.add_child(n, cond);
            self.expect_kw("else", n);
            let other = self.parse_test();
            self.tree.add_child(n, other);
            return n;
        }
        body
    }

    fn parse_lambda(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::Lambda);
        self.expect_kw("lambda", n);
        let params = self.node(SyntaxKind::Parameters);
        while !self.at_op(":") && !self.at_line_end() {
            let p = self.node(SyntaxKind::Param);
            if self.at_op("*") || self.at_op("**") {
                self.bump_into(p);
            }
            if self.at_kind(TokKind::Name) {
                self.bump_into(p);
            } else if !self.at_op(",") {
                self.error_here(format!("expected lambda parameter, found '{}'", self.cur()));
                self.skip();
            }
            if self.at_op("=") {
                self.bump_into(p);
                let d = self.parse_test();
                self.tree.add_child(p, d);
            }
            self.tree.add_child(params, p);
            if self.at_op(",") {
                self.bump_into(params);
            } else {
                break;
            }
        }
        self.tree.add_child(n, params);
        self.expect_op(":", n);
        let body = self.parse_test();
        self.tree.add_child(n, body);
        n
    }

    fn parse_yield_expr(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::YieldExpr);
        self.expect_kw("yield", n);
        if self.at_kw("from") {
            self.bump_into(n);
            let e = self.parse_test();
            self.tree.add_child(n, e);
        } else if !self.at_line_end() && !self.at_op(")") && !self.at_op("]") && !self.at_op("}") {
            let e = self.parse_testlist_star();
            self.tree.add_child(n, e);
        }
        n
    }

    fn parse_or_test(&mut self) -> NodeId {
        let mut lhs = self.parse_and_test();
        while self.at_kw("or") {
            let n = self.node(SyntaxKind::BoolOp);
            self.tree.add_child(n, lhs);
            self.bump_into(n);
            let rhs = self.parse_and_test();
            self.tree.add_child(n, rhs);
            lhs = n;
        }
        lhs
    }

    fn parse_and_test(&mut self) -> NodeId {
        let mut lhs = self.parse_not_test();
        while self.at_kw("and") {
            let n = self.node(SyntaxKind::BoolOp);
            self.tree.add_child(n, lhs);
            self.bump_into(n);
            let rhs = self.parse_not_test();
            self.tree.add_child(n, rhs);
            lhs = n;
        }
        lhs
    }

    fn parse_not_test(&mut self) -> NodeId {
        if self.at_kw("not") {
            let n = self.node(SyntaxKind::NotOp);
            self.bump_into(n);
            let e = self.parse_not_test();
            self.tree.add_child(n, e);
            return n;
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> NodeId {
        let lhs = self.parse_bitor();
        let at_comp = |p: &Self| {
            p.at_op("<")
                || p.at_op(">")
                || p.at_op("==")
                || p.at_op(">=")
                || p.at_op("<=")
                || p.at_op("!=")
                || p.at_kw("in")
                || p.at_kw("is")
                || (p.at_kw("not") && p.peek(1).is_kw("in"))
        };
        if !at_comp(self) {
            return lhs;
        }
        let n = self.node(SyntaxKind::Compare);
        self.tree.add_child(n, lhs);
        while at_comp(self) {
            // `not in` / `is not` are two tokens.
            self.bump_into(n);
            if (self.at_kw("in") && self.tree_last_leaf_is(n, "not"))
                || (self.at_kw("not") && self.tree_last_leaf_is(n, "is"))
            {
                self.bump_into(n);
            }
            let rhs = self.parse_bitor();
            self.tree.add_child(n, rhs);
        }
        n
    }

    fn tree_last_leaf_is(&self, node: NodeId, kw: &str) -> bool {
        self.tree
            .node(node)
            .children
            .iter()
            .rev()
            .find_map(|&c| self.tree.leaf(c))
            .is_some_and(|t| t.is_kw(kw))
    }

    fn parse_binop_level(
        &mut self,
        ops: &[&str],
        next: fn(&mut Self) -> NodeId,
    ) -> NodeId {
        let mut lhs = next(self);
        while self.cur().kind == TokKind::Op && ops.contains(&self.cur().text.as_str()) {
            let n = self.node(SyntaxKind::BinOp);
            self.tree.add_child(n, lhs);
            self.bump_into(n);
            let rhs = next(self);
            self.tree.add_child(n, rhs);
            lhs = n;
        }
        lhs
    }

    fn parse_bitor(&mut self) -> NodeId {
        self.parse_binop_level(&["|"], Self::parse_bitxor)
    }

    fn parse_bitxor(&mut self) -> NodeId {
        self.parse_binop_level(&["^"], Self::parse_bitand)
    }

    fn parse_bitand(&mut self) -> NodeId {
        self.parse_binop_level(&["&"], Self::parse_shift)
    }

    fn parse_shift(&mut self) -> NodeId {
        self.parse_binop_level(&["<<", ">>"], Self::parse_arith)
    }

    fn parse_arith(&mut self) -> NodeId {
        self.parse_binop_level(&["+", "-"], Self::parse_term)
    }

    fn parse_term(&mut self) -> NodeId {
        self.parse_binop_level(&["*", "/", "//", "%", "@"], Self::parse_factor)
    }

    fn parse_factor(&mut self) -> NodeId {
        if self.at_op("+") || self.at_op("-") || self.at_op("~") {
            let n = self.node(SyntaxKind::UnaryOp);
            self.bump_into(n);
            let e = self.parse_factor();
            self.tree.add_child(n, e);
            return n;
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> NodeId {
        let base = self.parse_await();
        if self.at_op("**") {
            let n = self.node(SyntaxKind::Power);
            self.tree.add_child(n, base);
            self.bump_into(n);
            let e = self.parse_factor();
            self.tree.add_child(n, e);
            return n;
        }
        base
    }

    fn parse_await(&mut self) -> NodeId {
        if self.at_kw("await") {
            let n = self.node(SyntaxKind::AwaitExpr);
            self.bump_into(n);
            let e = self.parse_postfix();
            self.tree.add_child(n, e);
            return n;
        }
        self.parse_postfix()
    }

    /// Postfix chain: atom (call | attribute | subscript)*
    fn parse_postfix(&mut self) -> NodeId {
        let mut e = self.parse_atom();
        loop {
            if self.at_op("(") {
                let n = self.node(SyntaxKind::Call);
                self.tree.add_child(n, e);
                let args = self.node(SyntaxKind::Arguments);
                self.bump_into(args); // (
                if !self.at_op(")") {
                    self.parse_arglist_into(args);
                }
                self.expect_op(")", args);
                self.tree.add_child(n, args);
                e = n;
            } else if self.at_op(".") {
                let n = self.node(SyntaxKind::Attribute);
                self.tree.add_child(n, e);
                self.bump_into(n); // .
                self.expect_name(n);
                e = n;
            } else if self.at_op("[") {
                let n = self.node(SyntaxKind::Subscript);
                self.tree.add_child(n, e);
                self.bump_into(n); // [
                let idx = self.parse_slice();
                self.tree.add_child(n, idx);
                self.expect_op("]", n);
                e = n;
            } else {
                return e;
            }
        }
    }

    /// slice: test | [test] ':' [test] [':' [test]] (and tuple-of-slices)
    fn parse_slice(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::Slice);
        loop {
            if !self.at_op(":") && !self.at_op("]") && !self.at_op(",") {
                let e = self.parse_test();
                self.tree.add_child(n, e);
            }
            if self.at_op(":") {
                self.bump_into(n);
                continue;
            }
            if self.at_op(",") {
                self.bump_into(n);
                continue;
            }
            break;
        }
        // A bare single expression is not a slice node — collapse for clean trees.
        if self.tree.node(n).children.len() == 1 {
            let only = self.tree.node(n).children[0];
            if self.tree.kind(only).is_some() || self.tree.leaf(only).is_some() {
                // Detach: return the inner expression directly. The Slice
                // node becomes unreachable garbage, which the arena allows.
                self.tree.nodes[only.index()].parent = None;
                return only;
            }
        }
        n
    }

    fn parse_arglist_into(&mut self, args: NodeId) {
        loop {
            if self.at_op(")") || self.at_eof() {
                break;
            }
            if self.at_op("*") || self.at_op("**") {
                let a = self.node(SyntaxKind::StarArgument);
                self.bump_into(a);
                let e = self.parse_test();
                self.tree.add_child(a, e);
                self.tree.add_child(args, a);
            } else if self.at_kind(TokKind::Name) && self.peek(1).is_op("=") {
                let a = self.node(SyntaxKind::KeywordArgument);
                self.bump_into(a); // name
                self.bump_into(a); // =
                let e = self.parse_test();
                self.tree.add_child(a, e);
                self.tree.add_child(args, a);
            } else {
                let a = self.node(SyntaxKind::Argument);
                let e = self.parse_namedexpr();
                self.tree.add_child(a, e);
                // Generator-expression argument: f(x for x in y)
                if self.at_kw("for") {
                    let comp = self.parse_comp_clauses();
                    self.tree.add_child(a, comp);
                }
                self.tree.add_child(args, a);
            }
            if self.at_op(",") {
                self.bump_into(args);
            } else {
                break;
            }
        }
    }

    fn parse_comp_clauses(&mut self) -> NodeId {
        // One or more `for … in …` / `if …` clauses.
        let comp = self.node(SyntaxKind::Comprehension);
        while self.at_kw("for") || self.at_kw("if") || self.at_kw("async") {
            if self.at_kw("async") {
                self.bump_into(comp);
                continue;
            }
            if self.at_kw("for") {
                let f = self.node(SyntaxKind::CompFor);
                self.bump_into(f);
                let t = self.parse_target_list();
                self.tree.add_child(f, t);
                self.expect_kw("in", f);
                let it = self.parse_or_test();
                self.tree.add_child(f, it);
                self.tree.add_child(comp, f);
            } else {
                let i = self.node(SyntaxKind::CompIf);
                self.bump_into(i);
                let c = self.parse_or_test();
                self.tree.add_child(i, c);
                self.tree.add_child(comp, i);
            }
        }
        comp
    }

    fn parse_atom(&mut self) -> NodeId {
        let t = self.cur().clone();
        match t.kind {
            TokKind::Name | TokKind::Number => {
                let leaf = self.tree.push(NodeKind::Leaf(t));
                self.pos += 1;
                leaf
            }
            TokKind::Str => {
                // Adjacent string literals concatenate; keep them as siblings
                // under the first leaf's parent — simplest: single leaf per
                // literal, joined under a ParenExpr-like node when multiple.
                let leaf = self.tree.push(NodeKind::Leaf(t));
                self.pos += 1;
                if self.at_kind(TokKind::Str) {
                    let n = self.node(SyntaxKind::ParenExpr);
                    self.tree.add_child(n, leaf);
                    while self.at_kind(TokKind::Str) {
                        self.bump_into(n);
                    }
                    return n;
                }
                leaf
            }
            TokKind::Keyword => match t.text.as_str() {
                "True" | "False" | "None" => {
                    let leaf = self.tree.push(NodeKind::Leaf(t));
                    self.pos += 1;
                    leaf
                }
                "lambda" => self.parse_lambda(),
                "not" => self.parse_not_test(),
                "await" => self.parse_await(),
                "yield" => self.parse_yield_expr(),
                _ => {
                    self.error_here(format!("unexpected keyword '{}' in expression", t.text));
                    let n = self.node(SyntaxKind::ErrorNode);
                    self.bump_into(n);
                    n
                }
            },
            TokKind::Op => match t.text.as_str() {
                "(" => self.parse_paren(),
                "[" => self.parse_list(),
                "{" => self.parse_dict_or_set(),
                "..." => {
                    let leaf = self.tree.push(NodeKind::Leaf(t));
                    self.pos += 1;
                    leaf
                }
                _ => {
                    self.error_here(format!("unexpected token '{}' in expression", t.text));
                    let n = self.node(SyntaxKind::ErrorNode);
                    self.bump_into(n);
                    n
                }
            },
            TokKind::Newline | TokKind::Indent | TokKind::Dedent | TokKind::Eof => {
                // Truncated expression (omission experiments): produce an
                // empty error node without consuming layout tokens.
                self.error_here("expression expected before end of input/line");
                self.node(SyntaxKind::ErrorNode)
            }
        }
    }

    fn parse_paren(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::ParenExpr);
        self.bump_into(n); // (
        if self.at_op(")") {
            self.bump_into(n);
            return n; // empty tuple
        }
        let first = self.parse_star_or_test();
        self.tree.add_child(n, first);
        if self.at_kw("for") || self.at_kw("async") {
            let comp = self.parse_comp_clauses();
            self.tree.add_child(n, comp);
        } else {
            while self.at_op(",") {
                self.bump_into(n);
                if self.at_op(")") {
                    break;
                }
                let e = self.parse_star_or_test();
                self.tree.add_child(n, e);
            }
        }
        self.expect_op(")", n);
        n
    }

    fn parse_list(&mut self) -> NodeId {
        let n = self.node(SyntaxKind::ListExpr);
        self.bump_into(n); // [
        if self.at_op("]") {
            self.bump_into(n);
            return n;
        }
        let first = self.parse_star_or_test();
        self.tree.add_child(n, first);
        if self.at_kw("for") || self.at_kw("async") {
            let comp = self.parse_comp_clauses();
            self.tree.add_child(n, comp);
        } else {
            while self.at_op(",") {
                self.bump_into(n);
                if self.at_op("]") {
                    break;
                }
                let e = self.parse_star_or_test();
                self.tree.add_child(n, e);
            }
        }
        self.expect_op("]", n);
        n
    }

    fn parse_dict_or_set(&mut self) -> NodeId {
        // Decide dict vs set after the first element.
        let open_tok = self.toks[self.pos].clone();
        self.pos += 1;
        if self.at_op("}") {
            let n = self.node(SyntaxKind::DictExpr);
            let open = self.tree.push(NodeKind::Leaf(open_tok));
            self.tree.add_child(n, open);
            self.bump_into(n);
            return n;
        }
        if self.at_op("**") {
            let n = self.node(SyntaxKind::DictExpr);
            let open = self.tree.push(NodeKind::Leaf(open_tok));
            self.tree.add_child(n, open);
            self.parse_dict_items(n);
            self.expect_op("}", n);
            return n;
        }
        let first = self.parse_star_or_test();
        if self.at_op(":") {
            let n = self.node(SyntaxKind::DictExpr);
            let open = self.tree.push(NodeKind::Leaf(open_tok));
            self.tree.add_child(n, open);
            let item = self.node(SyntaxKind::DictItem);
            self.tree.add_child(item, first);
            self.bump_into(item); // :
            let v = self.parse_test();
            self.tree.add_child(item, v);
            self.tree.add_child(n, item);
            if self.at_kw("for") || self.at_kw("async") {
                let comp = self.parse_comp_clauses();
                self.tree.add_child(n, comp);
            } else if self.at_op(",") {
                self.bump_into(n);
                self.parse_dict_items(n);
            }
            self.expect_op("}", n);
            return n;
        }
        // Set
        let n = self.node(SyntaxKind::SetExpr);
        let open = self.tree.push(NodeKind::Leaf(open_tok));
        self.tree.add_child(n, open);
        self.tree.add_child(n, first);
        if self.at_kw("for") || self.at_kw("async") {
            let comp = self.parse_comp_clauses();
            self.tree.add_child(n, comp);
        } else {
            while self.at_op(",") {
                self.bump_into(n);
                if self.at_op("}") {
                    break;
                }
                let e = self.parse_star_or_test();
                self.tree.add_child(n, e);
            }
        }
        self.expect_op("}", n);
        n
    }

    fn parse_dict_items(&mut self, dict: NodeId) {
        loop {
            if self.at_op("}") || self.at_eof() {
                break;
            }
            if self.at_op("**") {
                let item = self.node(SyntaxKind::DictItem);
                self.bump_into(item);
                let e = self.parse_test();
                self.tree.add_child(item, e);
                self.tree.add_child(dict, item);
            } else {
                let item = self.node(SyntaxKind::DictItem);
                let k = self.parse_test();
                self.tree.add_child(item, k);
                self.expect_op(":", item);
                let v = self.parse_test();
                self.tree.add_child(item, v);
                self.tree.add_child(dict, item);
            }
            if self.at_op(",") {
                self.bump_into(dict);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SyntaxKind::*;

    fn ok(src: &str) -> ParseTree {
        let t = parse(src);
        assert!(t.errors.is_empty(), "unexpected errors for {src:?}: {:?}", t.errors);
        assert!(t.check_integrity().is_ok());
        t
    }

    #[test]
    fn empty_module() {
        let t = ok("");
        assert_eq!(t.kind(t.root.unwrap()), Some(Module));
        assert_eq!(t.node(t.root.unwrap()).children.len(), 0);
    }

    #[test]
    fn simple_assignment() {
        let t = ok("x = 1\n");
        assert_eq!(t.find_kind(Assign).len(), 1);
    }

    #[test]
    fn chained_assignment() {
        let t = ok("a = b = c = 0\n");
        let assigns = t.find_kind(Assign);
        assert_eq!(assigns.len(), 1);
        // a (=, b) (=, c) (=, 0) → 7 children
        assert_eq!(t.node(assigns[0]).children.len(), 7);
    }

    #[test]
    fn augmented_and_annotated() {
        let t = ok("x += 1\ny: int = 5\nz: str\n");
        assert_eq!(t.find_kind(AugAssign).len(), 1);
        assert_eq!(t.find_kind(AnnAssign).len(), 2);
    }

    #[test]
    fn isprime_pe_class() {
        // Listing 1 of the paper.
        let src = "\
class IsPrime(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num
";
        let t = ok(src);
        assert_eq!(t.find_kind(ClassDef).len(), 1);
        assert_eq!(t.find_kind(FuncDef).len(), 2);
        assert_eq!(t.find_kind(IfStmt).len(), 1);
        assert_eq!(t.find_kind(ReturnStmt).len(), 1);
        assert!(t.find_funcdef("_process").is_some());
        assert!(t.find_funcdef("missing").is_none());
        assert_eq!(t.def_name(t.find_kind(ClassDef)[0]), Some("IsPrime"));
    }

    #[test]
    fn if_elif_else() {
        let t = ok("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        assert_eq!(t.find_kind(IfStmt).len(), 1);
        assert_eq!(t.find_kind(ElifClause).len(), 1);
        assert_eq!(t.find_kind(ElseClause).len(), 1);
    }

    #[test]
    fn while_and_for_with_else() {
        let t = ok("while x:\n    break\nelse:\n    pass\nfor i in r:\n    continue\nelse:\n    pass\n");
        assert_eq!(t.find_kind(WhileStmt).len(), 1);
        assert_eq!(t.find_kind(ForStmt).len(), 1);
        assert_eq!(t.find_kind(ElseClause).len(), 2);
        assert_eq!(t.find_kind(BreakStmt).len(), 1);
        assert_eq!(t.find_kind(ContinueStmt).len(), 1);
    }

    #[test]
    fn try_except_finally() {
        let t = ok("try:\n    f()\nexcept ValueError as e:\n    pass\nexcept:\n    pass\nfinally:\n    g()\n");
        assert_eq!(t.find_kind(TryStmt).len(), 1);
        assert_eq!(t.find_kind(ExceptClause).len(), 2);
        assert_eq!(t.find_kind(FinallyClause).len(), 1);
    }

    #[test]
    fn with_statement() {
        let t = ok("with open(p) as f, lock:\n    data = f.read()\n");
        assert_eq!(t.find_kind(WithStmt).len(), 1);
        assert_eq!(t.find_kind(WithItem).len(), 2);
    }

    #[test]
    fn imports() {
        let t = ok("import os\nimport os.path as osp\nfrom typing import List, Dict\nfrom . import sibling\nfrom ..pkg import thing\nfrom mod import *\n");
        assert_eq!(t.find_kind(ImportStmt).len(), 2);
        assert_eq!(t.find_kind(ImportFromStmt).len(), 4);
    }

    #[test]
    fn calls_args_kwargs() {
        let t = ok("f(1, x, key=2, *args, **kwargs)\n");
        assert_eq!(t.find_kind(Call).len(), 1);
        assert_eq!(t.find_kind(KeywordArgument).len(), 1);
        assert_eq!(t.find_kind(StarArgument).len(), 2);
        assert_eq!(t.find_kind(Argument).len(), 2);
    }

    #[test]
    fn attribute_and_subscript_chains() {
        let t = ok("x = a.b.c[0][1:2].d(e)\n");
        assert_eq!(t.find_kind(Attribute).len(), 3);
        assert_eq!(t.find_kind(Subscript).len(), 2);
        assert_eq!(t.find_kind(Slice).len(), 1, "{}", t.dump());
        assert_eq!(t.find_kind(Call).len(), 1);
    }

    #[test]
    fn operator_precedence_shape() {
        let t = ok("x = 1 + 2 * 3\n");
        // The `+` BinOp must be the outermost: its rhs is the `*` BinOp.
        let binops = t.find_kind(BinOp);
        assert_eq!(binops.len(), 2);
        let outer = binops[0];
        let leaves: Vec<_> = t
            .node(outer)
            .children
            .iter()
            .filter_map(|&c| t.leaf(c))
            .map(|tk| tk.text.clone())
            .collect();
        assert!(leaves.contains(&"+".to_string()), "{}", t.dump());
    }

    #[test]
    fn comparisons_and_membership() {
        let t = ok("a = x < y <= z\nb = k in d\nc = k not in d\nd_ = x is not None\n");
        assert_eq!(t.find_kind(Compare).len(), 4);
    }

    #[test]
    fn boolean_and_not() {
        let t = ok("x = a and b or not c\n");
        assert_eq!(t.find_kind(BoolOp).len(), 2);
        assert_eq!(t.find_kind(NotOp).len(), 1);
    }

    #[test]
    fn ternary_lambda_walrus() {
        let t = ok("y = (f(x) if x else g(x))\nh = lambda a, b=2: a + b\nif (n := next(it)) is not None:\n    use(n)\n");
        assert_eq!(t.find_kind(Ternary).len(), 1);
        assert_eq!(t.find_kind(Lambda).len(), 1);
        assert_eq!(t.find_kind(WalrusExpr).len(), 1);
    }

    #[test]
    fn collections_and_comprehensions() {
        let t = ok("a = [1, 2]\nb = {1: 'x', 2: 'y'}\nc = {1, 2}\nd = (1, 2)\ne = [i * i for i in r if i]\nf = {k: v for k, v in items}\ng = {x for x in s}\nh = sum(x for x in xs)\n");
        assert_eq!(t.find_kind(ListExpr).len(), 2);
        assert_eq!(t.find_kind(DictExpr).len(), 2);
        assert_eq!(t.find_kind(SetExpr).len(), 2);
        assert_eq!(t.find_kind(Comprehension).len(), 4);
        assert_eq!(t.find_kind(CompIf).len(), 1);
    }

    #[test]
    fn empty_collections() {
        let t = ok("a = []\nb = {}\nc = ()\n");
        assert_eq!(t.find_kind(ListExpr).len(), 1);
        assert_eq!(t.find_kind(DictExpr).len(), 1);
        assert_eq!(t.find_kind(ParenExpr).len(), 1);
    }

    #[test]
    fn decorators() {
        let t = ok("@staticmethod\n@registry.register('name')\ndef f():\n    pass\n");
        assert_eq!(t.find_kind(Decorator).len(), 2);
        let f = t.find_kind(FuncDef)[0];
        // Decorators are the first children of the funcdef.
        assert_eq!(t.kind(t.node(f).children[0]), Some(Decorator));
    }

    #[test]
    fn class_with_bases_and_keywords() {
        let t = ok("class A(B, metaclass=M):\n    pass\n");
        assert_eq!(t.find_kind(ClassDef).len(), 1);
        assert_eq!(t.find_kind(KeywordArgument).len(), 1);
    }

    #[test]
    fn return_yield_raise() {
        let t = ok("def g():\n    yield 1\n    yield from xs\n    return\ndef h():\n    raise ValueError('x') from err\n");
        assert_eq!(t.find_kind(YieldExpr).len(), 2);
        assert_eq!(t.find_kind(ReturnStmt).len(), 1);
        assert_eq!(t.find_kind(RaiseStmt).len(), 1);
    }

    #[test]
    fn global_nonlocal_assert_del() {
        let t = ok("def f():\n    global a, b\n    nonlocal_ = 1\n    assert a, 'msg'\n    del a\n");
        assert_eq!(t.find_kind(GlobalStmt).len(), 1);
        assert_eq!(t.find_kind(AssertStmt).len(), 1);
        assert_eq!(t.find_kind(DelStmt).len(), 1);
    }

    #[test]
    fn inline_suite() {
        let t = ok("if x: y = 1; z = 2\n");
        assert_eq!(t.find_kind(IfStmt).len(), 1);
        assert_eq!(t.find_kind(Assign).len(), 2);
    }

    #[test]
    fn semicolons_at_top_level() {
        let t = ok("a = 1; b = 2; c = 3\n");
        assert_eq!(t.find_kind(Assign).len(), 3);
    }

    #[test]
    fn tuple_assignment_unpacking() {
        let t = ok("a, b = b, a\nx, *rest = items\nfor k, v in d.items():\n    pass\n");
        assert!(t.find_kind(TupleExpr).len() >= 3);
        assert_eq!(t.find_kind(Starred).len(), 1);
    }

    #[test]
    fn async_constructs() {
        let t = ok("async def f():\n    await g()\n    async for x in aiter:\n        pass\n    async with ctx:\n        pass\n");
        assert_eq!(t.find_kind(FuncDef).len(), 1);
        assert_eq!(t.find_kind(AwaitExpr).len(), 1);
        assert_eq!(t.find_kind(ForStmt).len(), 1);
        assert_eq!(t.find_kind(WithStmt).len(), 1);
    }

    #[test]
    fn type_annotations_on_functions() {
        let t = ok("def f(a: int, b: str = 'x') -> bool:\n    return True\n");
        let params = t.find_kind(Param);
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn docstring_module_and_function() {
        let t = ok("\"\"\"Module doc.\"\"\"\ndef f():\n    \"\"\"Func doc.\"\"\"\n    return 1\n");
        assert_eq!(t.find_kind(ExprStmt).len(), 2);
    }

    // ---- error tolerance -------------------------------------------------

    #[test]
    fn recovers_from_bad_statement() {
        // NB: garbage must not *open* brackets — unbalanced `(` makes the
        // lexer treat the rest of the file as one logical line, which is
        // faithful Python tokenizer behaviour.
        let src = "x = 1\n= ) garbage ) =\ny = 2\n";
        let t = parse(src);
        assert!(!t.errors.is_empty());
        assert_eq!(t.find_kind(Assign).len(), 2, "statements around the error must survive");
    }

    #[test]
    fn truncated_function_parses_prefix() {
        // Simulates the paper's 50%-dropped snippets.
        let src = "def process(self, data):\n    total = 0\n    for item in data:\n        total +=";
        let t = parse(src);
        assert_eq!(t.find_kind(FuncDef).len(), 1);
        assert_eq!(t.find_kind(ForStmt).len(), 1);
        assert!(!t.errors.is_empty());
    }

    #[test]
    fn truncated_mid_call() {
        let src = "result = compute(a, b,";
        let t = parse(src);
        assert_eq!(t.find_kind(Call).len(), 1);
        assert!(!t.errors.is_empty());
    }

    #[test]
    fn unclosed_block_at_eof() {
        let src = "class A:\n    def f(self):\n";
        let t = parse(src);
        assert_eq!(t.find_kind(ClassDef).len(), 1);
        assert_eq!(t.find_kind(FuncDef).len(), 1);
    }

    #[test]
    fn missing_colon_recovers() {
        let src = "if x\n    y = 1\nz = 2\n";
        let t = parse(src);
        assert!(!t.errors.is_empty());
        // The trailing assignment must still be parsed.
        assert!(t.find_kind(Assign).iter().any(|&a| t.text_of(a).starts_with('z')));
    }

    #[test]
    fn expression_entry_point() {
        let t = parse_expression("random.randint(1, 1000)");
        assert!(t.errors.is_empty());
        assert_eq!(t.find_kind(Call).len(), 1);
        assert_eq!(t.find_kind(Attribute).len(), 1);
    }

    #[test]
    fn every_statement_parses_without_panic_on_fuzz_corpus() {
        // A grab-bag of tricky-but-valid lines.
        let corpus = [
            "x=-1",
            "f(**{'a':1})",
            "a[b][c](d)(e)[f]",
            "print(*args, sep=', ')",
            "x = y if z else w if v else u",
            "not not x",
            "-x ** 2",
            "a @ b @ c",
            "x = (yield)",
            "l = [[], [[]], [[[]]]]",
            "d = {(1,2): [3,4], **other}",
            "s = f\"{a}{b!r:>10}\"",
            "t = a,",
            "del d[k]",
            "assert isinstance(x, (int, float))",
            "x = ...",
        ];
        for line in corpus {
            let t = parse(&format!("{line}\n"));
            assert!(t.errors.is_empty(), "{line:?} produced {:?}\n{}", t.errors, t.dump());
        }
    }

    #[test]
    fn leaves_reconstruct_source_tokens() {
        let src = "x = f(1, 2)\n";
        let t = ok(src);
        assert_eq!(t.text_of(t.root.unwrap()), "x = f ( 1 , 2 )");
    }
}
