//! Lexical tokens for the Python subset.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The coarse category of a token.
///
/// `Keyword` is distinguished from `Name` at lex time using the fixed
/// Python 3.10 keyword table (`is_keyword`); Aroma's featurisation treats
/// keywords as label tokens and names as abstractable variables, so the
/// distinction must be made before parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokKind {
    /// Identifier that is not a keyword.
    Name,
    /// Reserved word (`def`, `class`, `if`, …).
    Keyword,
    /// Integer, float, or imaginary literal (kept verbatim).
    Number,
    /// String literal, including its quotes and any prefix (`f`, `r`, `b`).
    Str,
    /// Operator or punctuation (`+`, `**`, `->`, `(`, `:`, …).
    Op,
    /// Logical end of a statement line.
    Newline,
    /// Increase in indentation depth.
    Indent,
    /// Decrease in indentation depth.
    Dedent,
    /// End of input.
    Eof,
}

impl TokKind {
    /// True for tokens that carry no source text of their own.
    pub fn is_synthetic(self) -> bool {
        matches!(
            self,
            TokKind::Newline | TokKind::Indent | TokKind::Dedent | TokKind::Eof
        )
    }
}

/// A single lexical token with its source position (1-based line, 0-based column).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    pub fn new(kind: TokKind, text: impl Into<String>, line: u32, col: u32) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
            col,
        }
    }

    /// True if this token is the given operator/punctuation text.
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }

    /// True if this token is the given keyword.
    pub fn is_kw(&self, s: &str) -> bool {
        self.kind == TokKind::Keyword && self.text == s
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TokKind::Newline => write!(f, "<NEWLINE>"),
            TokKind::Indent => write!(f, "<INDENT>"),
            TokKind::Dedent => write!(f, "<DEDENT>"),
            TokKind::Eof => write!(f, "<EOF>"),
            _ => write!(f, "{}", self.text),
        }
    }
}

/// The Python 3.10 keyword table.
///
/// Soft keywords (`match`, `case`) are deliberately *not* included: treating
/// them as plain names keeps ordinary code that uses them as identifiers
/// parseable, which is the common case in scientific PE code.
pub const KEYWORDS: &[&str] = &[
    "False", "None", "True", "and", "as", "assert", "async", "await", "break", "class", "continue",
    "def", "del", "elif", "else", "except", "finally", "for", "from", "global", "if", "import",
    "in", "is", "lambda", "nonlocal", "not", "or", "pass", "raise", "return", "try", "while",
    "with", "yield",
];

/// Is `s` a (hard) Python keyword?
pub fn is_keyword(s: &str) -> bool {
    // The table is small and sorted; a binary search avoids a lazy static set.
    KEYWORDS.binary_search(&s).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_table_is_sorted() {
        let mut sorted = KEYWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KEYWORDS, "binary_search requires sorted KEYWORDS");
    }

    #[test]
    fn keyword_lookup() {
        assert!(is_keyword("def"));
        assert!(is_keyword("lambda"));
        assert!(is_keyword("None"));
        assert!(!is_keyword("match"));
        assert!(!is_keyword("self"));
        assert!(!is_keyword(""));
    }

    #[test]
    fn token_predicates() {
        let t = Token::new(TokKind::Op, ":", 1, 0);
        assert!(t.is_op(":"));
        assert!(!t.is_op("::"));
        assert!(!t.is_kw(":"));
        let k = Token::new(TokKind::Keyword, "def", 1, 0);
        assert!(k.is_kw("def"));
        assert!(!k.is_op("def"));
    }

    #[test]
    fn synthetic_kinds() {
        assert!(TokKind::Newline.is_synthetic());
        assert!(TokKind::Indent.is_synthetic());
        assert!(TokKind::Dedent.is_synthetic());
        assert!(TokKind::Eof.is_synthetic());
        assert!(!TokKind::Name.is_synthetic());
        assert!(!TokKind::Op.is_synthetic());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Token::new(TokKind::Name, "x", 1, 0).to_string(), "x");
        assert_eq!(Token::new(TokKind::Newline, "", 1, 0).to_string(), "<NEWLINE>");
        assert_eq!(Token::new(TokKind::Indent, "", 1, 0).to_string(), "<INDENT>");
    }
}
