//! `pyparse` — a hand-written lexer and error-tolerant recursive-descent
//! parser for a large subset of Python 3, producing *concrete* parse trees.
//!
//! This crate is the reproduction's substitute for the ANTLR-generated
//! Python parser used by Laminar 2.0 (paper §II-F). Aroma-style structural
//! search (paper §II-E, §VI) consumes the *shape* of the parse tree —
//! keyword and punctuation tokens are kept as leaves, and every grammar
//! production becomes an internal node — so the tree this parser produces
//! carries the same information an ANTLR parse tree would.
//!
//! Two properties matter for the paper's experiments:
//!
//! 1. **Concrete trees.** Unlike an AST, the tree keeps `if`, `:`, `(`, `)`
//!    … as leaves. Aroma's Simplified Parse Tree (SPT) labels are built by
//!    concatenating the non-name leaves of a node, so they must survive
//!    parsing.
//! 2. **Error tolerance.** Laminar 2.0's headline improvement is structural
//!    search over *incomplete* code fragments. The parser therefore never
//!    fails outright: on a syntax error it records a diagnostic, skips to a
//!    synchronisation point (end of line / dedent) and resumes, and a
//!    truncated input simply yields a tree for the prefix it could parse.
//!
//! # Quick example
//!
//! ```
//! let src = "class IsPrime(IterativePE):\n    def _process(self, num):\n        return num\n";
//! let tree = pyparse::parse(src);
//! assert!(tree.errors.is_empty());
//! let classes = tree.find_kind(pyparse::SyntaxKind::ClassDef);
//! assert_eq!(classes.len(), 1);
//! ```

pub mod lexer;
pub mod parser;
pub mod snippets;
pub mod token;
pub mod tree;
pub mod visitor;

pub use lexer::{lex, LexError, Lexer};
pub use parser::{parse, parse_expression, ParseError, Parser};
pub use snippets::{drop_suffix_fraction, drop_tokens_fraction, line_count, truncate_lines};
pub use token::{TokKind, Token};
pub use tree::{Node, NodeId, NodeKind, ParseTree, SyntaxKind};
pub use visitor::{walk, Visit};
