//! Snippet-manipulation utilities for the omission experiments (§VII-D).
//!
//! The paper evaluates code-to-code search while "progressively reducing the
//! input snippet sizes" — 0 %, 50 %, 75 % and 90 % of the code dropped. These
//! helpers implement that protocol deterministically: we keep a *prefix* of
//! the snippet (dropping the suffix), which models a developer who has typed
//! the beginning of a PE and wants recommendations for the rest.

/// Number of non-blank lines in `src`.
pub fn line_count(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Keep the first `keep` non-blank lines of `src` (blank lines between kept
/// lines are preserved so indentation context survives).
pub fn truncate_lines(src: &str, keep: usize) -> String {
    let mut out = String::new();
    let mut kept = 0;
    for line in src.lines() {
        if kept >= keep {
            break;
        }
        out.push_str(line);
        out.push('\n');
        if !line.trim().is_empty() {
            kept += 1;
        }
    }
    out
}

/// Drop the trailing `fraction` (0.0..=1.0) of the snippet's non-blank
/// lines, always keeping at least one line of a non-empty snippet.
///
/// `drop_suffix_fraction(src, 0.75)` keeps the first quarter.
pub fn drop_suffix_fraction(src: &str, fraction: f64) -> String {
    let total = line_count(src);
    if total == 0 {
        return String::new();
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let keep = ((total as f64) * (1.0 - fraction)).round() as usize;
    truncate_lines(src, keep.max(1))
}

/// Token-granularity variant: keep the first `(1-fraction)` of the
/// whitespace-separated tokens of the last kept line too. Used by property
/// tests to stress mid-expression truncation.
pub fn drop_tokens_fraction(src: &str, fraction: f64) -> String {
    let fraction = fraction.clamp(0.0, 1.0);
    let chars: Vec<char> = src.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let keep = ((chars.len() as f64) * (1.0 - fraction)).round() as usize;
    chars[..keep.max(1).min(chars.len())].iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
class Foo:
    def f(self):
        a = 1

        b = 2
        return a + b
";

    #[test]
    fn counts_non_blank_lines() {
        assert_eq!(line_count(SRC), 5);
        assert_eq!(line_count(""), 0);
        assert_eq!(line_count("\n\n"), 0);
    }

    #[test]
    fn zero_drop_is_identity_modulo_trailing_blanks() {
        let kept = drop_suffix_fraction(SRC, 0.0);
        assert_eq!(line_count(&kept), 5);
        assert!(kept.contains("return a + b"));
    }

    #[test]
    fn half_drop_keeps_prefix() {
        let kept = drop_suffix_fraction(SRC, 0.5);
        assert_eq!(line_count(&kept), 3);
        assert!(kept.starts_with("class Foo:"));
        assert!(!kept.contains("return"));
    }

    #[test]
    fn ninety_percent_drop_keeps_at_least_one_line() {
        let kept = drop_suffix_fraction(SRC, 0.9);
        assert_eq!(line_count(&kept), 1);
        assert!(kept.starts_with("class Foo:"));
        let all = drop_suffix_fraction(SRC, 1.0);
        assert_eq!(line_count(&all), 1);
    }

    #[test]
    fn blank_lines_between_kept_lines_survive() {
        let kept = truncate_lines(SRC, 4);
        assert!(kept.contains("\n\n"), "{kept:?}");
    }

    #[test]
    fn truncated_snippets_still_parse() {
        for f in [0.0, 0.5, 0.75, 0.9] {
            let kept = drop_suffix_fraction(SRC, f);
            let tree = crate::parse(&kept);
            assert!(tree.root.is_some());
            assert!(
                !tree.find_kind(crate::SyntaxKind::ClassDef).is_empty(),
                "fraction {f}: class header must survive"
            );
        }
    }

    #[test]
    fn char_truncation_never_empty() {
        assert_eq!(drop_tokens_fraction("abc", 1.0), "a");
        assert_eq!(drop_tokens_fraction("", 0.5), "");
        assert_eq!(drop_tokens_fraction("abcd", 0.5), "ab");
    }
}
