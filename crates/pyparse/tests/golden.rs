//! Golden parse-tree tests: exact tree dumps for representative programs.
//! These freeze the concrete tree shape the SPT layer depends on — any
//! grammar change that silently reshapes trees (and therefore Aroma
//! features and stored embeddings) fails here first.

use pyparse::parse;

fn dump(src: &str) -> String {
    let tree = parse(src);
    assert!(tree.errors.is_empty(), "unexpected errors: {:?}", tree.errors);
    tree.dump()
}

#[test]
fn golden_assignment_with_arithmetic() {
    assert_eq!(
        dump("x = 1 + 2 * 3\n"),
        "\
module
  assign
    x
    =
    bin_op
      1
      +
      bin_op
        2
        *
        3
"
    );
}

#[test]
fn golden_if_statement() {
    assert_eq!(
        dump("if x < 2:\n    return x\n"),
        "\
module
  if_stmt
    if
    compare
      x
      <
      2
    :
    block
      return_stmt
        return
        x
"
    );
}

#[test]
fn golden_function_with_call() {
    assert_eq!(
        dump("def f(a):\n    return g(a, 1)\n"),
        "\
module
  funcdef
    def
    f
    parameters
      (
      param
        a
      )
    :
    block
      return_stmt
        return
        call
          g
          arguments
            (
            argument
              a
            ,
            argument
              1
            )
"
    );
}

#[test]
fn golden_attribute_chain_subscript() {
    assert_eq!(
        dump("y = a.b[0]\n"),
        "\
module
  assign
    y
    =
    subscript
      attribute
        a
        .
        b
      [
      0
      ]
"
    );
}

#[test]
fn golden_class_with_docstring() {
    assert_eq!(
        dump("class A(Base):\n    \"\"\"Doc.\"\"\"\n    pass\n"),
        "\
module
  classdef
    class
    A
    (
    argument
      Base
    )
    :
    block
      expr_stmt
        \"\"\"Doc.\"\"\"
      pass_stmt
        pass
"
    );
}

#[test]
fn golden_for_loop_augassign() {
    assert_eq!(
        dump("for i in xs:\n    total += i\n"),
        "\
module
  for_stmt
    for
    i
    in
    xs
    :
    block
      aug_assign
        total
        +=
        i
"
    );
}

#[test]
fn golden_comprehension_argument() {
    assert_eq!(
        dump("s = sum(x for x in xs)\n"),
        "\
module
  assign
    s
    =
    call
      sum
      arguments
        (
        argument
          x
          comprehension
            comp_for
              for
              x
              in
              xs
        )
"
    );
}

#[test]
fn golden_listing1_isprime_condition() {
    // The paper's Listing 1 core expression.
    assert_eq!(
        dump("if all(num % i != 0 for i in range(2, num)):\n    pass\n"),
        "\
module
  if_stmt
    if
    call
      all
      arguments
        (
        argument
          compare
            bin_op
              num
              %
              i
            !=
            0
          comprehension
            comp_for
              for
              i
              in
              call
                range
                arguments
                  (
                  argument
                    2
                  ,
                  argument
                    num
                  )
        )
    :
    block
      pass_stmt
        pass
"
    );
}
