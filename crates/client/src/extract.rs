//! Workflow-file analysis: find the PEs inside a dispel4py workflow source
//! (the client-side half of Fig. 5a's "Found PEs … Found workflows").
//!
//! A class is considered a PE when it extends one of the dispel4py base
//! classes (`GenericPE`, `IterativePE`, `ProducerPE`, `ConsumerPE`) or any
//! base whose name ends in `PE`.

use laminar_server::PeSubmission;
use pyparse::{SyntaxKind, TokKind};

/// Extract `(workflow PE submissions)` from a workflow file's source.
pub fn extract_pes_from_source(code: &str) -> Vec<PeSubmission> {
    let tree = pyparse::parse(code);
    let mut out = Vec::new();
    for class in tree.find_kind(SyntaxKind::ClassDef) {
        let Some(name) = tree.def_name(class) else {
            continue;
        };
        // Base names: Name leaves of Argument children of the classdef.
        let mut is_pe = false;
        for &c in &tree.node(class).children {
            if tree.kind(c) == Some(SyntaxKind::Argument) {
                let base = tree
                    .leaves_under(c)
                    .iter()
                    .find(|t| t.kind == TokKind::Name)
                    .map(|t| t.text.clone());
                if let Some(base) = base {
                    if base.ends_with("PE") {
                        is_pe = true;
                    }
                }
            }
        }
        if is_pe {
            out.push(PeSubmission {
                name: name.to_string(),
                code: reconstruct_class(code, name),
                description: None,
            });
        }
    }
    out
}

/// Slice the class's source text out of the file (line-based: from the
/// `class <name>` line to the next top-level statement).
fn reconstruct_class(code: &str, name: &str) -> String {
    let lines: Vec<&str> = code.lines().collect();
    let header = format!("class {name}");
    let Some(start) = lines
        .iter()
        .position(|l| l.trim_start().starts_with(&header))
    else {
        return String::new();
    };
    let mut end = lines.len();
    for (i, line) in lines.iter().enumerate().skip(start + 1) {
        let trimmed = line.trim_start();
        if !trimmed.is_empty()
            && !line.starts_with(char::is_whitespace)
            && !trimmed.starts_with('#')
        {
            end = i;
            break;
        }
    }
    let mut s = lines[start..end].join("\n");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORKFLOW_FILE: &str = "\
from dispel4py.base import IterativePE, ProducerPE, ConsumerPE
from dispel4py.workflow_graph import WorkflowGraph
import random

class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def _process(self, num):
        print('the num {} is prime'.format(num))

class Helper:
    pass

producer = NumberProducer()
isprime = IsPrime()
printer = PrintPrime()
graph = WorkflowGraph()
graph.connect(producer, 'output', isprime, 'input')
graph.connect(isprime, 'output', printer, 'input')
";

    #[test]
    fn finds_exactly_the_pes_fig5a() {
        let pes = extract_pes_from_source(WORKFLOW_FILE);
        let names: Vec<&str> = pes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["NumberProducer", "IsPrime", "PrintPrime"]);
    }

    #[test]
    fn class_code_slices_are_self_contained() {
        let pes = extract_pes_from_source(WORKFLOW_FILE);
        let isprime = pes.iter().find(|p| p.name == "IsPrime").unwrap();
        assert!(isprime.code.starts_with("class IsPrime(IterativePE):"));
        assert!(isprime.code.contains("def _process"));
        assert!(!isprime.code.contains("PrintPrime"), "{}", isprime.code);
        // And each slice parses on its own.
        let tree = pyparse::parse(&isprime.code);
        assert!(tree.errors.is_empty(), "{:?}", tree.errors);
    }

    #[test]
    fn non_pe_classes_ignored() {
        let pes = extract_pes_from_source(WORKFLOW_FILE);
        assert!(pes.iter().all(|p| p.name != "Helper"));
    }

    #[test]
    fn empty_and_pe_free_sources() {
        assert!(extract_pes_from_source("").is_empty());
        assert!(extract_pes_from_source("x = 1\n").is_empty());
        assert!(extract_pes_from_source("class A(Base):\n    pass\n").is_empty());
    }

    #[test]
    fn custom_pe_base_suffix_accepted() {
        let src = "class Mine(StatefulCounterPE):\n    def _process(self, x):\n        return x\n";
        let pes = extract_pes_from_source(src);
        assert_eq!(pes.len(), 1);
        assert_eq!(pes[0].name, "Mine");
    }
}
