//! The client library: one method per Table I function.
//!
//! The client is written once against the unified
//! [`Connection`] trait — the in-process [`Transport`] and the TCP
//! [`laminar_server::NetClientTransport`] plug in interchangeably. A
//! [`RetryPolicy`] (exponential backoff + jitter) re-sends requests that
//! failed transiently: connect refused and typed `Busy` rejections are
//! always retried (the request provably never dispatched), timeouts only
//! for idempotent requests, and a `run` whose stream already started is
//! never re-sent.
//!
//! Every value endpoint is declared once in [`crate::endpoint`] (typed
//! params, typed output, idempotency class, CLI verb); the generic
//! [`LaminarClient::call`] drives envelope, retry and parsing for all
//! of them. The Table I methods below are thin named wrappers over
//! those declarations, kept so call sites read like the paper.

use crate::endpoint::{self, Endpoint};
use crate::extract::extract_pes_from_source;
use crossbeam_channel::Receiver;
use d4py::Data;
use laminar_server::protocol::SemanticHit;
use laminar_server::protocol::{
    content_hash, BatchItemWire, BatchOutcomeWire, FaultPolicyWire, PeInfo, RecommendationHit,
    ResourceRefWire, RunInputWire, RunMode, WorkflowInfo,
};
use laminar_server::{
    Connection, ConnectionError, DeliveryMode, EmbeddingType, Ident, LaminarServer,
    MetricsSnapshot, PeSubmission, Reply, Request, Response, SearchScope, Transport, WireFrame,
};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    NotLoggedIn,
    Server(String),
    /// §IV-F: the server needs these resources uploaded first.
    NeedResources(Vec<String>),
    UnexpectedResponse(String),
    /// A typed connection-level failure that survived the retry policy
    /// (or was never retryable).
    Connection(ConnectionError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::NotLoggedIn => write!(f, "not logged in"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::NeedResources(r) => write!(f, "server needs resources: {r:?}"),
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
            ClientError::Connection(e) => write!(f, "connection error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Exponential-backoff retry policy for transient connection failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `attempt` (1-based): exponential,
    /// capped, plus up to 50% jitter so a herd of rejected clients does
    /// not retry in lockstep.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16));
        let capped = exp.min(self.max_delay);
        // Jitter without a rand dependency: the clock's subsecond nanos
        // are as good as random across concurrent clients.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::from(d.subsec_nanos()))
            .unwrap_or(0);
        capped + capped.mul_f64((nanos % 1000) as f64 / 2000.0)
    }
}

/// Result of the tokenless `health` endpoint: liveness, readiness and
/// the storage-health facts behind them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The server answered at all.
    pub live: bool,
    /// The server can accept mutations (storage healthy).
    pub ready: bool,
    /// Current storage state.
    pub storage: laminar_server::StorageStateWire,
    /// Most recent persistence error, if any has ever occurred.
    pub last_persist_error: Option<String>,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Healthy→Degraded transitions since start.
    pub degraded_transitions: u64,
}

/// Result of a registry compaction (`laminar compact`): what the snapshot
/// absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// WAL records folded into the snapshot.
    pub wal_records: u64,
    /// WAL bytes reclaimed.
    pub wal_bytes: u64,
    /// Size of the snapshot written.
    pub snapshot_bytes: u64,
}

/// Result of registering a workflow file (Fig. 5a's output).
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredWorkflow {
    /// `(PE name, id)` pairs, in file order.
    pub pes: Vec<(String, u64)>,
    /// `(workflow name, id)`.
    pub workflow: (String, u64),
}

/// Result of a code completion: `(source PE (id, name) if any, suggested
/// lines, progress fraction)`.
pub type CompletionResult = (Option<(u64, String)>, Vec<String>, f32);

/// Collected output of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    pub lines: Vec<String>,
    pub infos: Vec<String>,
    pub summaries: Vec<String>,
    pub ok: bool,
    /// Datums the enactment supervisor gave up on (`DeadLetter` policy).
    pub dead_letters: Vec<laminar_server::protocol::DeadLetterEntry>,
    /// Fault counters for the run; `None` when the run was fault-free
    /// (the server only sends the frame on a non-clean run).
    pub fault_stats: Option<laminar_server::protocol::FaultStats>,
}

/// The Laminar client.
pub struct LaminarClient {
    connection: Box<dyn Connection>,
    retry: RetryPolicy,
    /// How retry backoff waits. Production sleeps the thread; the
    /// deterministic simulation harness injects a virtual-clock sleeper
    /// so backoff never consumes real time.
    sleeper: Arc<dyn Fn(Duration) + Send + Sync>,
    token: Option<u64>,
    /// Local resource staging area: name → bytes (replaces 1.0's
    /// `resources/` directory — §IV-F "direct file path specification").
    staged_resources: Vec<(String, Vec<u8>)>,
}

impl LaminarClient {
    /// Connect in-process with HTTP/2-style streaming delivery (the 2.0
    /// default).
    pub fn connect(server: Arc<LaminarServer>) -> Self {
        Self::over(Transport::new(server, DeliveryMode::Streaming))
    }

    /// Connect over an explicit in-process transport (benches use a Batch
    /// transport with a latency model for the Laminar 1.0 baseline).
    pub fn with_transport(transport: Transport) -> Self {
        Self::over(transport)
    }

    /// Connect to a TCP server (see [`laminar_server::NetServer`]).
    pub fn connect_tcp(addr: std::net::SocketAddr) -> Self {
        Self::over(laminar_server::NetClientTransport::new(addr))
    }

    /// Connect over any [`Connection`] implementation.
    pub fn over<T: Connection + 'static>(connection: T) -> Self {
        LaminarClient {
            connection: Box::new(connection),
            retry: RetryPolicy::default(),
            sleeper: Arc::new(|d| std::thread::sleep(d)),
            token: None,
            staged_resources: Vec::new(),
        }
    }

    /// Replace the retry policy (default: 4 attempts, 25 ms base,
    /// 1 s cap).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replace how retry backoff waits (default: `thread::sleep`). The
    /// simulation harness injects a virtual-clock sleeper here.
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Fn(Duration) + Send + Sync>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// The underlying connection's options.
    pub fn connection_options(&self) -> laminar_server::ConnOptions {
        self.connection.options()
    }

    fn token(&self) -> Result<u64, ClientError> {
        self.token.ok_or(ClientError::NotLoggedIn)
    }

    /// Issue a typed endpoint call: the one generic path behind every
    /// Table I method. Builds the wire request from the [`Endpoint`]
    /// declaration (supplying the session token), sends it under the
    /// retry policy — whose timeout eligibility comes from the same
    /// declaration table — and parses the typed result.
    pub fn call<E: Endpoint>(&self, params: E::Params) -> Result<E::Output, ClientError> {
        E::response(self.value(E::request(self.token, params)?)?)
    }

    /// Issue one request through the connection, applying the retry
    /// policy: `Unavailable`/`Busy` always retry (the request provably
    /// never dispatched — the server rejects *before* handing the request
    /// to a worker); timeouts retry only for idempotent requests (per
    /// the [`crate::endpoint::ENDPOINTS`] declarations). A run whose
    /// stream already opened comes back as `Ok(Reply::Stream)` and is
    /// therefore never re-sent from here.
    fn dispatch(&self, req: Request) -> Result<Reply, ClientError> {
        let idempotent = endpoint::is_idempotent(&req);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.connection.call(req.clone()) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Degraded is retried only for idempotent requests:
                    // the server rejected before applying anything, but
                    // whether a re-send can duplicate work is an endpoint
                    // property, and the degraded spell may outlast the
                    // whole backoff schedule anyway.
                    let retryable = e.is_transient()
                        || (idempotent
                            && matches!(
                                e,
                                ConnectionError::TimedOut { .. } | ConnectionError::Degraded { .. }
                            ));
                    if !retryable || attempt >= self.retry.max_attempts {
                        return Err(ClientError::Connection(e));
                    }
                    let hint = match &e {
                        ConnectionError::Busy { retry_after_ms }
                        | ConnectionError::Degraded { retry_after_ms, .. } => {
                            Duration::from_millis(*retry_after_ms)
                        }
                        _ => Duration::ZERO,
                    };
                    (self.sleeper)(self.retry.backoff(attempt).max(hint));
                }
            }
        }
    }

    fn value(&self, req: Request) -> Result<Response, ClientError> {
        match self.dispatch(req)? {
            Reply::Value(Response::Error(e)) => Err(ClientError::Server(e)),
            Reply::Value(v) => Ok(v),
            Reply::Stream(_) => Err(ClientError::UnexpectedResponse("stream".into())),
        }
    }

    /// Fetch the server's metrics snapshot (the `laminar metrics` verb).
    pub fn metrics(&self) -> Result<MetricsSnapshot, ClientError> {
        self.call::<endpoint::Metrics>(())
    }

    /// Fetch the server's liveness/readiness and storage health (the
    /// tokenless `laminar health` verb — suitable for container
    /// healthchecks).
    pub fn health(&self) -> Result<HealthReport, ClientError> {
        self.call::<endpoint::Health>(())
    }

    /// Force a registry snapshot compaction (the `laminar compact` verb).
    /// Returns what was folded into the snapshot; errors when the server
    /// runs without a data directory. Safe to retry: compacting an
    /// already-compacted registry just rewrites the same snapshot.
    pub fn compact(&self) -> Result<CompactReport, ClientError> {
        self.call::<endpoint::Compact>(())
    }

    // ---- auth -----------------------------------------------------------

    /// `register`: create a user and start a session.
    pub fn register(&mut self, username: &str, password: &str) -> Result<(), ClientError> {
        let t = self.call::<endpoint::RegisterUser>((username.into(), password.into()))?;
        self.token = Some(t);
        Ok(())
    }

    /// `login`: authenticate an existing user.
    pub fn login(&mut self, username: &str, password: &str) -> Result<(), ClientError> {
        let t = self.call::<endpoint::Login>((username.into(), password.into()))?;
        self.token = Some(t);
        Ok(())
    }

    // ---- registration -----------------------------------------------------

    /// `register_PE`: register one PE (description auto-generated when
    /// `None` — §IV-C).
    pub fn register_pe(
        &self,
        name: &str,
        code: &str,
        description: Option<&str>,
    ) -> Result<u64, ClientError> {
        self.call::<endpoint::RegisterPe>(PeSubmission {
            name: name.into(),
            code: code.into(),
            description: description.map(str::to_string),
        })
    }

    /// `register_Workflow`: analyse a workflow source, register its PEs and
    /// the workflow itself (Fig. 5a).
    pub fn register_workflow(
        &self,
        workflow_name: &str,
        source: &str,
    ) -> Result<RegisteredWorkflow, ClientError> {
        let pes = extract_pes_from_source(source);
        self.call::<endpoint::RegisterWorkflow>((workflow_name.into(), source.into(), None, pes))
    }

    /// `ingest` (v6): register a batch of PEs and workflows in one
    /// request. The server pipelines the analysis stages across items,
    /// commits the whole batch under a single WAL fsync and publishes
    /// one search-index snapshot. Outcomes come back per item, in
    /// submission order — a failed item does not abort the rest.
    pub fn register_batch(
        &self,
        items: Vec<BatchItemWire>,
    ) -> Result<Vec<BatchOutcomeWire>, ClientError> {
        self.call::<endpoint::RegisterBatch>(items)
    }

    // ---- reads -------------------------------------------------------------

    /// `get_PE`.
    pub fn get_pe(&self, ident: impl Into<Ident>) -> Result<PeInfo, ClientError> {
        self.call::<endpoint::GetPe>(ident.into())
    }

    /// `get_Workflow`.
    pub fn get_workflow(&self, ident: impl Into<Ident>) -> Result<WorkflowInfo, ClientError> {
        self.call::<endpoint::GetWorkflow>(ident.into())
    }

    /// `get_PEs_By_Workflow`.
    pub fn get_pes_by_workflow(&self, ident: impl Into<Ident>) -> Result<Vec<PeInfo>, ClientError> {
        self.call::<endpoint::GetPesByWorkflow>(ident.into())
    }

    /// `get_Registry`.
    pub fn get_registry(&self) -> Result<(Vec<PeInfo>, Vec<WorkflowInfo>), ClientError> {
        self.call::<endpoint::GetRegistry>(())
    }

    /// `describe`.
    pub fn describe(
        &self,
        scope: SearchScope,
        ident: impl Into<Ident>,
    ) -> Result<String, ClientError> {
        self.call::<endpoint::Describe>((scope, ident.into()))
    }

    // ---- updates / removals ---------------------------------------------------

    /// `update_PE_Description`.
    pub fn update_pe_description(
        &self,
        ident: impl Into<Ident>,
        description: &str,
    ) -> Result<(), ClientError> {
        self.call::<endpoint::UpdatePeDescription>((ident.into(), description.into()))
    }

    /// `update_Workflow_Description`.
    pub fn update_workflow_description(
        &self,
        ident: impl Into<Ident>,
        description: &str,
    ) -> Result<(), ClientError> {
        self.call::<endpoint::UpdateWorkflowDescription>((ident.into(), description.into()))
    }

    /// `remove_PE`.
    pub fn remove_pe(&self, ident: impl Into<Ident>) -> Result<(), ClientError> {
        self.call::<endpoint::RemovePe>(ident.into())
    }

    /// `remove_Workflow`.
    pub fn remove_workflow(&self, ident: impl Into<Ident>) -> Result<(), ClientError> {
        self.call::<endpoint::RemoveWorkflow>(ident.into())
    }

    /// `remove_All`.
    pub fn remove_all(&self) -> Result<(), ClientError> {
        self.call::<endpoint::RemoveAll>(())
    }

    // ---- search -------------------------------------------------------------

    /// `search_Registry_Literal` (server-default result cap).
    pub fn search_registry_literal(
        &self,
        scope: SearchScope,
        term: &str,
    ) -> Result<(Vec<PeInfo>, Vec<WorkflowInfo>), ClientError> {
        self.search_registry_literal_top(scope, term, None)
    }

    /// `search_Registry_Literal` with an explicit result cap (the CLI's
    /// `--top N`; `None` keeps the server default).
    pub fn search_registry_literal_top(
        &self,
        scope: SearchScope,
        term: &str,
        top_n: Option<usize>,
    ) -> Result<(Vec<PeInfo>, Vec<WorkflowInfo>), ClientError> {
        self.call::<endpoint::SearchLiteral>((scope, term.into(), top_n))
    }

    /// `search_Registry_Semantic` (Fig. 8, server-default top-k).
    pub fn search_registry_semantic(
        &self,
        scope: SearchScope,
        query: &str,
    ) -> Result<Vec<SemanticHit>, ClientError> {
        self.search_registry_semantic_top(scope, query, None)
    }

    /// `search_Registry_Semantic` with an explicit top-k.
    pub fn search_registry_semantic_top(
        &self,
        scope: SearchScope,
        query: &str,
        top_n: Option<usize>,
    ) -> Result<Vec<SemanticHit>, ClientError> {
        self.call::<endpoint::SearchSemantic>((scope, query.into(), top_n))
    }

    /// `code_Recommendation` (Fig. 9, server-default top-k).
    pub fn code_recommendation(
        &self,
        scope: SearchScope,
        snippet: &str,
        embedding_type: EmbeddingType,
    ) -> Result<Vec<RecommendationHit>, ClientError> {
        self.code_recommendation_top(scope, snippet, embedding_type, None)
    }

    /// `code_Recommendation` with an explicit top-k.
    pub fn code_recommendation_top(
        &self,
        scope: SearchScope,
        snippet: &str,
        embedding_type: EmbeddingType,
        top_n: Option<usize>,
    ) -> Result<Vec<RecommendationHit>, ClientError> {
        self.call::<endpoint::CodeRecommendation>((scope, snippet.into(), embedding_type, top_n))
    }

    /// Context-aware code completion (§III): returns
    /// `(source PE (id, name) if any, suggested lines, progress)`.
    pub fn code_completion(&self, snippet: &str) -> Result<CompletionResult, ClientError> {
        self.call::<endpoint::CodeCompletion>(snippet.into())
    }

    // ---- resources -------------------------------------------------------------

    /// Stage a resource file for the next run (§IV-F: direct file-path
    /// specification instead of a `resources/` directory).
    pub fn stage_resource(&mut self, name: &str, bytes: Vec<u8>) {
        self.staged_resources.retain(|(n, _)| n != name);
        self.staged_resources.push((name.to_string(), bytes));
    }

    fn resource_refs(&self) -> Vec<ResourceRefWire> {
        self.staged_resources
            .iter()
            .map(|(name, bytes)| ResourceRefWire {
                name: name.clone(),
                content_hash: content_hash(bytes),
            })
            .collect()
    }

    // ---- runs -------------------------------------------------------------------

    /// `run`: sequential execution (Table I).
    pub fn run(&self, ident: impl Into<Ident>, input: u64) -> Result<RunOutput, ClientError> {
        self.run_mode(
            ident.into(),
            RunInputWire::Iterations(input),
            RunMode::Sequential,
            false,
        )
    }

    /// `run` with explicit data items.
    pub fn run_data(
        &self,
        ident: impl Into<Ident>,
        data: Vec<Data>,
    ) -> Result<RunOutput, ClientError> {
        self.run_mode(
            ident.into(),
            RunInputWire::Data(data),
            RunMode::Sequential,
            false,
        )
    }

    /// `run_multiprocess`: static parallel execution.
    pub fn run_multiprocess(
        &self,
        ident: impl Into<Ident>,
        input: u64,
        processes: usize,
    ) -> Result<RunOutput, ClientError> {
        self.run_mode(
            ident.into(),
            RunInputWire::Iterations(input),
            RunMode::Multiprocess { processes },
            true,
        )
    }

    /// `run_dynamic`: the Listing 3 one-liner — no broker parameters.
    pub fn run_dynamic(
        &self,
        ident: impl Into<Ident>,
        input: u64,
    ) -> Result<RunOutput, ClientError> {
        self.run_mode(
            ident.into(),
            RunInputWire::Iterations(input),
            RunMode::Dynamic,
            false,
        )
    }

    /// Fully general run: any input shape × any mapping × verbosity.
    pub fn run_custom(
        &self,
        ident: impl Into<Ident>,
        input: RunInputWire,
        mode: RunMode,
        verbose: bool,
    ) -> Result<RunOutput, ClientError> {
        self.run_mode(ident.into(), input, mode, verbose)
    }

    /// `run_custom` under an explicit fault policy and (dynamic mapping)
    /// per-task timeout — the `--fault-policy` / `--task-timeout-ms`
    /// surface of the CLI.
    pub fn run_custom_faults(
        &self,
        ident: impl Into<Ident>,
        input: RunInputWire,
        mode: RunMode,
        verbose: bool,
        fault: FaultPolicyWire,
        task_timeout_ms: Option<u64>,
    ) -> Result<RunOutput, ClientError> {
        let rx =
            self.run_stream_faults(ident.into(), input, mode, verbose, fault, task_timeout_ms)?;
        Self::drain_run(rx)
    }

    /// Execution history of a workflow (the Execution/Response tables).
    pub fn get_executions(
        &self,
        ident: impl Into<Ident>,
    ) -> Result<Vec<laminar_server::protocol::ExecutionInfo>, ClientError> {
        self.call::<endpoint::GetExecutions>(ident.into())
    }

    fn run_mode(
        &self,
        ident: Ident,
        input: RunInputWire,
        mode: RunMode,
        verbose: bool,
    ) -> Result<RunOutput, ClientError> {
        let rx = self.run_stream(ident, input, mode, verbose)?;
        Self::drain_run(rx)
    }

    fn drain_run(rx: Receiver<WireFrame>) -> Result<RunOutput, ClientError> {
        let mut out = RunOutput {
            lines: Vec::new(),
            infos: Vec::new(),
            summaries: Vec::new(),
            ok: false,
            dead_letters: Vec::new(),
            fault_stats: None,
        };
        for frame in rx.iter() {
            match frame {
                WireFrame::Begin { .. } | WireFrame::Keepalive { .. } => {}
                WireFrame::Line(l) => out.lines.push(l),
                WireFrame::Info(i) => out.infos.push(i),
                WireFrame::Summary(s) => out.summaries.push(s),
                WireFrame::DeadLetter(d) => out.dead_letters.push(d),
                WireFrame::Faults(s) => out.fault_stats = Some(s),
                WireFrame::Value(Response::Error(e)) => return Err(ClientError::Server(e)),
                WireFrame::Value(Response::TimedOut { request_id }) => {
                    return Err(ClientError::Connection(ConnectionError::TimedOut {
                        request_id,
                    }));
                }
                WireFrame::Value(_) => {}
                WireFrame::End { ok, .. } => {
                    out.ok = ok;
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Streaming run: frames as they arrive (§IV-E). Automatically
    /// negotiates resources: on `NeedResources` the staged files are
    /// uploaded and the run is retried once.
    pub fn run_stream(
        &self,
        ident: Ident,
        input: RunInputWire,
        mode: RunMode,
        verbose: bool,
    ) -> Result<Receiver<WireFrame>, ClientError> {
        self.run_stream_faults(
            ident,
            input,
            mode,
            verbose,
            FaultPolicyWire::default(),
            None,
        )
    }

    /// [`LaminarClient::run_stream`] under an explicit fault policy.
    pub fn run_stream_faults(
        &self,
        ident: Ident,
        input: RunInputWire,
        mode: RunMode,
        verbose: bool,
        fault: FaultPolicyWire,
        task_timeout_ms: Option<u64>,
    ) -> Result<Receiver<WireFrame>, ClientError> {
        let make_req = |token| Request::Run {
            token,
            ident: ident.clone(),
            input: input.clone(),
            mode: mode.clone(),
            streaming: true,
            verbose,
            resources: self.resource_refs(),
            fault: fault.clone(),
            task_timeout_ms,
        };
        match self.dispatch(make_req(self.token()?))? {
            Reply::Value(Response::NeedResources(names)) => {
                for name in &names {
                    let Some((_, bytes)) = self.staged_resources.iter().find(|(n, _)| n == name)
                    else {
                        return Err(ClientError::NeedResources(names.clone()));
                    };
                    self.value(Request::UploadResource {
                        token: self.token()?,
                        name: name.clone(),
                        bytes: bytes.clone(),
                    })?;
                }
                match self.dispatch(make_req(self.token()?))? {
                    Reply::Stream(rx) => Ok(rx),
                    Reply::Value(Response::Error(e)) => Err(ClientError::Server(e)),
                    Reply::Value(v) => Err(ClientError::UnexpectedResponse(format!("{v:?}"))),
                }
            }
            Reply::Stream(rx) => Ok(rx),
            Reply::Value(Response::Error(e)) => Err(ClientError::Server(e)),
            Reply::Value(v) => Err(ClientError::UnexpectedResponse(format!("{v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORKFLOW_FILE: &str = "\
import random

class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def _process(self, num):
        print('the num {} is prime'.format(num))
";

    fn client() -> LaminarClient {
        let server = Arc::new(LaminarServer::with_stock());
        let mut c = LaminarClient::connect(server);
        c.register("rosa", "pw").unwrap();
        c
    }

    fn client_with_isprime() -> (LaminarClient, RegisteredWorkflow) {
        let c = client();
        let reg = c.register_workflow("isprime_wf", WORKFLOW_FILE).unwrap();
        (c, reg)
    }

    #[test]
    fn not_logged_in_errors() {
        let server = Arc::new(LaminarServer::with_stock());
        let c = LaminarClient::connect(server);
        assert_eq!(c.get_registry().unwrap_err(), ClientError::NotLoggedIn);
    }

    #[test]
    fn register_workflow_finds_pes_fig5a() {
        let (_c, reg) = client_with_isprime();
        let names: Vec<&str> = reg.pes.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["NumberProducer", "IsPrime", "PrintPrime"]);
        assert_eq!(reg.workflow.0, "isprime_wf");
    }

    #[test]
    fn register_batch_reports_per_item_outcomes() {
        let c = client();
        let items = vec![
            BatchItemWire::Pe(PeSubmission {
                name: "Standalone".into(),
                code:
                    "class Standalone(IterativePE):\n    def _process(self, x):\n        return x\n"
                        .into(),
                description: None,
            }),
            BatchItemWire::Workflow {
                name: "batch_wf".into(),
                code: WORKFLOW_FILE.into(),
                description: None,
                pes: extract_pes_from_source(WORKFLOW_FILE),
            },
        ];
        let outcomes = c.register_batch(items).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(outcomes[0], BatchOutcomeWire::Registered { .. }));
        match &outcomes[1] {
            BatchOutcomeWire::Registered {
                pe_ids,
                workflow_id,
            } => {
                assert_eq!(pe_ids.len(), 3);
                assert_eq!(workflow_id.as_ref().unwrap().0, "batch_wf");
            }
            other => panic!("expected Registered outcome: {other:?}"),
        }
        let (pes, wfs) = c.get_registry().unwrap();
        assert_eq!(pes.len(), 4);
        assert_eq!(wfs.len(), 1);
        // Without a session the typed endpoint refuses client-side.
        let fresh = LaminarClient::connect(Arc::new(LaminarServer::with_stock()));
        assert_eq!(
            fresh.register_batch(vec![]).unwrap_err(),
            ClientError::NotLoggedIn
        );
    }

    #[test]
    fn table1_read_functions() {
        let (c, reg) = client_with_isprime();
        let pe = c.get_pe(reg.pes[1].1).unwrap();
        assert_eq!(pe.name, "IsPrime");
        let pe2 = c.get_pe("IsPrime").unwrap();
        assert_eq!(pe, pe2);
        let wf = c.get_workflow("isprime_wf").unwrap();
        assert_eq!(wf.pe_ids.len(), 3);
        let pes = c.get_pes_by_workflow(reg.workflow.1).unwrap();
        assert_eq!(pes.len(), 3);
        let (all_pes, all_wfs) = c.get_registry().unwrap();
        assert_eq!(all_pes.len(), 3);
        assert_eq!(all_wfs.len(), 1);
        let d = c.describe(SearchScope::Pe, "IsPrime").unwrap();
        assert!(d.contains("class IsPrime"));
    }

    #[test]
    fn table1_update_and_remove_functions() {
        let (c, reg) = client_with_isprime();
        c.update_pe_description(reg.pes[0].1, "produces random numbers")
            .unwrap();
        assert_eq!(
            c.get_pe(reg.pes[0].1).unwrap().description,
            "produces random numbers"
        );
        c.update_workflow_description(reg.workflow.1, "the prime workflow")
            .unwrap();
        assert_eq!(
            c.get_workflow(reg.workflow.1).unwrap().description,
            "the prime workflow"
        );
        c.remove_workflow(reg.workflow.1).unwrap();
        c.remove_pe(reg.pes[0].1).unwrap();
        c.remove_all().unwrap();
        let (pes, wfs) = c.get_registry().unwrap();
        assert!(pes.is_empty() && wfs.is_empty());
    }

    #[test]
    fn table1_search_functions() {
        let (c, _) = client_with_isprime();
        let (pes, wfs) = c
            .search_registry_literal(SearchScope::Both, "prime")
            .unwrap();
        assert!(!pes.is_empty());
        assert!(!wfs.is_empty());
        let hits = c
            .search_registry_semantic(SearchScope::Pe, "checks if a number is prime")
            .unwrap();
        assert!(!hits.is_empty());
        // Without user docstrings the auto-descriptions only discriminate
        // at family level: the top hit must be from the prime family.
        assert!(hits[0].name.contains("Prime"), "{hits:?}");
        let recos = c
            .code_recommendation(
                SearchScope::Pe,
                "random.randint(1, 1000)",
                EmbeddingType::Spt,
            )
            .unwrap();
        assert_eq!(recos[0].name, "NumberProducer");
    }

    #[test]
    fn search_top_n_caps_results() {
        let (c, _) = client_with_isprime();
        let (pes, _) = c
            .search_registry_literal_top(SearchScope::Both, "prime", Some(1))
            .unwrap();
        assert_eq!(pes.len(), 1);
        let hits = c
            .search_registry_semantic_top(SearchScope::Pe, "a prime checker", Some(2))
            .unwrap();
        assert!(hits.len() <= 2, "{hits:?}");
    }

    #[test]
    fn run_with_fault_policy_on_clean_workflow() {
        let (c, _) = client_with_isprime();
        let out = c
            .run_custom_faults(
                "isprime_wf",
                RunInputWire::Iterations(10),
                RunMode::Sequential,
                false,
                FaultPolicyWire::Retry {
                    max_attempts: 3,
                    backoff_ms: 1,
                },
                None,
            )
            .unwrap();
        assert!(out.ok);
        assert!(!out.lines.is_empty());
        // A fault-free run carries no dead letters and no fault frame.
        assert!(out.dead_letters.is_empty());
        assert!(out.fault_stats.is_none());
    }

    #[test]
    fn run_functions_all_mappings() {
        let (c, _) = client_with_isprime();
        let seq = c.run("isprime_wf", 15).unwrap();
        assert!(seq.ok);
        assert!(!seq.lines.is_empty());
        let par = c.run_multiprocess("isprime_wf", 15, 9).unwrap();
        assert!(par.ok);
        assert!(!par.summaries.is_empty(), "verbose parallel run");
        let dynr = c.run_dynamic("isprime_wf", 15).unwrap();
        assert!(dynr.ok);
        // Same prime multiset across mappings.
        let mut a = seq.lines.clone();
        let mut b = par.lines.clone();
        let mut d = dynr.lines.clone();
        a.sort();
        b.sort();
        d.sort();
        assert_eq!(a, b);
        assert_eq!(a, d);
    }

    #[test]
    fn resource_negotiation_roundtrip() {
        let (mut c, _) = client_with_isprime();
        c.stage_resource("input.csv", b"1,2,3".to_vec());
        let out = c.run("isprime_wf", 3).unwrap();
        assert!(out.ok);
        // Second run: cache hit, no re-upload.
        let out2 = c.run("isprime_wf", 3).unwrap();
        assert!(out2.ok);
        // Server received the bytes exactly once.
        // (5 bytes staged; the transport-level accounting lives server-side.)
    }

    #[test]
    fn run_unknown_workflow_is_server_error() {
        let c = client();
        assert!(matches!(c.run("ghost_wf", 1), Err(ClientError::Server(_))));
    }

    #[test]
    fn run_data_feeds_values() {
        let (c, _) = client_with_isprime();
        let out = c
            .run_data(
                "isprime_wf",
                vec![Data::from(7i64), Data::from(8i64), Data::from(11i64)],
            )
            .unwrap();
        assert!(out.ok);
    }

    #[test]
    fn metrics_snapshot_via_client() {
        let (c, _) = client_with_isprime();
        let snap = c.metrics().unwrap();
        assert!(
            snap.endpoints
                .iter()
                .any(|e| e.endpoint == "RegisterWorkflow" && e.requests > 0),
            "{snap:?}"
        );
        assert!(snap.render().contains("RegisterWorkflow"));
    }

    #[test]
    fn health_is_tokenless_and_ready_on_a_healthy_server() {
        let server = Arc::new(LaminarServer::with_stock());
        let c = LaminarClient::connect(server);
        let h = c.health().unwrap();
        assert!(h.live);
        assert!(h.ready, "{h:?}");
        assert_eq!(h.storage, laminar_server::StorageStateWire::Healthy);
        assert_eq!(h.degraded_transitions, 0);
        assert!(h.last_persist_error.is_none());
    }

    #[test]
    fn compact_without_data_dir_is_server_error() {
        let (c, _) = client_with_isprime();
        let err = c.compact().unwrap_err();
        assert!(
            matches!(err, ClientError::Server(ref m) if m.contains("--data-dir")),
            "{err:?}"
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        assert!(p.backoff(1) >= Duration::from_millis(25));
        assert!(p.backoff(2) >= Duration::from_millis(50));
        // Capped at max_delay plus ≤50% jitter, even for huge attempts.
        assert!(p.backoff(30) <= Duration::from_millis(1500));
    }

    #[test]
    fn connect_refused_surfaces_as_unavailable_after_retries() {
        // Port 1 is essentially never listening on loopback.
        let mut c =
            LaminarClient::connect_tcp("127.0.0.1:1".parse().unwrap()).with_retry(RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            });
        let err = c.login("x", "y").unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Connection(ConnectionError::Unavailable(_))
            ),
            "{err:?}"
        );
    }
}
