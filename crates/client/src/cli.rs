//! The Laminar CLI (paper §IV-B, Fig. 5).
//!
//! A transcript-testable command interpreter: [`Cli::execute`] takes one
//! input line and returns the text the terminal would print. The `laminar`
//! binary (in `laminar-core`) wraps it in a stdin loop and exits with
//! [`Cli::exit_code`], so scripted sessions (`laminar < script`) fail
//! loudly when any command errored.
//!
//! The verb table is derived from the typed endpoint declarations in
//! [`crate::endpoint`]: a wire endpoint's CLI verb, help line and usage
//! text are stated once, next to its request/response types, so the CLI
//! cannot drift from the protocol surface. Only the purely local verbs
//! (`help`, `quit`) are declared here.

use crate::client::{ClientError, LaminarClient};
use crate::endpoint;
use laminar_server::protocol::{BatchItemWire, BatchOutcomeWire};
use laminar_server::{EmbeddingType, Ident, SearchScope};
use std::fmt::Write as _;
use std::path::Path;

/// The interactive CLI.
pub struct Cli {
    client: LaminarClient,
    /// Set when the user asked to quit.
    pub done: bool,
    /// Whether the most recently executed command failed.
    last_failed: bool,
    /// Whether any command of the session failed (drives the process
    /// exit status of the `laminar` binary).
    any_failed: bool,
}

/// Verbs that exist only in the terminal — no wire endpoint behind them.
const CLI_ONLY: &[(&str, &str)] = &[
    ("help", "Lists commands, or shows help for one command."),
    ("quit", "Exits the CLI."),
];

/// The command table: `(verb, help, usage)`, alphabetical — the CLI-only
/// verbs plus every verb declared in [`endpoint::ENDPOINTS`].
fn commands() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut out: Vec<(&'static str, &'static str, &'static str)> =
        CLI_ONLY.iter().map(|&(v, h)| (v, h, "")).collect();
    out.extend(
        endpoint::ENDPOINTS
            .iter()
            .filter(|d| !d.verb.is_empty())
            .map(|d| (d.verb, d.help, d.usage)),
    );
    out.sort_by_key(|&(v, _, _)| v);
    out
}

impl Cli {
    pub fn new(client: LaminarClient) -> Self {
        Cli {
            client,
            done: false,
            last_failed: false,
            any_failed: false,
        }
    }

    pub fn client(&mut self) -> &mut LaminarClient {
        &mut self.client
    }

    /// The Fig. 5a prompt.
    pub fn prompt(&self) -> &'static str {
        "(laminar) "
    }

    /// Whether the most recently executed command failed.
    pub fn last_command_failed(&self) -> bool {
        self.last_failed
    }

    /// Process exit status for the session: nonzero when any command
    /// failed, so piped scripts surface errors instead of exiting 0.
    pub fn exit_code(&self) -> u8 {
        u8::from(self.any_failed)
    }

    /// Execute one input line, returning the output text. Errors are
    /// rendered as `Error: <typed error>` and recorded — see
    /// [`Cli::last_command_failed`] and [`Cli::exit_code`].
    pub fn execute(&mut self, line: &str) -> String {
        let args = tokenize(line);
        if args.is_empty() {
            self.last_failed = false;
            return String::new();
        }
        let cmd = args[0].as_str();
        let rest = &args[1..];
        let mut unknown = false;
        let result = match cmd {
            "help" => Ok(self.help(rest)),
            "quit" => {
                self.done = true;
                Ok("Bye.".to_string())
            }
            "list" => self.list(),
            "register_pe" => self.register_pe(rest),
            "register_workflow" => self.register_workflow(rest),
            "ingest" => self.ingest(rest),
            "remove_pe" => self.remove(rest, true),
            "remove_workflow" => self.remove(rest, false),
            "remove_all" => self
                .client
                .remove_all()
                .map(|_| "Removed all PEs and workflows.".to_string()),
            "describe" => self.describe(rest),
            "literal_search" => self.literal_search(rest),
            "semantic_search" => self.semantic_search(rest),
            "code_recommendation" => self.code_recommendation(rest),
            "code_completion" => self.code_completion(rest),
            "update_pe_description" => self.update_description(rest, true),
            "update_workflow_description" => self.update_description(rest, false),
            "run" => self.run(rest),
            "history" => self.history(rest),
            "metrics" => self.client.metrics().map(|snap| snap.render()),
            "health" => self.health(),
            "compact" => self.client.compact().map(|r| {
                format!(
                    "Compacted: {} WAL records ({} bytes) folded into a {}-byte snapshot.",
                    r.wal_records, r.wal_bytes, r.snapshot_bytes
                )
            }),
            other => {
                unknown = true;
                Ok(format!(
                    "Unknown command '{other}'. Type 'help' to list commands."
                ))
            }
        };
        self.last_failed = result.is_err() || unknown;
        self.any_failed |= self.last_failed;
        result.unwrap_or_else(|e| format!("Error: {e}"))
    }

    fn help(&self, args: &[String]) -> String {
        let table = commands();
        if let Some(topic) = args.first() {
            if let Some((_, desc, usage)) = table.iter().find(|(v, ..)| v == topic) {
                return format!("{desc}{usage}");
            }
            return format!("No help for '{topic}'.");
        }
        let mut out = String::from(
            "Documented commands (type help <topic>):\n========================================\n",
        );
        for (name, ..) in &table {
            let _ = writeln!(out, "{name}");
        }
        out
    }

    /// `ingest --file <items.json>`: the bulk registration verb over the
    /// v6 `RegisterBatch` endpoint.
    fn ingest(&self, args: &[String]) -> Result<String, ClientError> {
        let mut file: Option<&String> = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--file" => {
                    i += 1;
                    file = Some(
                        args.get(i)
                            .ok_or_else(|| ClientError::Server("--file needs a path".into()))?,
                    );
                }
                other => {
                    return Err(ClientError::Server(format!(
                        "unexpected argument '{other}'"
                    )))
                }
            }
            i += 1;
        }
        let path =
            file.ok_or_else(|| ClientError::Server("usage: ingest --file <items.json>".into()))?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| ClientError::Server(format!("cannot read {path}: {e}")))?;
        let items: Vec<BatchItemWire> = serde_json::from_str(&text)
            .map_err(|e| ClientError::Server(format!("invalid batch file {path}: {e}")))?;
        let submitted = items.len();
        let outcomes = self.client.register_batch(items)?;
        let mut out = String::new();
        let mut failures: Vec<String> = Vec::new();
        for (idx, outcome) in outcomes.iter().enumerate() {
            match outcome {
                BatchOutcomeWire::Registered {
                    pe_ids,
                    workflow_id,
                } => {
                    for (name, id) in pe_ids {
                        let _ = writeln!(out, "• {name} - type (ID {id})");
                    }
                    if let Some((name, id)) = workflow_id {
                        let _ = writeln!(out, "• {name} - Workflow (ID {id})");
                    }
                }
                BatchOutcomeWire::Failed { pe_ids, error } => {
                    for (name, id) in pe_ids {
                        let _ = writeln!(out, "• {name} - type (ID {id})");
                    }
                    failures.push(format!("item {}: {error}", idx + 1));
                }
            }
        }
        let registered = submitted - failures.len();
        if !failures.is_empty() {
            return Err(ClientError::Server(format!(
                "ingest committed {registered} of {submitted} items; {} failed: {}",
                failures.len(),
                failures.join("; ")
            )));
        }
        let _ = writeln!(out, "Ingested {registered} items in one batch.");
        Ok(out)
    }

    fn list(&self) -> Result<String, ClientError> {
        let (pes, wfs) = self.client.get_registry()?;
        let mut out = String::from("Found PEs...\n");
        for p in &pes {
            let _ = writeln!(out, "• {} - type (ID {})", p.name, p.id);
        }
        out.push_str("Found workflows...\n");
        for w in &wfs {
            let _ = writeln!(out, "• {} - Workflow (ID {})", w.name, w.id);
        }
        Ok(out)
    }

    fn register_pe(&self, args: &[String]) -> Result<String, ClientError> {
        let path = args
            .first()
            .ok_or_else(|| ClientError::Server("usage: register_pe <file.py>".into()))?;
        let code = std::fs::read_to_string(path)
            .map_err(|e| ClientError::Server(format!("cannot read {path}: {e}")))?;
        let name = stem(path);
        let id = self.client.register_pe(&name, &code, None)?;
        Ok(format!("• {name} - type (ID {id})"))
    }

    fn register_workflow(&self, args: &[String]) -> Result<String, ClientError> {
        let path = args
            .first()
            .ok_or_else(|| ClientError::Server("usage: register_workflow <file.py>".into()))?;
        let code = std::fs::read_to_string(path)
            .map_err(|e| ClientError::Server(format!("cannot read {path}: {e}")))?;
        let name = stem(path);
        let reg = self.client.register_workflow(&name, &code)?;
        // Fig. 5a output shape.
        let mut out = String::from("Found PEs...\n");
        for (pe_name, id) in &reg.pes {
            let _ = writeln!(out, "• {pe_name} - type (ID {id})");
        }
        out.push_str("Found workflows...\n");
        let _ = writeln!(
            out,
            "• {} - Workflow (ID {})",
            reg.workflow.0, reg.workflow.1
        );
        Ok(out)
    }

    fn remove(&self, args: &[String], pe: bool) -> Result<String, ClientError> {
        let ident =
            parse_ident(args.first().ok_or_else(|| {
                ClientError::Server("usage: remove_[pe|workflow] <id|name>".into())
            })?);
        if pe {
            self.client.remove_pe(ident)?;
            Ok("Removed PE.".into())
        } else {
            self.client.remove_workflow(ident)?;
            Ok("Removed workflow.".into())
        }
    }

    fn describe(&self, args: &[String]) -> Result<String, ClientError> {
        let (scope, ident_arg) = match args {
            [kind, ident] if kind == "pe" || kind == "workflow" => (
                if kind == "pe" {
                    SearchScope::Pe
                } else {
                    SearchScope::Workflow
                },
                ident,
            ),
            [ident] => (SearchScope::Pe, ident),
            _ => {
                return Err(ClientError::Server(
                    "usage: describe [pe|workflow] <id|name>".into(),
                ))
            }
        };
        self.client.describe(scope, parse_ident(ident_arg))
    }

    fn literal_search(&self, args: &[String]) -> Result<String, ClientError> {
        let (args, top_n) = extract_top(args)?;
        let (scope, term) = parse_scope_and_term(&args)?;
        let (pes, wfs) = self
            .client
            .search_registry_literal_top(scope, &term, top_n)?;
        let mut out = String::new();
        let _ = writeln!(out, "Performing literal search for the term: {term}");
        for p in &pes {
            let _ = writeln!(
                out,
                "peId {} peName {} description {}",
                p.id,
                p.name,
                short(&p.description)
            );
        }
        for w in &wfs {
            let _ = writeln!(
                out,
                "workflowId {} workflowName {} description {}",
                w.id,
                w.name,
                short(&w.description)
            );
        }
        if pes.is_empty() && wfs.is_empty() {
            out.push_str("No matches.\n");
        }
        Ok(out)
    }

    fn semantic_search(&self, args: &[String]) -> Result<String, ClientError> {
        let (args, top_n) = extract_top(args)?;
        let (scope, term) = parse_scope_and_term(&args)?;
        let hits = self
            .client
            .search_registry_semantic_top(scope, &term, top_n)?;
        // Fig. 8's result table.
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Performing semantic search on {}, with query type: text",
            scope_name(scope)
        );
        let _ = writeln!(out, "Encoding query as text");
        let _ = writeln!(
            out,
            "{:>4}  {:<22} {:<50} cosine_similarity",
            "id", "name", "description"
        );
        for h in hits {
            let _ = writeln!(
                out,
                "{:>4}  {:<22} {:<50} {:.6}",
                h.id,
                h.name,
                short(&h.description),
                h.cosine_similarity
            );
        }
        Ok(out)
    }

    fn code_recommendation(&self, args: &[String]) -> Result<String, ClientError> {
        let (args, top_n) = extract_top(args)?;
        let mut embedding = EmbeddingType::Spt;
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--embedding_type" {
                i += 1;
                embedding = match args.get(i).map(String::as_str) {
                    Some("llm") => EmbeddingType::Llm,
                    Some("spt") => EmbeddingType::Spt,
                    other => {
                        return Err(ClientError::Server(format!(
                            "unknown embedding type {other:?}"
                        )))
                    }
                };
            } else {
                positional.push(args[i].clone());
            }
            i += 1;
        }
        let (scope, snippet) = parse_scope_and_term(&positional)?;
        let hits = self
            .client
            .code_recommendation_top(scope, &snippet, embedding, top_n)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4}  {:<18} {:<40} score  similarFunc",
            "id", "name", "description"
        );
        for h in hits {
            let _ = writeln!(
                out,
                "{:>4}  {:<18} {:<40} {:.1}  {}",
                h.id,
                h.name,
                short(&h.description),
                h.score,
                short(&h.similar_code)
            );
            // v9: clustered hits carry the common idiom their cluster
            // agreed on (Aroma's intersected statements).
            if h.cluster_size > 1 && !h.common_core.is_empty() {
                let _ = writeln!(out, "      cluster of {}, common core:", h.cluster_size);
                for line in h.common_core.lines() {
                    let _ = writeln!(out, "      | {line}");
                }
            }
        }
        Ok(out)
    }

    fn code_completion(&self, args: &[String]) -> Result<String, ClientError> {
        if args.is_empty() {
            return Err(ClientError::Server(
                "usage: code_completion \"<partial code>\"".into(),
            ));
        }
        let snippet = args.join(" ");
        let (source, lines, progress) = self.client.code_completion(&snippet)?;
        let mut out = String::new();
        match source {
            None => out.push_str("No similar PE found in the registry.\n"),
            Some((id, name)) => {
                let _ = writeln!(
                    out,
                    "Completing from {name} (ID {id}), {:.0}% typed:",
                    progress * 100.0
                );
                for l in lines {
                    let _ = writeln!(out, "  + {l}");
                }
            }
        }
        Ok(out)
    }

    fn update_description(&self, args: &[String], pe: bool) -> Result<String, ClientError> {
        if args.len() < 2 {
            return Err(ClientError::Server(
                "usage: update_[pe|workflow]_description <id|name> <description>".into(),
            ));
        }
        let ident = parse_ident(&args[0]);
        let description = args[1..].join(" ");
        if pe {
            self.client.update_pe_description(ident, &description)?;
        } else {
            self.client
                .update_workflow_description(ident, &description)?;
        }
        Ok("Description updated.".into())
    }

    fn run(&self, args: &[String]) -> Result<String, ClientError> {
        use laminar_server::protocol::{FaultPolicyWire, RunInputWire, RunMode};
        let mut ident: Option<Ident> = None;
        let mut inputs: Vec<String> = Vec::new();
        let mut multi: Option<usize> = None;
        let mut dynamic = false;
        let mut verbose = false;
        let mut rawinput = false;
        let mut fault_policy: Option<String> = None;
        let mut retries: u32 = 3;
        let mut backoff_ms: u64 = 10;
        let mut task_timeout_ms: Option<u64> = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "-i" | "--input" => {
                    i += 1;
                    inputs.push(
                        args.get(i)
                            .ok_or_else(|| ClientError::Server("-i needs a value".into()))?
                            .clone(),
                    );
                }
                "--multi" => {
                    i += 1;
                    multi = Some(
                        args.get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| ClientError::Server("--multi needs a number".into()))?,
                    );
                }
                "--dynamic" => dynamic = true,
                "-v" | "--verbose" => verbose = true,
                "--rawinput" => rawinput = true,
                "--fault-policy" => {
                    i += 1;
                    fault_policy = Some(
                        args.get(i)
                            .ok_or_else(|| {
                                ClientError::Server("--fault-policy needs a value".into())
                            })?
                            .clone(),
                    );
                }
                "--retries" => {
                    i += 1;
                    retries = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ClientError::Server("--retries needs a number".into()))?;
                }
                "--backoff-ms" => {
                    i += 1;
                    backoff_ms = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ClientError::Server("--backoff-ms needs a number".into()))?;
                }
                "--task-timeout-ms" => {
                    i += 1;
                    task_timeout_ms =
                        Some(args.get(i).and_then(|s| s.parse().ok()).ok_or_else(|| {
                            ClientError::Server("--task-timeout-ms needs a number".into())
                        })?);
                }
                other if ident.is_none() => ident = Some(parse_ident(other)),
                other => {
                    return Err(ClientError::Server(format!(
                        "unexpected argument '{other}'"
                    )))
                }
            }
            i += 1;
        }
        let fault = match fault_policy.as_deref() {
            None | Some("fail-fast") => FaultPolicyWire::FailFast,
            Some("retry") => FaultPolicyWire::Retry {
                max_attempts: retries,
                backoff_ms,
            },
            Some("dead-letter") => FaultPolicyWire::DeadLetter {
                max_attempts: retries,
            },
            Some(other) => {
                return Err(ClientError::Server(format!(
                    "unknown fault policy '{other}' (fail-fast | retry | dead-letter)"
                )))
            }
        };
        let ident =
            ident.ok_or_else(|| ClientError::Server("usage: run <id|name> [options]".into()))?;
        // One numeric `-i` is an iteration count; several values (or
        // --rawinput) are explicit data items, per the Fig. 5b usage text.
        let input = match (inputs.len(), rawinput) {
            (0, _) => RunInputWire::Iterations(1),
            (1, false) if inputs[0].parse::<u64>().is_ok() => {
                RunInputWire::Iterations(inputs[0].parse().expect("checked"))
            }
            _ => RunInputWire::Data(inputs.iter().map(|s| parse_datum(s, rawinput)).collect()),
        };
        let mode = if let Some(p) = multi {
            RunMode::Multiprocess { processes: p }
        } else if dynamic {
            RunMode::Dynamic
        } else {
            RunMode::Sequential
        };
        let out =
            self.client
                .run_custom_faults(ident, input, mode, verbose, fault, task_timeout_ms)?;
        let mut text = String::new();
        for l in &out.lines {
            let _ = writeln!(text, "{l}");
        }
        if verbose {
            for s in &out.summaries {
                let _ = writeln!(text, "{s}");
            }
        }
        for d in &out.dead_letters {
            let _ = writeln!(
                text,
                "dead-letter: {} ({} attempts): {}",
                d.pe, d.attempts, d.error
            );
        }
        if let Some(s) = &out.fault_stats {
            let _ = writeln!(
                text,
                "faults: {} faults, {} retries, {} dead-lettered, {} timeouts, {} workers replaced",
                s.faults, s.retries, s.dead_letters, s.task_timeouts, s.worker_replacements
            );
        }
        if !out.ok {
            text.push_str("Run failed.\n");
        }
        Ok(text)
    }

    /// `health`: liveness/readiness probe. Not-ready is reported as an
    /// error so the session exit status goes nonzero — a piped
    /// `echo health | laminar` works as a container healthcheck.
    fn health(&self) -> Result<String, ClientError> {
        let h = self.client.health()?;
        let mut out = String::new();
        let _ = writeln!(out, "live: {}", h.live);
        let _ = writeln!(out, "ready: {}", h.ready);
        let _ = writeln!(
            out,
            "storage: {}",
            match h.storage {
                laminar_server::StorageStateWire::Healthy => "healthy",
                laminar_server::StorageStateWire::Degraded => "DEGRADED (read-only)",
            }
        );
        let _ = writeln!(out, "uptime: {} ms", h.uptime_ms);
        let _ = writeln!(out, "degraded transitions: {}", h.degraded_transitions);
        if let Some(e) = &h.last_persist_error {
            let _ = writeln!(out, "last persist error: {e}");
        }
        if h.ready {
            Ok(out)
        } else {
            Err(ClientError::Server(format!(
                "{out}server is not ready (storage degraded, read-only)"
            )))
        }
    }

    fn history(&self, args: &[String]) -> Result<String, ClientError> {
        let ident = parse_ident(
            args.first()
                .ok_or_else(|| ClientError::Server("usage: history <id|name>".into()))?,
        );
        let rows = self.client.get_executions(ident)?;
        if rows.is_empty() {
            return Ok("No executions recorded.".into());
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4}  {:<8} {:<12} {:<10} output",
            "id", "mapping", "input", "status"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{:>4}  {:<8} {:<12} {:<10} {}",
                r.id,
                r.mapping,
                short(&r.input),
                r.status,
                short(&r.output_preview)
            );
        }
        Ok(out)
    }
}

/// Parse one `-i` value: int, then float, else string (forced string when
/// `--rawinput`).
fn parse_datum(s: &str, raw: bool) -> d4py::Data {
    use d4py::Data;
    if raw {
        return Data::from(s);
    }
    if let Ok(i) = s.parse::<i64>() {
        return Data::from(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Data::from(f);
    }
    Data::from(s)
}

fn scope_name(scope: SearchScope) -> &'static str {
    match scope {
        SearchScope::Pe => "pe",
        SearchScope::Workflow => "workflow",
        SearchScope::Both => "all",
    }
}

fn short(s: &str) -> String {
    let line = s.lines().next().unwrap_or("");
    if line.len() > 48 {
        format!("{}...", &line[..45])
    } else {
        line.to_string()
    }
}

fn stem(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Strip a `--top N` flag from `args`, returning the remaining arguments
/// and the requested result cap.
fn extract_top(args: &[String]) -> Result<(Vec<String>, Option<usize>), ClientError> {
    let mut rest = Vec::new();
    let mut top_n = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--top" {
            i += 1;
            top_n = Some(
                args.get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ClientError::Server("--top needs a number".into()))?,
            );
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    Ok((rest, top_n))
}

fn parse_ident(s: &str) -> Ident {
    match s.parse::<u64>() {
        Ok(id) => Ident::Id(id),
        Err(_) => Ident::Name(s.to_string()),
    }
}

fn parse_scope_and_term(args: &[String]) -> Result<(SearchScope, String), ClientError> {
    match args {
        [] => Err(ClientError::Server("missing search term".into())),
        [kind, rest @ ..] if kind == "pe" || kind == "workflow" || kind == "all" => {
            let scope = match kind.as_str() {
                "pe" => SearchScope::Pe,
                "workflow" => SearchScope::Workflow,
                _ => SearchScope::Both,
            };
            if rest.is_empty() {
                return Err(ClientError::Server("missing search term".into()));
            }
            Ok((scope, rest.join(" ")))
        }
        all => Ok((SearchScope::Both, all.join(" "))),
    }
}

/// Shell-like tokenizer honouring single/double quotes.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                } else {
                    cur.push(c);
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                }
                c => cur.push(c),
            },
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_server::LaminarServer;
    use std::sync::Arc;

    const WORKFLOW_FILE: &str = "\
import random

class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def _process(self, num):
        print('the num {} is prime'.format(num))
";

    fn cli() -> Cli {
        let server = Arc::new(LaminarServer::with_stock());
        let mut client = LaminarClient::connect(server);
        client.register("rosa", "pw").unwrap();
        Cli::new(client)
    }

    fn cli_with_isprime() -> (Cli, String) {
        let mut c = cli();
        let dir = std::env::temp_dir().join(format!("laminar-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("isprime_wf.py");
        std::fs::write(&path, WORKFLOW_FILE).unwrap();
        let out = c.execute(&format!("register_workflow {}", path.display()));
        assert!(out.contains("Found PEs"), "{out}");
        (c, path.display().to_string())
    }

    #[test]
    fn tokenizer_handles_quotes() {
        assert_eq!(
            tokenize("semantic_search pe \"a pe that is able to detect anomalies\""),
            vec![
                "semantic_search",
                "pe",
                "a pe that is able to detect anomalies"
            ]
        );
        assert_eq!(
            tokenize("  run   169 -i 10 "),
            vec!["run", "169", "-i", "10"]
        );
        assert_eq!(
            tokenize("code_recommendation pe 'random.randint(1, 1000)'"),
            vec!["code_recommendation", "pe", "random.randint(1, 1000)"]
        );
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn help_lists_all_fig5a_commands() {
        let mut c = cli();
        let out = c.execute("help");
        for cmd in [
            "code_recommendation",
            "describe",
            "list",
            "literal_search",
            "quit",
            "register_pe",
            "register_workflow",
            "remove_all",
            "remove_pe",
            "remove_workflow",
            "run",
            "semantic_search",
            "update_pe_description",
            "update_workflow_description",
        ] {
            assert!(out.contains(cmd), "missing {cmd}:\n{out}");
        }
        // Topic help (Fig. 5b's `help run`).
        let out = c.execute("help run");
        assert!(out.contains("--multi"), "{out}");
        assert!(out.contains("--dynamic"), "{out}");
        assert!(out.contains("-i, --input"), "{out}");
    }

    #[test]
    fn register_workflow_transcript_matches_fig5a() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("list");
        assert!(out.contains("• NumberProducer - type (ID"), "{out}");
        assert!(out.contains("• IsPrime - type (ID"), "{out}");
        assert!(out.contains("• isprime_wf - Workflow (ID"), "{out}");
    }

    #[test]
    fn run_by_name_and_by_id() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("run isprime_wf -i 10 --multi 9 -v");
        assert!(out.contains("is prime"), "{out}");
        assert!(out.contains("Processed"), "verbose summaries: {out}");
        // By numeric id, sequentially.
        let list = c.execute("list");
        let id_line = list
            .lines()
            .find(|l| l.contains("isprime_wf"))
            .unwrap()
            .to_string();
        let id: u64 = id_line
            .rsplit("(ID ")
            .next()
            .unwrap()
            .trim_end_matches(')')
            .parse()
            .unwrap();
        let out = c.execute(&format!("run {id} -i 5"));
        assert!(out.contains("is prime") || !out.contains("Error"), "{out}");
        // Dynamic, Listing-3 style.
        let out = c.execute("run isprime_wf -i 5 --dynamic");
        assert!(!out.contains("Error"), "{out}");
    }

    #[test]
    fn semantic_search_transcript_matches_fig8() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("semantic_search pe \"a pe that checks prime numbers\"");
        assert!(
            out.contains("Performing semantic search on pe, with query type: text"),
            "{out}"
        );
        assert!(out.contains("cosine_similarity"), "{out}");
        assert!(out.contains("IsPrime"), "{out}");
    }

    #[test]
    fn code_recommendation_transcript_matches_fig9() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("code_recommendation pe \"random.randint(1, 1000)\"");
        assert!(out.contains("NumberProducer"), "{out}");
        assert!(out.contains("similarFunc"), "{out}");
        let out = c.execute(
            "code_recommendation workflow \"random.randint(1, 1000)\" --embedding_type spt",
        );
        assert!(out.contains("isprime_wf"), "{out}");
        let out =
            c.execute("code_recommendation pe \"random.randint(1, 1000)\" --embedding_type llm");
        assert!(!out.contains("Error"), "{out}");
    }

    #[test]
    fn top_flag_caps_search_results() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("literal_search prime --top 1");
        let pe_lines = out.lines().filter(|l| l.starts_with("peId")).count();
        assert_eq!(pe_lines, 1, "{out}");
        let out = c.execute("semantic_search pe \"prime numbers\" --top 1");
        // Header + query lines + exactly one hit row.
        let hit_lines = out
            .lines()
            .filter(|l| l.contains("Prime") || l.contains("Producer"))
            .count();
        assert_eq!(hit_lines, 1, "{out}");
        // Malformed flag is an error, not a panic.
        assert!(c.execute("literal_search prime --top").contains("Error"));
        assert!(c
            .execute("literal_search prime --top abc")
            .contains("Error"));
    }

    #[test]
    fn run_accepts_fault_policy_flags() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("run isprime_wf -i 5 --fault-policy retry --retries 2 --backoff-ms 1");
        assert!(!out.contains("Error"), "{out}");
        let out = c.execute("run isprime_wf -i 5 --fault-policy dead-letter");
        assert!(!out.contains("Error"), "{out}");
        let out = c.execute("run isprime_wf -i 5 --fault-policy lenient");
        assert!(out.contains("unknown fault policy"), "{out}");
        assert!(c.execute("run isprime_wf --retries").contains("Error"));
        // `help run` documents the new surface.
        let help = c.execute("help run");
        assert!(help.contains("--fault-policy"), "{help}");
        assert!(help.contains("--task-timeout-ms"), "{help}");
    }

    #[test]
    fn run_with_multiple_inputs_and_history() {
        let (mut c, _) = cli_with_isprime();
        // Multiple -i values become data items (isprime's root is a
        // producer, so they drive three iterations).
        let out = c.execute("run isprime_wf -i 7 -i 8 -i 11");
        assert!(!out.contains("Error"), "{out}");
        // One numeric -i stays an iteration count.
        let out = c.execute("run isprime_wf -i 5 --multi 9");
        assert!(!out.contains("Error"), "{out}");
        // History shows both executions.
        let out = c.execute("history isprime_wf");
        assert!(out.contains("simple"), "{out}");
        assert!(out.contains("multi"), "{out}");
        assert!(out.contains("Completed"), "{out}");
        assert!(c.execute("history").contains("Error"));
        assert!(c.execute("history ghost").contains("Error"));
    }

    #[test]
    fn code_completion_command() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("code_completion \"class P(IterativePE):\n    def _process(self, num):\n        if all(num % i != 0 for i in range(2, num)):\"");
        assert!(out.contains("Completing from IsPrime"), "{out}");
        assert!(out.contains("+ "), "{out}");
        let out = c.execute("code_completion \"import xml\"");
        assert!(out.contains("No similar PE"), "{out}");
        assert!(c.execute("code_completion").contains("Error"));
    }

    #[test]
    fn literal_search_and_describe() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("literal_search prime");
        assert!(out.contains("IsPrime"), "{out}");
        let out = c.execute("describe pe IsPrime");
        assert!(out.contains("class IsPrime"), "{out}");
    }

    #[test]
    fn update_and_remove_flow() {
        let (mut c, _) = cli_with_isprime();
        let out = c.execute("update_pe_description NumberProducer emits fresh random integers");
        assert!(out.contains("updated"), "{out}");
        let out = c.execute("describe pe NumberProducer");
        assert!(out.contains("fresh random integers"), "{out}");
        // FK: removing a referenced PE fails; removing the workflow first works.
        let out = c.execute("remove_pe NumberProducer");
        assert!(out.contains("Error"), "{out}");
        let out = c.execute("remove_workflow isprime_wf");
        assert!(out.contains("Removed"), "{out}");
        let out = c.execute("remove_pe NumberProducer");
        assert!(out.contains("Removed"), "{out}");
        let out = c.execute("remove_all");
        assert!(out.contains("Removed all"), "{out}");
    }

    #[test]
    fn metrics_command_renders_snapshot() {
        let (mut c, _) = cli_with_isprime();
        c.execute("list");
        let out = c.execute("metrics");
        assert!(out.contains("endpoint"), "{out}");
        assert!(out.contains("GetRegistry"), "{out}");
        assert!(out.contains("connections:"), "{out}");
    }

    #[test]
    fn health_command_reports_ready_with_zero_exit() {
        let mut c = cli();
        let out = c.execute("health");
        assert!(out.contains("live: true"), "{out}");
        assert!(out.contains("ready: true"), "{out}");
        assert!(out.contains("storage: healthy"), "{out}");
        assert!(!c.last_command_failed());
        assert_eq!(c.exit_code(), 0);
    }

    #[test]
    fn compact_command_without_data_dir_reports_error() {
        let mut c = cli();
        let help = c.execute("help");
        assert!(help.contains("compact"), "{help}");
        // An in-memory server has no data directory to compact.
        let out = c.execute("compact");
        assert!(out.contains("Error"), "{out}");
        assert!(out.contains("--data-dir"), "{out}");
    }

    #[test]
    fn unknown_command_and_quit() {
        let mut c = cli();
        let out = c.execute("frobnicate");
        assert!(out.contains("Unknown command"), "{out}");
        assert!(!c.done);
        let out = c.execute("quit");
        assert!(out.contains("Bye"));
        assert!(c.done);
    }

    #[test]
    fn register_pe_from_file() {
        let mut c = cli();
        let dir = std::env::temp_dir().join(format!("laminar-cli-pe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("word_counter.py");
        std::fs::write(&path, "class WordCounter(IterativePE):\n    def _process(self, text):\n        return len(text.split())\n").unwrap();
        let out = c.execute(&format!("register_pe {}", path.display()));
        assert!(out.contains("word_counter"), "{out}");
        let out = c.execute("describe pe word_counter");
        assert!(out.contains("WordCounter"), "{out}");
    }

    #[test]
    fn errors_are_rendered_not_panicked() {
        let mut c = cli();
        assert!(c.execute("run").contains("Error"));
        assert!(c.execute("describe").contains("Error"));
        assert!(c
            .execute("register_workflow /no/such/file.py")
            .contains("Error"));
        assert!(c.execute("run ghost -i 2").contains("Error"));
    }

    #[test]
    fn errors_set_nonzero_exit_status() {
        let mut c = cli();
        c.execute("list");
        assert!(!c.last_command_failed());
        assert_eq!(c.exit_code(), 0);
        let out = c.execute("describe");
        assert!(out.contains("Error"), "{out}");
        assert!(c.last_command_failed());
        assert_eq!(c.exit_code(), 1);
        // A later success clears the per-command flag, but the session
        // status stays sticky so piped scripts surface the failure.
        c.execute("list");
        assert!(!c.last_command_failed());
        assert_eq!(c.exit_code(), 1);
        // Unknown commands are failures too.
        let mut c2 = cli();
        c2.execute("frobnicate");
        assert!(c2.last_command_failed());
        assert_eq!(c2.exit_code(), 1);
    }

    #[test]
    fn verb_table_derives_from_endpoint_declarations() {
        let mut c = cli();
        let help = c.execute("help");
        for d in endpoint::ENDPOINTS.iter().filter(|d| !d.verb.is_empty()) {
            assert!(help.contains(d.verb), "help missing {}:\n{help}", d.verb);
            let out = c.execute(d.verb);
            assert!(
                !out.contains("Unknown command"),
                "declared verb '{}' is not dispatched: {out}",
                d.verb
            );
        }
        // Topic help flows from the same declaration rows.
        let topic = c.execute("help ingest");
        assert!(topic.contains("--file"), "{topic}");
        let topic = c.execute("help run");
        assert!(topic.contains("--fault-policy"), "{topic}");
    }

    #[test]
    fn ingest_command_bulk_registers_from_file() {
        use laminar_server::PeSubmission;
        let mut c = cli();
        let items = vec![
            BatchItemWire::Pe(PeSubmission {
                name: "Standalone".into(),
                code:
                    "class Standalone(IterativePE):\n    def _process(self, x):\n        return x\n"
                        .into(),
                description: None,
            }),
            BatchItemWire::Workflow {
                name: "batch_wf".into(),
                code: WORKFLOW_FILE.into(),
                description: None,
                pes: crate::extract::extract_pes_from_source(WORKFLOW_FILE),
            },
        ];
        let dir = std::env::temp_dir().join(format!("laminar-cli-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("items.json");
        std::fs::write(&path, serde_json::to_string(&items).unwrap()).unwrap();
        let out = c.execute(&format!("ingest --file {}", path.display()));
        assert!(out.contains("• Standalone - type (ID"), "{out}");
        assert!(out.contains("• batch_wf - Workflow (ID"), "{out}");
        assert!(out.contains("Ingested 2 items in one batch."), "{out}");
        assert!(!c.last_command_failed());
        let list = c.execute("list");
        assert!(list.contains("IsPrime"), "{list}");
        // Bad invocations are typed errors with a failing status, not
        // panics or silent successes.
        assert!(c.execute("ingest").contains("Error"));
        assert!(c.execute("ingest --file /no/such.json").contains("Error"));
        assert!(c.execute("ingest --frobnicate").contains("Error"));
        assert!(c.last_command_failed());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
