//! Typed endpoint declarations — the single source of truth for the
//! client's request surface.
//!
//! Before v6 the client grew one hand-rolled method per wire endpoint,
//! and the CLI kept its own parallel verb table; the idempotency set
//! lived in a third place (a `matches!` inside the retry loop). Those
//! three lists drifted independently. This module collapses them:
//!
//! * [`Endpoint`] — one impl per value endpoint, declaring the typed
//!   params, the typed output, the request builder and the response
//!   parser. [`crate::LaminarClient::call`] is the one generic path
//!   that drives envelope, retry and parsing for all of them.
//! * [`ENDPOINTS`] — one [`EndpointDecl`] row per wire endpoint,
//!   declaring the CLI verb (if any), its help text and the
//!   idempotency class. [`is_idempotent`] and the CLI's command table
//!   are both lookups into this table, so a new endpoint that forgets
//!   its row is caught by the tests here rather than by a user.
//!
//! Streaming endpoints (`Run`, and the resource-negotiation pair
//! `UploadResource`/`RunWithInlineResources`) have declaration rows but
//! no [`Endpoint`] impl: their reply is a frame stream, not a value,
//! and they keep their dedicated client path.

use crate::client::{
    ClientError, CompactReport, CompletionResult, HealthReport, RegisteredWorkflow,
};
use laminar_server::protocol::{
    BatchItemWire, BatchOutcomeWire, ExecutionInfo, PeInfo, RecommendationHit, SemanticHit,
    WorkflowInfo,
};
use laminar_server::{
    EmbeddingType, Ident, MetricsSnapshot, PeSubmission, Request, Response, SearchScope,
};

/// One value endpoint of the wire protocol, declared once: typed
/// params in, wire request out, wire response back in, typed output
/// out. `NAME` ties the impl to its [`EndpointDecl`] row (and must
/// equal `Request::endpoint()` of the built request — tested below).
pub trait Endpoint {
    /// Typed input of the call.
    type Params;
    /// Typed result of the call.
    type Output;
    /// The wire endpoint name (`Request::endpoint()`).
    const NAME: &'static str;

    /// Build the wire request. `token` is the client's session token;
    /// endpoints that need one fail with [`ClientError::NotLoggedIn`]
    /// when it is absent.
    fn request(token: Option<u64>, params: Self::Params) -> Result<Request, ClientError>;

    /// Parse the wire response into the typed output.
    fn response(resp: Response) -> Result<Self::Output, ClientError>;
}

/// One row of [`ENDPOINTS`]: the per-endpoint facts that the retry
/// policy and the CLI both consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointDecl {
    /// Wire endpoint name (`Request::endpoint()`).
    pub name: &'static str,
    /// CLI verb derived from this endpoint; `""` for library-only
    /// endpoints with no direct verb.
    pub verb: &'static str,
    /// One-line help shown by the CLI's `help` listing.
    pub help: &'static str,
    /// Extra usage text appended by `help <verb>`.
    pub usage: &'static str,
    /// Whether re-sending can never duplicate side effects.
    pub idempotent: bool,
}

impl EndpointDecl {
    /// Retry eligibility after an *ambiguous* failure (a timeout, where
    /// the server may or may not have executed the request): safe only
    /// when the endpoint is idempotent. Transient rejections
    /// (`Unavailable`, typed `Busy`) are always retryable regardless —
    /// the request provably never dispatched.
    pub fn retry_on_timeout(&self) -> bool {
        self.idempotent
    }
}

/// Every wire endpoint, in wire-protocol order. The CLI renders its
/// command table from the rows with a non-empty `verb`; the retry loop
/// reads `idempotent`.
pub static ENDPOINTS: &[EndpointDecl] = &[
    EndpointDecl {
        name: "RegisterUser",
        verb: "",
        help: "",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "Login",
        verb: "",
        help: "",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "RegisterPe",
        verb: "register_pe",
        help: "Registers a new PE from a Python file.",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "RegisterWorkflow",
        verb: "register_workflow",
        help: "Registers a workflow file and every PE found in it.",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "RegisterBatch",
        verb: "ingest",
        help: "Registers a JSON file of PEs and workflows as one batch: analysis runs in parallel, the registry commits under a single WAL fsync, and the search indexes publish once.",
        usage: "\nUsage:\n  ingest --file <items.json>\n\nThe file holds a JSON array of items, each either\n  {\"Pe\": {\"name\": \"...\", \"code\": \"...\"}}\n  {\"Workflow\": {\"name\": \"...\", \"code\": \"...\", \"pes\": [{\"name\": \"...\", \"code\": \"...\"}]}}\n(`description` is optional everywhere and auto-generated when absent.)\nOutcomes print per item — a failed item does not abort the rest.",
        idempotent: false,
    },
    EndpointDecl {
        name: "GetPe",
        verb: "",
        help: "",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "GetWorkflow",
        verb: "",
        help: "",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "GetPesByWorkflow",
        verb: "",
        help: "",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "GetRegistry",
        verb: "list",
        help: "Lists all items in the registry.",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "Describe",
        verb: "describe",
        help: "Prints the description and source of a PE or workflow.",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "UpdatePeDescription",
        verb: "update_pe_description",
        help: "Updates a PE's description.",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "UpdateWorkflowDescription",
        verb: "update_workflow_description",
        help: "Updates a workflow's description.",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "RemovePe",
        verb: "remove_pe",
        help: "Removes a PE by name or ID.",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "RemoveWorkflow",
        verb: "remove_workflow",
        help: "Removes a workflow by name or ID.",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "RemoveAll",
        verb: "remove_all",
        help: "Removes all registered PEs and workflows.",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "SearchLiteral",
        verb: "literal_search",
        help: "Searches the registry for workflows and processing elements matching the search term. Accepts --top N.",
        usage: "\nUsage:\n  literal_search [workflow|pe] [search_term] [--top N]",
        idempotent: true,
    },
    EndpointDecl {
        name: "SearchSemantic",
        verb: "semantic_search",
        help: "Searches the registry for workflows and processing elements matching semantically the search term.",
        usage: "\nUsage:\n  semantic_search [workflow|pe] [search_term] [--top N]",
        idempotent: true,
    },
    EndpointDecl {
        name: "CodeRecommendation",
        verb: "code_recommendation",
        help: "Provides code recommendations from registered workflows and processing elements matching the code snippet.",
        usage: "\nUsage:\n  code_recommendation [workflow|pe] [code_snippet] [--embedding_type llm|spt] [--top N]",
        idempotent: true,
    },
    EndpointDecl {
        name: "CodeCompletion",
        verb: "code_completion",
        help: "Completes a partially typed PE from the most structurally similar registered PE.",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "GetExecutions",
        verb: "history",
        help: "Lists the recorded executions of a workflow.",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "Run",
        verb: "run",
        help: "Runs a workflow in the registry based on the provided name or ID.",
        usage: "\nUsage:\n  run identifier [options]\n\nOptions:\n  identifier            Name or ID of the workflow to run\n  --rawinput            Treat input as raw string instead of evaluating it\n  -v, --verbose         Enable verbose output\n  -i, --input <data>    Input data for the workflow (can be used multiple times)\n  --multi <n>           Run the workflow in parallel using multiprocessing\n  --dynamic             Run the workflow in parallel using Redis\n  --fault-policy <p>    fail-fast (default) | retry | dead-letter\n  --retries <n>         Attempts per datum under retry/dead-letter (default 3)\n  --backoff-ms <n>      Base backoff between retry attempts (default 10)\n  --task-timeout-ms <n> Per-task timeout for --dynamic runs",
        idempotent: false,
    },
    EndpointDecl {
        name: "UploadResource",
        verb: "",
        help: "",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "RunWithInlineResources",
        verb: "",
        help: "",
        usage: "",
        idempotent: false,
    },
    EndpointDecl {
        name: "Metrics",
        verb: "metrics",
        help: "Prints the server's request metrics snapshot (per-endpoint counts and latency percentiles).",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "Compact",
        verb: "compact",
        help: "Folds the registry's write-ahead log into an atomic snapshot (requires a server started with --data-dir).",
        usage: "",
        idempotent: true,
    },
    EndpointDecl {
        name: "Health",
        verb: "health",
        help: "Prints the server's liveness/readiness and storage health; exits nonzero when the server is not ready (degraded storage).",
        usage: "\nUsage:\n  health\n\nExit status is nonzero when the server is degraded, so the verb can\nback a container healthcheck directly.",
        idempotent: true,
    },
];

/// Declaration row for a wire endpoint name.
pub fn decl(name: &str) -> Option<&'static EndpointDecl> {
    ENDPOINTS.iter().find(|d| d.name == name)
}

/// Declaration row for a CLI verb.
pub fn decl_for_verb(verb: &str) -> Option<&'static EndpointDecl> {
    ENDPOINTS
        .iter()
        .find(|d| !d.verb.is_empty() && d.verb == verb)
}

/// Whether re-sending `req` can never duplicate side effects, making a
/// retry after an ambiguous failure (timeout) safe. Derived from the
/// endpoint declarations: the idempotency class is stated once, in
/// [`ENDPOINTS`], not re-listed in the retry loop.
pub fn is_idempotent(req: &Request) -> bool {
    decl(req.endpoint()).is_some_and(|d| d.idempotent)
}

fn need(token: Option<u64>) -> Result<u64, ClientError> {
    token.ok_or(ClientError::NotLoggedIn)
}

fn unexpected<T>(other: Response) -> Result<T, ClientError> {
    Err(ClientError::UnexpectedResponse(format!("{other:?}")))
}

/// Declares one marker type and its [`Endpoint`] impl.
macro_rules! endpoint {
    (
        $(#[$doc:meta])*
        $ty:ident = $name:literal {
            params: $params:ty,
            output: $output:ty,
            request($token:pat_param, $p:pat_param) $build:block,
            response($resp:ident) $parse:block $(,)?
        }
    ) => {
        $(#[$doc])*
        pub struct $ty;

        impl Endpoint for $ty {
            type Params = $params;
            type Output = $output;
            const NAME: &'static str = $name;

            fn request($token: Option<u64>, $p: Self::Params) -> Result<Request, ClientError> $build

            fn response($resp: Response) -> Result<Self::Output, ClientError> $parse
        }
    };
}

endpoint! {
    /// `register`: create a user; returns the session token.
    RegisterUser = "RegisterUser" {
        params: (String, String),
        output: u64,
        request(_, (username, password)) {
            Ok(Request::RegisterUser { username, password })
        },
        response(resp) {
            match resp {
                Response::Token(t) => Ok(t),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `login`: authenticate; returns the session token.
    Login = "Login" {
        params: (String, String),
        output: u64,
        request(_, (username, password)) {
            Ok(Request::Login { username, password })
        },
        response(resp) {
            match resp {
                Response::Token(t) => Ok(t),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `register_PE`: one PE; returns its id.
    RegisterPe = "RegisterPe" {
        params: PeSubmission,
        output: u64,
        request(token, pe) {
            Ok(Request::RegisterPe { token: need(token)?, pe })
        },
        response(resp) {
            match resp {
                Response::Registered { pe_ids, .. } => Ok(pe_ids[0].1),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `register_Workflow`: a workflow plus its member PEs.
    RegisterWorkflow = "RegisterWorkflow" {
        params: (String, String, Option<String>, Vec<PeSubmission>),
        output: RegisteredWorkflow,
        request(token, (name, code, description, pes)) {
            Ok(Request::RegisterWorkflow { token: need(token)?, name, code, description, pes })
        },
        response(resp) {
            match resp {
                Response::Registered { pe_ids, workflow_id } => Ok(RegisteredWorkflow {
                    pes: pe_ids,
                    workflow: workflow_id
                        .ok_or_else(|| ClientError::UnexpectedResponse("no workflow id".into()))?,
                }),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `ingest` (v6): a batch of PEs and workflows in one request, with
    /// per-item outcomes.
    RegisterBatch = "RegisterBatch" {
        params: Vec<BatchItemWire>,
        output: Vec<BatchOutcomeWire>,
        request(token, items) {
            Ok(Request::RegisterBatch { token: need(token)?, items })
        },
        response(resp) {
            match resp {
                Response::BatchRegistered { outcomes } => Ok(outcomes),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `get_PE`.
    GetPe = "GetPe" {
        params: Ident,
        output: PeInfo,
        request(token, ident) {
            Ok(Request::GetPe { token: need(token)?, ident })
        },
        response(resp) {
            match resp {
                Response::Pe(p) => Ok(p),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `get_Workflow`.
    GetWorkflow = "GetWorkflow" {
        params: Ident,
        output: WorkflowInfo,
        request(token, ident) {
            Ok(Request::GetWorkflow { token: need(token)?, ident })
        },
        response(resp) {
            match resp {
                Response::Workflow(w) => Ok(w),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `get_PEs_By_Workflow`.
    GetPesByWorkflow = "GetPesByWorkflow" {
        params: Ident,
        output: Vec<PeInfo>,
        request(token, ident) {
            Ok(Request::GetPesByWorkflow { token: need(token)?, ident })
        },
        response(resp) {
            match resp {
                Response::Pes(p) => Ok(p),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `get_Registry`.
    GetRegistry = "GetRegistry" {
        params: (),
        output: (Vec<PeInfo>, Vec<WorkflowInfo>),
        request(token, ()) {
            Ok(Request::GetRegistry { token: need(token)? })
        },
        response(resp) {
            match resp {
                Response::Registry { pes, workflows } => Ok((pes, workflows)),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `describe`.
    Describe = "Describe" {
        params: (SearchScope, Ident),
        output: String,
        request(token, (scope, ident)) {
            Ok(Request::Describe { token: need(token)?, scope, ident })
        },
        response(resp) {
            match resp {
                Response::Description(d) => Ok(d),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `update_PE_Description`.
    UpdatePeDescription = "UpdatePeDescription" {
        params: (Ident, String),
        output: (),
        request(token, (ident, description)) {
            Ok(Request::UpdatePeDescription { token: need(token)?, ident, description })
        },
        response(resp) {
            match resp {
                Response::Ok => Ok(()),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `update_Workflow_Description`.
    UpdateWorkflowDescription = "UpdateWorkflowDescription" {
        params: (Ident, String),
        output: (),
        request(token, (ident, description)) {
            Ok(Request::UpdateWorkflowDescription { token: need(token)?, ident, description })
        },
        response(resp) {
            match resp {
                Response::Ok => Ok(()),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `remove_PE`.
    RemovePe = "RemovePe" {
        params: Ident,
        output: (),
        request(token, ident) {
            Ok(Request::RemovePe { token: need(token)?, ident })
        },
        response(resp) {
            match resp {
                Response::Ok => Ok(()),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `remove_Workflow`.
    RemoveWorkflow = "RemoveWorkflow" {
        params: Ident,
        output: (),
        request(token, ident) {
            Ok(Request::RemoveWorkflow { token: need(token)?, ident })
        },
        response(resp) {
            match resp {
                Response::Ok => Ok(()),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `remove_All`.
    RemoveAll = "RemoveAll" {
        params: (),
        output: (),
        request(token, ()) {
            Ok(Request::RemoveAll { token: need(token)? })
        },
        response(resp) {
            match resp {
                Response::Ok => Ok(()),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `search_Registry_Literal` (with optional result cap).
    SearchLiteral = "SearchLiteral" {
        params: (SearchScope, String, Option<usize>),
        output: (Vec<PeInfo>, Vec<WorkflowInfo>),
        request(token, (scope, term, top_n)) {
            Ok(Request::SearchLiteral { token: need(token)?, scope, term, top_n })
        },
        response(resp) {
            match resp {
                Response::Registry { pes, workflows } => Ok((pes, workflows)),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `search_Registry_Semantic` (with optional top-k).
    SearchSemantic = "SearchSemantic" {
        params: (SearchScope, String, Option<usize>),
        output: Vec<SemanticHit>,
        request(token, (scope, query, top_n)) {
            Ok(Request::SearchSemantic { token: need(token)?, scope, query, top_n })
        },
        response(resp) {
            match resp {
                Response::SemanticResults(hits) => Ok(hits),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// `code_Recommendation` (with optional top-k).
    CodeRecommendation = "CodeRecommendation" {
        params: (SearchScope, String, EmbeddingType, Option<usize>),
        output: Vec<RecommendationHit>,
        request(token, (scope, snippet, embedding_type, top_n)) {
            Ok(Request::CodeRecommendation {
                token: need(token)?,
                scope,
                snippet,
                embedding_type,
                top_n,
            })
        },
        response(resp) {
            match resp {
                Response::Recommendations(hits) => Ok(hits),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// Context-aware code completion (§III).
    CodeCompletion = "CodeCompletion" {
        params: String,
        output: CompletionResult,
        request(token, snippet) {
            Ok(Request::CodeCompletion { token: need(token)?, snippet })
        },
        response(resp) {
            match resp {
                Response::Completion { source, lines, progress } => Ok((source, lines, progress)),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// Execution history of a workflow.
    GetExecutions = "GetExecutions" {
        params: Ident,
        output: Vec<ExecutionInfo>,
        request(token, ident) {
            Ok(Request::GetExecutions { token: need(token)?, ident })
        },
        response(resp) {
            match resp {
                Response::Executions(rows) => Ok(rows),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// The server's observability snapshot.
    Metrics = "Metrics" {
        params: (),
        output: MetricsSnapshot,
        request(_, ()) {
            Ok(Request::Metrics {})
        },
        response(resp) {
            match resp {
                Response::Metrics(snap) => Ok(*snap),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// Force a registry snapshot compaction.
    Compact = "Compact" {
        params: (),
        output: CompactReport,
        request(token, ()) {
            Ok(Request::Compact { token: need(token)? })
        },
        response(resp) {
            match resp {
                Response::Compacted { wal_records, wal_bytes, snapshot_bytes } => Ok(CompactReport {
                    wal_records,
                    wal_bytes,
                    snapshot_bytes,
                }),
                other => unexpected(other),
            }
        }
    }
}

endpoint! {
    /// Liveness/readiness + storage health (tokenless, like `Metrics`,
    /// so orchestrator healthchecks need no session).
    Health = "Health" {
        params: (),
        output: HealthReport,
        request(_, ()) {
            Ok(Request::Health {})
        },
        response(resp) {
            match resp {
                Response::Health {
                    live,
                    ready,
                    storage,
                    last_persist_error,
                    uptime_ms,
                    degraded_transitions,
                } => Ok(HealthReport {
                    live,
                    ready,
                    storage,
                    last_persist_error,
                    uptime_ms,
                    degraded_transitions,
                }),
                other => unexpected(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One sample request per wire endpoint, used to pin the
    /// declaration table against the protocol enum.
    fn sample_requests() -> Vec<Request> {
        let ident = Ident::Id(1);
        vec![
            Request::RegisterUser {
                username: "u".into(),
                password: "p".into(),
            },
            Request::Login {
                username: "u".into(),
                password: "p".into(),
            },
            Request::RegisterPe {
                token: 1,
                pe: PeSubmission {
                    name: "A".into(),
                    code: "x".into(),
                    description: None,
                },
            },
            Request::RegisterWorkflow {
                token: 1,
                name: "w".into(),
                code: "x".into(),
                description: None,
                pes: vec![],
            },
            Request::RegisterBatch {
                token: 1,
                items: vec![],
            },
            Request::GetPe {
                token: 1,
                ident: ident.clone(),
            },
            Request::GetWorkflow {
                token: 1,
                ident: ident.clone(),
            },
            Request::GetPesByWorkflow {
                token: 1,
                ident: ident.clone(),
            },
            Request::GetRegistry { token: 1 },
            Request::Describe {
                token: 1,
                scope: SearchScope::Pe,
                ident: ident.clone(),
            },
            Request::UpdatePeDescription {
                token: 1,
                ident: ident.clone(),
                description: "d".into(),
            },
            Request::UpdateWorkflowDescription {
                token: 1,
                ident: ident.clone(),
                description: "d".into(),
            },
            Request::RemovePe {
                token: 1,
                ident: ident.clone(),
            },
            Request::RemoveWorkflow {
                token: 1,
                ident: ident.clone(),
            },
            Request::RemoveAll { token: 1 },
            Request::SearchLiteral {
                token: 1,
                scope: SearchScope::Both,
                term: "t".into(),
                top_n: None,
            },
            Request::SearchSemantic {
                token: 1,
                scope: SearchScope::Both,
                query: "q".into(),
                top_n: None,
            },
            Request::CodeRecommendation {
                token: 1,
                scope: SearchScope::Both,
                snippet: "s".into(),
                embedding_type: EmbeddingType::Spt,
                top_n: None,
            },
            Request::CodeCompletion {
                token: 1,
                snippet: "s".into(),
            },
            Request::GetExecutions { token: 1, ident },
            Request::Metrics {},
            Request::Compact { token: 1 },
            Request::Health {},
        ]
    }

    #[test]
    fn every_request_kind_has_a_declaration_row() {
        for req in sample_requests() {
            assert!(
                decl(req.endpoint()).is_some(),
                "no EndpointDecl row for {}",
                req.endpoint()
            );
        }
        // The streaming endpoints are declared too (for the CLI verb
        // table and the idempotency lookup), impl-less by design.
        for name in ["Run", "UploadResource", "RunWithInlineResources"] {
            assert!(decl(name).is_some(), "missing row for {name}");
        }
    }

    #[test]
    fn declared_idempotency_matches_the_retry_contract() {
        // The pre-v6 hardcoded set, now derived from the table: reads,
        // Login, Metrics and Compact retry on timeout; every mutation
        // (including RegisterBatch) does not.
        let idempotent: Vec<&str> = sample_requests()
            .iter()
            .filter(|r| is_idempotent(r))
            .map(|r| r.endpoint())
            .collect();
        assert_eq!(
            idempotent,
            vec![
                "Login",
                "GetPe",
                "GetWorkflow",
                "GetPesByWorkflow",
                "GetRegistry",
                "Describe",
                "SearchLiteral",
                "SearchSemantic",
                "CodeRecommendation",
                "CodeCompletion",
                "GetExecutions",
                "Metrics",
                "Compact",
                "Health",
            ]
        );
        assert!(!is_idempotent(&Request::RegisterBatch {
            token: 1,
            items: vec![]
        }));
        assert!(!decl("RegisterBatch").unwrap().retry_on_timeout());
        assert!(decl("GetRegistry").unwrap().retry_on_timeout());
    }

    #[test]
    fn endpoint_impls_build_their_own_wire_name() {
        let t = Some(7u64);
        let ident = Ident::Name("x".into());
        let pe = PeSubmission {
            name: "A".into(),
            code: "c".into(),
            description: None,
        };
        let cases: Vec<(&str, Request)> = vec![
            (
                RegisterUser::NAME,
                RegisterUser::request(t, ("u".into(), "p".into())).unwrap(),
            ),
            (
                Login::NAME,
                Login::request(t, ("u".into(), "p".into())).unwrap(),
            ),
            (
                RegisterPe::NAME,
                RegisterPe::request(t, pe.clone()).unwrap(),
            ),
            (
                RegisterWorkflow::NAME,
                RegisterWorkflow::request(t, ("w".into(), "c".into(), None, vec![])).unwrap(),
            ),
            (
                RegisterBatch::NAME,
                RegisterBatch::request(t, vec![]).unwrap(),
            ),
            (GetPe::NAME, GetPe::request(t, ident.clone()).unwrap()),
            (
                GetWorkflow::NAME,
                GetWorkflow::request(t, ident.clone()).unwrap(),
            ),
            (
                GetPesByWorkflow::NAME,
                GetPesByWorkflow::request(t, ident.clone()).unwrap(),
            ),
            (GetRegistry::NAME, GetRegistry::request(t, ()).unwrap()),
            (
                Describe::NAME,
                Describe::request(t, (SearchScope::Pe, ident.clone())).unwrap(),
            ),
            (
                UpdatePeDescription::NAME,
                UpdatePeDescription::request(t, (ident.clone(), "d".into())).unwrap(),
            ),
            (
                UpdateWorkflowDescription::NAME,
                UpdateWorkflowDescription::request(t, (ident.clone(), "d".into())).unwrap(),
            ),
            (RemovePe::NAME, RemovePe::request(t, ident.clone()).unwrap()),
            (
                RemoveWorkflow::NAME,
                RemoveWorkflow::request(t, ident.clone()).unwrap(),
            ),
            (RemoveAll::NAME, RemoveAll::request(t, ()).unwrap()),
            (
                SearchLiteral::NAME,
                SearchLiteral::request(t, (SearchScope::Both, "q".into(), None)).unwrap(),
            ),
            (
                SearchSemantic::NAME,
                SearchSemantic::request(t, (SearchScope::Both, "q".into(), None)).unwrap(),
            ),
            (
                CodeRecommendation::NAME,
                CodeRecommendation::request(
                    t,
                    (SearchScope::Both, "s".into(), EmbeddingType::Llm, None),
                )
                .unwrap(),
            ),
            (
                CodeCompletion::NAME,
                CodeCompletion::request(t, "s".into()).unwrap(),
            ),
            (
                GetExecutions::NAME,
                GetExecutions::request(t, ident).unwrap(),
            ),
            (Metrics::NAME, Metrics::request(t, ()).unwrap()),
            (Compact::NAME, Compact::request(t, ()).unwrap()),
            (Health::NAME, Health::request(t, ()).unwrap()),
        ];
        for (name, req) in cases {
            assert_eq!(
                req.endpoint(),
                name,
                "Endpoint::NAME drifted from the wire name"
            );
            assert!(decl(name).is_some(), "impl {name} has no declaration row");
        }
    }

    #[test]
    fn token_needing_endpoints_fail_without_login() {
        assert_eq!(
            GetRegistry::request(None, ()).unwrap_err(),
            ClientError::NotLoggedIn
        );
        assert_eq!(
            RegisterBatch::request(None, vec![]).unwrap_err(),
            ClientError::NotLoggedIn
        );
        // Auth endpoints, Metrics and Health work tokenless.
        assert!(Login::request(None, ("u".into(), "p".into())).is_ok());
        assert!(Metrics::request(None, ()).is_ok());
        assert!(Health::request(None, ()).is_ok());
    }

    #[test]
    fn cli_verbs_are_unique() {
        let mut verbs: Vec<&str> = ENDPOINTS
            .iter()
            .filter(|d| !d.verb.is_empty())
            .map(|d| d.verb)
            .collect();
        let n = verbs.len();
        verbs.sort_unstable();
        verbs.dedup();
        assert_eq!(verbs.len(), n, "duplicate CLI verb in ENDPOINTS");
        assert_eq!(decl_for_verb("ingest").unwrap().name, "RegisterBatch");
        assert!(decl_for_verb("").is_none());
    }
}
