//! `laminar-client` — the Laminar client library and CLI (paper §IV-A/B,
//! Table I, Fig. 5).
//!
//! Every function of the paper's Table I is a method on
//! [`LaminarClient`]:
//!
//! | Table I | method | status in paper |
//! |---|---|---|
//! | `register` | [`LaminarClient::register`] | |
//! | `login` | [`LaminarClient::login`] | |
//! | `register_PE` | [`LaminarClient::register_pe`] | new |
//! | `register_Workflow` | [`LaminarClient::register_workflow`] | improved |
//! | `get_PE` | [`LaminarClient::get_pe`] | |
//! | `get_Workflow` | [`LaminarClient::get_workflow`] | |
//! | `get_PEs_By_Workflow` | [`LaminarClient::get_pes_by_workflow`] | |
//! | `get_Registry` | [`LaminarClient::get_registry`] | |
//! | `describe` | [`LaminarClient::describe`] | |
//! | `update_PE_Description` | [`LaminarClient::update_pe_description`] | new |
//! | `update_Workflow_Description` | [`LaminarClient::update_workflow_description`] | new |
//! | `remove_PE` | [`LaminarClient::remove_pe`] | |
//! | `remove_Workflow` | [`LaminarClient::remove_workflow`] | |
//! | `remove_All` | [`LaminarClient::remove_all`] | new |
//! | `search_Registry_Literal` | [`LaminarClient::search_registry_literal`] | improved |
//! | `search_Registry_Semantic` | [`LaminarClient::search_registry_semantic`] | improved |
//! | `code_Recommendation` | [`LaminarClient::code_recommendation`] | new |
//! | `run` | [`LaminarClient::run`] | improved |
//! | `run_multiprocess` | [`LaminarClient::run_multiprocess`] | new |
//! | `run_dynamic` | [`LaminarClient::run_dynamic`] | new |
//!
//! The interactive CLI of Fig. 5 lives in [`cli`]; it is transcript-testable
//! (each input line returns its output text). Every method and every CLI
//! verb derives from the typed endpoint declarations in [`endpoint`] —
//! request shape, response shape, idempotency class and verb name are
//! stated once per endpoint and consumed by both layers.

pub mod cli;
pub mod client;
pub mod endpoint;
pub mod extract;

pub use cli::Cli;
pub use client::{
    ClientError, HealthReport, LaminarClient, RegisteredWorkflow, RetryPolicy, RunOutput,
};
pub use endpoint::{Endpoint, EndpointDecl, ENDPOINTS};
pub use extract::extract_pes_from_source;
