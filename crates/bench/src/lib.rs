//! `laminar-bench` — shared evaluation harness code.
//!
//! Every table and figure of the paper's §VII (plus the performance claims
//! embedded in §IV) has a binary in `src/bin/` that regenerates it; the
//! heavy lifting — corpus construction, retrieval runs, precision-recall
//! sweeps — lives here so the binaries, the Criterion benches and the
//! integration tests all share one implementation.
//!
//! | binary | paper artefact | DESIGN.md id |
//! |---|---|---|
//! | `fig10_descriptions` | Fig. 10a/b | E1 |
//! | `fig11_text_to_code` | Fig. 11 | E2 |
//! | `fig12_13_code_to_code` | Fig. 12 + Fig. 13 | E3, E4 |
//! | `table1_client_functions` | Table I | E5 |
//! | `table2_schema` | Table II / Fig. 6 | E6 |
//! | `eval_streaming` | §IV-E true-streaming | E8 |
//! | `eval_resources` | §IV-F resource caching | E9 |
//! | `eval_mappings` | §II-A mappings / Fig. 5b | E10 |
//! | `ablation_aroma_variants` | simplified-vs-full Aroma | E12 |
//! | `ablation_description_context` | Fig. 10 → Fig. 11 coupling | E13 |
//! | `ablation_lsh` | §IX future work: LSH for structural code | E14 |
//! | `ablation_spt_features` | Aroma feature-family ablation | E15 |

use csn::{pr_curve, Dataset, DatasetConfig, PrPoint};
use embed::{CodeT5Sim, DescriptionContext, ReaccSim, UniXcoderSim};
use rayon::prelude::*;
use spt::{FeatureVec, Spt};
use std::collections::HashSet;

/// The standard evaluation corpus (laptop-scale stand-in for the paper's
/// 450k-function CodeSearchNet conversion; see DESIGN.md §1).
pub fn standard_corpus() -> Dataset {
    corpus_with_variants(10)
}

/// Corpus with an explicit variants-per-family count (the figure binaries
/// accept it as their first CLI argument for scale sweeps).
pub fn corpus_with_variants(variants_per_family: usize) -> Dataset {
    Dataset::generate(DatasetConfig {
        variants_per_family,
        seed: 42,
        ..DatasetConfig::default()
    })
}

/// Parse the binaries' optional first argument: variants per family
/// (default 10 → 300 PEs).
pub fn corpus_from_args() -> Dataset {
    let variants = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    corpus_with_variants(variants)
}

/// Corpus sized for the search-latency benches: `n` PEs spread across the
/// whole family catalogue (the `search_latency` Criterion bench and the
/// `bench_search` binary share it so their numbers are comparable).
pub fn search_corpus(n: usize) -> Dataset {
    Dataset::generate(DatasetConfig {
        families: csn::family_catalogue().len(),
        variants_per_family: n / csn::family_catalogue().len() + 1,
        seed: 9,
        ..DatasetConfig::default()
    })
}

/// A smaller corpus for quick Criterion iterations.
pub fn small_corpus() -> Dataset {
    Dataset::generate(DatasetConfig {
        families: 12,
        variants_per_family: 6,
        seed: 42,
        ..DatasetConfig::default()
    })
}

/// Ranking depth for the PR sweeps.
pub const MAX_K: usize = 30;

// ---------------------------------------------------------------------------
// E2 — Fig. 11: text-to-code search
// ---------------------------------------------------------------------------

/// Run the Fig. 11 protocol: for every PE, generate a description with
/// CodeT5 (context per `ctx`), embed it with UniXcoder, store; then query
/// with the entry's ground-truth description paraphrase and rank by cosine.
/// Returns the averaged PR curve.
pub fn text_to_code_eval(dataset: &Dataset, ctx: DescriptionContext) -> Vec<PrPoint> {
    let gen = CodeT5Sim::new(ctx);
    let embedder = UniXcoderSim::new();

    // Stored side: auto-generated description embeddings (§V-B).
    let stored: Vec<embed::DenseVec> = dataset
        .entries
        .par_iter()
        .map(|e| embedder.embed_text(&gen.describe_pe(&e.code)))
        .collect();

    // Query side: the CodeSearchNet-style natural-language descriptions.
    let queries: Vec<(Vec<u64>, HashSet<u64>)> = dataset
        .entries
        .par_iter()
        .map(|e| {
            let qvec = embedder.embed_text(&e.description);
            let ranked = rank_dense(&qvec, &stored);
            let mut relevant: HashSet<u64> = dataset.relevant_to(e).into_iter().collect();
            relevant.insert(e.id);
            (ranked, relevant)
        })
        .collect();

    pr_curve(&queries, MAX_K)
}

fn rank_dense(query: &embed::DenseVec, stored: &[embed::DenseVec]) -> Vec<u64> {
    let mut scored: Vec<(u64, f32)> = stored
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u64, query.cosine(v)))
        .collect();
    scored.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.into_iter().map(|(id, _)| id).collect()
}

// ---------------------------------------------------------------------------
// E3/E4 — Fig. 12/13: code-to-code search under omission
// ---------------------------------------------------------------------------

/// Which code-to-code retriever to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeRetriever {
    /// Aroma SPT structural features (Fig. 12).
    Aroma,
    /// ReACC-py-retriever substitute (Fig. 13).
    Reacc,
}

/// Run the Fig. 12/13 protocol: index every PE's full code; query with each
/// PE's code truncated by `omission` (0.0 / 0.5 / 0.75 / 0.9); rank and
/// sweep precision/recall.
pub fn code_to_code_eval(
    dataset: &Dataset,
    retriever: CodeRetriever,
    omission: f64,
) -> Vec<PrPoint> {
    match retriever {
        CodeRetriever::Aroma => {
            let stored: Vec<FeatureVec> = dataset
                .entries
                .par_iter()
                .map(|e| Spt::parse_source(&e.code).feature_vec())
                .collect();
            let queries: Vec<(Vec<u64>, HashSet<u64>)> = dataset
                .entries
                .par_iter()
                .map(|e| {
                    let partial = pyparse::drop_suffix_fraction(&e.code, omission);
                    let qvec = Spt::parse_source(&partial).feature_vec();
                    let mut scored: Vec<(u64, f32)> = stored
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (i as u64, qvec.overlap(v)))
                        .collect();
                    scored.sort_unstable_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.0.cmp(&b.0))
                    });
                    let ranked = scored.into_iter().map(|(id, _)| id).collect();
                    let mut relevant: HashSet<u64> = dataset.relevant_to(e).into_iter().collect();
                    relevant.insert(e.id);
                    (ranked, relevant)
                })
                .collect();
            pr_curve(&queries, MAX_K)
        }
        CodeRetriever::Reacc => {
            let model = ReaccSim::new();
            let stored: Vec<embed::DenseVec> = dataset
                .entries
                .par_iter()
                .map(|e| model.embed_code(&e.code))
                .collect();
            let queries: Vec<(Vec<u64>, HashSet<u64>)> = dataset
                .entries
                .par_iter()
                .map(|e| {
                    let partial = pyparse::drop_suffix_fraction(&e.code, omission);
                    let qvec = model.embed_code(&partial);
                    let ranked = rank_dense(&qvec, &stored);
                    let mut relevant: HashSet<u64> = dataset.relevant_to(e).into_iter().collect();
                    relevant.insert(e.id);
                    (ranked, relevant)
                })
                .collect();
            pr_curve(&queries, MAX_K)
        }
    }
}

/// The omission levels of §VII-D.
pub const OMISSION_LEVELS: &[f64] = &[0.0, 0.5, 0.75, 0.9];

// ---------------------------------------------------------------------------
// E1 — Fig. 10: description quality
// ---------------------------------------------------------------------------

/// Keyword recall of a generated description against the family's
/// vocabulary: the fraction of content words of the ground-truth
/// description that the generated one mentions.
pub fn description_keyword_recall(generated: &str, ground_truth: &str) -> f64 {
    let gen_tokens: HashSet<String> = embed::text_tokens(generated).into_iter().collect();
    let truth_tokens: Vec<String> = embed::text_tokens(ground_truth);
    if truth_tokens.is_empty() {
        return 0.0;
    }
    let hits = truth_tokens
        .iter()
        .filter(|t| {
            gen_tokens.contains(*t)
                || gen_tokens
                    .iter()
                    .any(|g| g.starts_with(t.as_str()) || t.starts_with(g.as_str()))
        })
        .count();
    hits as f64 / truth_tokens.len() as f64
}

/// Mean keyword recall over the corpus for one description context.
pub fn description_quality(dataset: &Dataset, ctx: DescriptionContext) -> f64 {
    let gen = CodeT5Sim::new(ctx);
    let total: f64 = dataset
        .entries
        .par_iter()
        .map(|e| description_keyword_recall(&gen.describe_pe(&e.code), &e.description))
        .sum();
    total / dataset.len() as f64
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

/// Render a PR curve as an aligned text table with its best F1.
pub fn render_curve(title: &str, curve: &[PrPoint]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(
        s,
        "{:>4}  {:>9}  {:>9}  {:>9}",
        "k", "precision", "recall", "f1"
    );
    for p in curve {
        let _ = writeln!(
            s,
            "{:>4}  {:>9.4}  {:>9.4}  {:>9.4}",
            p.k,
            p.precision,
            p.recall,
            p.f1()
        );
    }
    let (f1, k) = csn::best_f1(curve);
    let _ = writeln!(s, "best F1 = {f1:.4} at k = {k}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use csn::best_f1;

    fn tiny() -> Dataset {
        Dataset::generate(DatasetConfig {
            families: 8,
            variants_per_family: 5,
            seed: 42,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn fig11_shape_realistic_f1() {
        let curve = text_to_code_eval(&tiny(), DescriptionContext::FullClass);
        let (f1, _) = best_f1(&curve);
        // The paper reports 0.61; the synthetic corpus should land in a
        // plausible band — well above chance, well below perfect.
        assert!(f1 > 0.35, "text-to-code F1 too low: {f1}");
        assert!(f1 < 0.98, "text-to-code F1 suspiciously perfect: {f1}");
        // Recall must be monotone in k.
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall - 1e-9);
        }
    }

    #[test]
    fn fig12_13_aroma_beats_reacc_under_omission() {
        let d = tiny();
        for &omission in &[0.5, 0.75] {
            let aroma = best_f1(&code_to_code_eval(&d, CodeRetriever::Aroma, omission)).0;
            let reacc = best_f1(&code_to_code_eval(&d, CodeRetriever::Reacc, omission)).0;
            assert!(
                aroma > reacc,
                "omission {omission}: aroma {aroma} must beat reacc {reacc}"
            );
        }
    }

    #[test]
    fn fig12_aroma_degrades_gracefully() {
        let d = tiny();
        let full = best_f1(&code_to_code_eval(&d, CodeRetriever::Aroma, 0.0)).0;
        let ninety = best_f1(&code_to_code_eval(&d, CodeRetriever::Aroma, 0.9)).0;
        assert!(full > ninety, "full {full} vs 90% dropped {ninety}");
        assert!(
            ninety > 0.1,
            "Aroma must still work at 90% omission: {ninety}"
        );
    }

    #[test]
    fn fig10_full_class_beats_process_only() {
        let d = tiny();
        let full = description_quality(&d, DescriptionContext::FullClass);
        let proc = description_quality(&d, DescriptionContext::ProcessMethodOnly);
        assert!(
            full > proc,
            "full-class recall {full} must beat process-only {proc}"
        );
    }

    #[test]
    fn keyword_recall_metric() {
        assert!(
            description_keyword_recall("sums the numbers of a list", "sum all numbers in a list")
                > 0.6
        );
        assert_eq!(description_keyword_recall("", "anything here"), 0.0);
        assert_eq!(description_keyword_recall("words", ""), 0.0);
    }

    #[test]
    fn render_curve_is_table_shaped() {
        let curve = vec![PrPoint {
            k: 1,
            precision: 1.0,
            recall: 0.2,
        }];
        let s = render_curve("test", &curve);
        assert!(s.contains("# test"));
        assert!(s.contains("best F1"));
        assert!(s.contains("1.0000"));
    }
}
