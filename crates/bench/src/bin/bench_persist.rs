//! Durability-cost benchmark: registration throughput with the WAL off /
//! on / on with per-append fsync, plus recovery time as a function of WAL
//! length, written to `BENCH_persist.json`.
//!
//! The first sweep prices the durability ladder: an in-memory registry is
//! the ceiling, OS-buffered WAL appends show the cost of the serialised
//! frame write, and `--wal-fsync` shows the cost of making every
//! acknowledgement crash-proof rather than process-crash-proof. The
//! second sweep measures `Registry::open` replaying logs of increasing
//! length — the number that tells an operator how to set
//! `--snapshot-every`.
//!
//! Run with `cargo run --release -p laminar-bench --bin bench_persist`.
//! Pass a registration count to override the default
//! (`bench_persist 5000`).

use laminar_registry::{NewPe, PersistOptions, Registry, SyncPolicy};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Timed repetitions per cell; the median elapsed time is reported.
const REPS: usize = 3;

#[derive(Serialize)]
struct ThroughputResult {
    mode: &'static str,
    registrations: u64,
    elapsed_ms: f64,
    registrations_per_s: f64,
    wal_bytes: u64,
    fsyncs: u64,
}

#[derive(Serialize)]
struct RecoveryResult {
    wal_records: u64,
    recovery_ms: f64,
    records_per_s: f64,
}

#[derive(Serialize)]
struct Report {
    registrations: u64,
    throughput: Vec<ThroughputResult>,
    recovery: Vec<RecoveryResult>,
}

fn bench_dir(tag: &str, rep: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laminar-bench-persist-{tag}-{rep}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pe(user_id: u64, i: u64) -> NewPe {
    NewPe {
        user_id,
        name: format!("BenchPe{i}"),
        description: "counts the words of the stream".into(),
        code: "class BenchPe(IterativePE):\n    def _process(self, d):\n        return d".into(),
        description_embedding: "0.12,0.34,0.56".into(),
        spt_embedding: "0.78,0.90".into(),
    }
}

/// Register `n` PEs against a fresh registry in `mode`; returns elapsed ms
/// and the persistence counters (zeroed for the in-memory mode).
fn registration_run(mode: &'static str, n: u64, rep: usize) -> (f64, u64, u64) {
    let dir = bench_dir(mode, rep);
    let reg = match mode {
        "in-memory" => Registry::new(),
        "wal" => Registry::open(
            &dir,
            PersistOptions {
                snapshot_every: 0,
                sync: SyncPolicy::OsBuffered,
            },
        )
        .expect("open bench registry"),
        "wal+fsync" => Registry::open(
            &dir,
            PersistOptions {
                snapshot_every: 0,
                sync: SyncPolicy::EveryAppend,
            },
        )
        .expect("open bench registry"),
        other => unreachable!("unknown mode {other}"),
    };
    let user = reg.register_user("bench", "pw").expect("register user");
    let start = Instant::now();
    for i in 0..n {
        reg.add_pe(pe(user, i)).expect("unique names never collide");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let (wal_bytes, fsyncs) = reg
        .persist_stats()
        .map(|s| (s.wal_bytes, s.fsyncs))
        .unwrap_or((0, 0));
    drop(reg);
    let _ = std::fs::remove_dir_all(&dir);
    (elapsed_ms, wal_bytes, fsyncs)
}

/// Build a WAL of `records` registrations, then time a cold
/// `Registry::open` replaying it.
fn recovery_run(records: u64, rep: usize) -> f64 {
    let dir = bench_dir("recovery", rep);
    let opts = PersistOptions {
        snapshot_every: 0,
        sync: SyncPolicy::OsBuffered,
    };
    {
        let reg = Registry::open(&dir, opts).expect("open bench registry");
        let user = reg.register_user("bench", "pw").expect("register user");
        for i in 0..records.saturating_sub(1) {
            reg.add_pe(pe(user, i)).expect("unique names never collide");
        }
    }
    let start = Instant::now();
    let reg = Registry::open(&dir, opts).expect("recover bench registry");
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = reg.persist_stats().expect("durable registry has stats");
    assert_eq!(stats.recovered_records, records, "whole log replays");
    drop(reg);
    let _ = std::fs::remove_dir_all(&dir);
    elapsed_ms
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    let mut report = Report {
        registrations: n,
        throughput: Vec::new(),
        recovery: Vec::new(),
    };

    println!("# durability cost — {n} PE registrations per mode\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>8}",
        "mode", "elapsed ms", "regs/s", "wal bytes", "fsyncs"
    );
    for mode in ["in-memory", "wal", "wal+fsync"] {
        let mut runs: Vec<(f64, u64, u64)> =
            (0..REPS).map(|rep| registration_run(mode, n, rep)).collect();
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (elapsed_ms, wal_bytes, fsyncs) = runs[REPS / 2];
        let per_s = n as f64 / (elapsed_ms / 1e3).max(1e-9);
        println!(
            "{:<10} {:>12.1} {:>14.0} {:>12} {:>8}",
            mode, elapsed_ms, per_s, wal_bytes, fsyncs
        );
        report.throughput.push(ThroughputResult {
            mode,
            registrations: n,
            elapsed_ms,
            registrations_per_s: per_s,
            wal_bytes,
            fsyncs,
        });
    }

    println!("\n# recovery time vs WAL length\n");
    println!("{:>12} {:>14} {:>14}", "wal records", "recovery ms", "recs/s");
    for records in [n / 4, n, n * 4] {
        let records = records.max(1);
        let elapsed_ms = median((0..REPS).map(|rep| recovery_run(records, rep)).collect());
        let per_s = records as f64 / (elapsed_ms / 1e3).max(1e-9);
        println!("{:>12} {:>14.1} {:>14.0}", records, elapsed_ms, per_s);
        report.recovery.push(RecoveryResult {
            wal_records: records,
            recovery_ms: elapsed_ms,
            records_per_s: per_s,
        });
    }

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_persist.json", &json).expect("write BENCH_persist.json");
    eprintln!("wrote BENCH_persist.json");
}
