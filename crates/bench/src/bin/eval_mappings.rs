//! E10 — the mapping comparison (§II-A, Fig. 5b): sequential vs
//! multiprocessing (static) vs dynamic (Redis-style) enactment, on uniform
//! and skewed workloads.
//!
//! Two workload classes:
//! * **latency-bound** (I/O-ish PEs — the common dispel4py case): parallel
//!   mappings overlap the per-item waits, so they win even on one core;
//! * **cpu-bound** (trial division): wins require real cores, so this half
//!   is informative only on multi-core machines (the shape note says which
//!   applies).
//!
//! Expected shape: parallel ≪ sequential on latency-bound work; the
//! dynamic mapping matches or beats the static partition on the *skewed*
//! variant, where fixed ranks sit idle.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin eval_mappings
//! ```

use d4py::mapping::{run, DynamicConfig, Mapping, RunInput};
use d4py::workflows::{cpu_bound_graph, latency_bound_graph};
use std::time::{Duration, Instant};

const ITEMS: u64 = 96;
const PROCESSES: usize = 6;
const DELAY_US: u64 = 2_000;
const CPU_WORK: u64 = 800;

fn time_run(graph: &d4py::WorkflowGraph, mapping: &Mapping) -> Duration {
    let t0 = Instant::now();
    let r = run(graph, RunInput::Iterations(ITEMS), mapping).expect("run");
    assert_eq!(r.lines().len(), ITEMS as usize);
    t0.elapsed()
}

fn row(label: &str, graph_of: impl Fn() -> d4py::WorkflowGraph) {
    let seq = time_run(&graph_of(), &Mapping::Simple);
    let multi = time_run(
        &graph_of(),
        &Mapping::Multi {
            processes: PROCESSES,
        },
    );
    let dynamic = time_run(
        &graph_of(),
        &Mapping::Dynamic(DynamicConfig {
            initial_workers: PROCESSES,
            max_workers: PROCESSES,
            autoscale: false,
            scale_threshold: 4,
        }),
    );
    println!(
        "{:<22} {:>14.1} {:>14.1} {:>14.1}   {:>5.1}x / {:>4.1}x",
        label,
        seq.as_secs_f64() * 1e3,
        multi.as_secs_f64() * 1e3,
        dynamic.as_secs_f64() * 1e3,
        seq.as_secs_f64() / multi.as_secs_f64().max(1e-9),
        seq.as_secs_f64() / dynamic.as_secs_f64().max(1e-9),
    );
}

fn main() {
    println!(
        "# Mapping comparison — {ITEMS} items, {PROCESSES} processes/workers, {} cores\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    println!(
        "{:<22} {:>14} {:>14} {:>14}   speedups",
        "workload", "sequential ms", "multi ms", "dynamic ms"
    );
    row("latency uniform", || latency_bound_graph(DELAY_US, false));
    row("latency skewed", || latency_bound_graph(DELAY_US, true));
    row("cpu uniform", || cpu_bound_graph(CPU_WORK, false));
    row("cpu skewed", || cpu_bound_graph(CPU_WORK, true));

    // Fig. 5b's partition print-out.
    let g = d4py::workflows::isprime_graph();
    let partition = g.partition(9).expect("partition");
    let names: Vec<String> = g
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            format!(
                "'{}{}': range({}, {})",
                n.name, i, partition[i].start, partition[i].end
            )
        })
        .collect();
    println!("\n# Fig. 5b rank partition for `run 169 -i 10 --multi -v` (9 processes)");
    println!("{{{}}}", names.join(", "));

    println!("\nshape check: latency-bound parallel speedups ≈ worker count; cpu-bound speedups require ≥ that many physical cores.");
}
