//! E8 — the §IV-E true-streaming claim: time-to-first-output (TTFO) and
//! total latency for the HTTP/1.1-style batch path (Laminar 1.0) vs the
//! HTTP/2-style streaming path (Laminar 2.0), as a function of stream
//! length.
//!
//! Expected shape: streaming TTFO stays ≈ one item's processing cost
//! regardless of stream length; batch TTFO grows with the whole run.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin eval_streaming
//! ```

use laminar_core::{Laminar, LaminarConfig};
use laminar_server::protocol::{FaultPolicyWire, Ident, RunInputWire, RunMode, WireFrame};
use laminar_server::{DeliveryMode, Request, Transport};
use std::time::{Duration, Instant};

const ITEM_COST: Duration = Duration::from_millis(3);

fn main() {
    let laminar = Laminar::deploy(LaminarConfig {
        prewarmed: 2,
        ..LaminarConfig::default()
    });
    // Slow emitting workflow: each item costs ITEM_COST.
    laminar.server().engine().library().register("slow_wf", || {
        use d4py::prelude::*;
        let mut g = WorkflowGraph::new("slow_wf");
        let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
        let slow = g.add(IterativePE::new("Slow", |d: Data| {
            std::thread::sleep(ITEM_COST);
            Some(d)
        }));
        let sink = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
            ctx.log(format!("item {d}"));
        }));
        g.connect(src, OUTPUT, slow, INPUT).unwrap();
        g.connect(slow, OUTPUT, sink, INPUT).unwrap();
        g
    });
    let mut boot = laminar.client();
    boot.register("bench", "pw").unwrap();
    let server = laminar.server();
    let token = match server
        .handle(Request::Login {
            username: "bench".into(),
            password: "pw".into(),
        })
        .value()
    {
        laminar_server::Response::Token(t) => t,
        other => panic!("{other:?}"),
    };
    server
        .handle(Request::RegisterWorkflow {
            token,
            name: "slow_wf".into(),
            code: String::new(),
            description: Some("slow emitting workflow".into()),
            pes: vec![],
        })
        .value();

    println!("# §IV-E — batch (HTTP/1.1, Laminar 1.0) vs streaming (HTTP/2, Laminar 2.0)\n");
    println!(
        "{:>6}  {:>14}  {:>14}  {:>13}  {:>13}  {:>8}",
        "items", "batch TTFO ms", "stream TTFO ms", "batch total", "stream total", "speedup"
    );

    for items in [5u64, 10, 20, 40] {
        let measure = |mode: DeliveryMode, streaming: bool| -> (Duration, Duration) {
            let tp = Transport::new(server.clone(), mode);
            let reply = tp.send(Request::Run {
                token,
                ident: Ident::Name("slow_wf".into()),
                input: RunInputWire::Iterations(items),
                mode: RunMode::Sequential,
                streaming,
                verbose: false,
                resources: vec![],
                fault: FaultPolicyWire::default(),
                task_timeout_ms: None,
            });
            let t0 = Instant::now();
            let mut ttfo = None;
            let mut total = Duration::ZERO;
            if let laminar_server::Reply::Stream(rx) = reply {
                for f in rx.iter() {
                    match f {
                        WireFrame::Line(_) => {
                            ttfo.get_or_insert_with(|| t0.elapsed());
                        }
                        WireFrame::End { .. } => {
                            total = t0.elapsed();
                            break;
                        }
                        _ => {}
                    }
                }
            }
            (ttfo.unwrap_or(total), total)
        };
        let (b_ttfo, b_total) = measure(DeliveryMode::Batch, false);
        let (s_ttfo, s_total) = measure(DeliveryMode::Streaming, true);
        println!(
            "{:>6}  {:>14.1}  {:>14.1}  {:>13.1}  {:>13.1}  {:>7.1}x",
            items,
            b_ttfo.as_secs_f64() * 1e3,
            s_ttfo.as_secs_f64() * 1e3,
            b_total.as_secs_f64() * 1e3,
            s_total.as_secs_f64() * 1e3,
            b_ttfo.as_secs_f64() / s_ttfo.as_secs_f64().max(1e-9),
        );
    }
    println!("\nshape check: streaming TTFO must stay flat while batch TTFO grows with the stream.");
}
