//! E14 — the paper's future work (§IX: "LSH for structural code"), built
//! and measured: MinHash-LSH candidate generation vs exhaustive SPT
//! overlap search, at growing registry sizes.
//!
//! Reports retrieval quality (best F1 on the Fig. 12 protocol at 50 %
//! omission), the fraction of the registry each query actually rescored,
//! and per-query latency.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin ablation_lsh
//! ```

use aroma::{LshConfig, LshIndex};
use csn::{best_f1, pr_curve, Dataset, DatasetConfig};
use laminar_bench::MAX_K;
use rayon::prelude::*;
use spt::{FeatureVec, Spt};
use std::collections::HashSet;
use std::time::Instant;

const OMISSION: f64 = 0.5;

fn main() {
    println!("# LSH (future work, §IX) vs exhaustive structural search — 50% omitted queries\n");
    println!(
        "{:>8}  {:>12}  {:>8}  {:>12}  {:>8}  {:>10}",
        "corpus", "exhaustive", "lsh F1", "candidates", "exh µs", "lsh µs"
    );

    for &variants in &[5usize, 10, 20] {
        let corpus = Dataset::generate(DatasetConfig {
            variants_per_family: variants,
            seed: 42,
            ..DatasetConfig::default()
        });
        let vecs: Vec<FeatureVec> = corpus
            .entries
            .par_iter()
            .map(|e| Spt::parse_source(&e.code).feature_vec())
            .collect();
        let queries: Vec<FeatureVec> = corpus
            .entries
            .par_iter()
            .map(|e| {
                Spt::parse_source(&pyparse::drop_suffix_fraction(&e.code, OMISSION)).feature_vec()
            })
            .collect();

        // Exhaustive.
        let t0 = Instant::now();
        let exhaustive: Vec<(Vec<u64>, HashSet<u64>)> = corpus
            .entries
            .iter()
            .zip(&queries)
            .map(|(e, q)| {
                let mut scored: Vec<(u64, f32)> = vecs
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i as u64, q.overlap(v)))
                    .collect();
                scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                let ranked = scored.into_iter().map(|(id, _)| id).collect();
                let mut rel: HashSet<u64> = corpus.relevant_to(e).into_iter().collect();
                rel.insert(e.id);
                (ranked, rel)
            })
            .collect();
        let exh_us = t0.elapsed().as_micros() as f64 / corpus.len() as f64;
        let exh_f1 = best_f1(&pr_curve(&exhaustive, MAX_K)).0;

        // LSH.
        let mut lsh = LshIndex::new(LshConfig { bands: 16, rows: 2 });
        for (i, v) in vecs.iter().enumerate() {
            lsh.add(i as u64, v.clone());
        }
        let t1 = Instant::now();
        let mut candidate_frac = 0.0;
        let lsh_queries: Vec<(Vec<u64>, HashSet<u64>)> = corpus
            .entries
            .iter()
            .zip(&queries)
            .map(|(e, q)| {
                let (hits, stats) = lsh.search(q, MAX_K, 0.0);
                candidate_frac += stats.candidates as f64 / stats.indexed.max(1) as f64;
                let ranked = hits.into_iter().map(|h| h.id).collect();
                let mut rel: HashSet<u64> = corpus.relevant_to(e).into_iter().collect();
                rel.insert(e.id);
                (ranked, rel)
            })
            .collect();
        let lsh_us = t1.elapsed().as_micros() as f64 / corpus.len() as f64;
        candidate_frac /= corpus.len() as f64;
        let lsh_f1 = best_f1(&pr_curve(&lsh_queries, MAX_K)).0;

        println!(
            "{:>8}  {:>12.4}  {:>8.4}  {:>11.1}%  {:>8.0}  {:>10.0}",
            corpus.len(),
            exh_f1,
            lsh_f1,
            candidate_frac * 100.0,
            exh_us,
            lsh_us
        );
    }
    println!("\nshape check: LSH holds most of the exhaustive F1 while rescoring a shrinking fraction of the registry — the Senatus direction the paper names as future work.");
}
