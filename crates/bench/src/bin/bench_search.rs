//! E11 companion: top-k engine vs the old full-sort baseline, with the
//! numbers written to `BENCH_search.json`.
//!
//! For each corpus size (10k and 100k PEs by default; pass sizes as CLI
//! arguments to override) and each modality (semantic / SPT / ReACC) this
//! measures:
//!
//! * **baseline** — the pre-engine implementation: score every entry from
//!   per-entry `Vec`s, allocate an O(n) scored list, sort it fully, take k
//!   (exactly what `SearchIndexes` did before the SoA rewrite);
//! * **engine** — `SearchIndexes::rank_*` (flat slab, fused dot kernel,
//!   bounded size-k heap, rayon partitioning past 4096 rows);
//! * **upsert** — per-entry index update cost (slot-map overwrite path);
//! * **lsh** — the SPT path again with the MinHash prefilter engaged,
//!   with its candidate-pool fraction.
//!
//! Run with `cargo run --release -p laminar-bench --bin bench_search`.

use embed::{DenseVec, Embedder, ReaccSim, UniXcoderSim};
use laminar_bench::search_corpus;
use laminar_server::indexes::{EntryKind, SearchIndexes};
use serde::Serialize;
use spt::{FeatureVec, Spt};
use std::time::Instant;

/// The server's default per-query result bound.
const K: usize = 5;
/// Timed repetitions per measurement; the median is reported.
const REPS: usize = 15;

#[derive(Serialize)]
struct ModalityResult {
    n: usize,
    modality: &'static str,
    baseline_us: f64,
    engine_us: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct UpsertResult {
    n: usize,
    upsert_us: f64,
}

#[derive(Serialize)]
struct LshResult {
    n: usize,
    exact_us: f64,
    prefiltered_us: f64,
    candidate_fraction: f64,
}

#[derive(Serialize)]
struct Report {
    k: usize,
    sizes: Vec<usize>,
    results: Vec<ModalityResult>,
    upserts: Vec<UpsertResult>,
    lsh: Vec<LshResult>,
}

/// Median wall-clock microseconds of `REPS` runs of `f`.
fn time_us<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The old per-entry storage: what the indexes held before the SoA slabs.
struct Baseline {
    ids: Vec<u64>,
    desc: Vec<DenseVec>,
    spt: Vec<FeatureVec>,
    reacc: Vec<DenseVec>,
}

impl Baseline {
    /// The pre-engine ranking: score all, sort all, truncate to k.
    fn rank_dense(&self, vectors: &[DenseVec], q: &DenseVec) -> Vec<(u64, f32)> {
        let mut scored: Vec<(u64, f32)> = vectors
            .iter()
            .zip(&self.ids)
            .map(|(v, &id)| (id, q.cosine(v)))
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(K);
        scored
    }

    fn rank_spt(&self, q: &FeatureVec) -> Vec<(u64, f32)> {
        let mut scored: Vec<(u64, f32)> = self
            .spt
            .iter()
            .zip(&self.ids)
            .map(|(v, &id)| (id, q.overlap(v)))
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(K);
        scored
    }
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if args.is_empty() {
            vec![10_000, 100_000]
        } else {
            args
        }
    };

    let emb = UniXcoderSim::new();
    let reacc_model = ReaccSim::new();
    let qtext = emb.embed("detect anomalies in sensor readings");
    let qsnippet = "for item in data:\n    total += item\n";
    let qspt = Spt::parse_source(qsnippet).feature_vec();
    let qcode = reacc_model.embed_code(qsnippet);

    let mut report = Report {
        k: K,
        sizes: sizes.clone(),
        results: Vec::new(),
        upserts: Vec::new(),
        lsh: Vec::new(),
    };

    for &n in &sizes {
        eprintln!("building corpus n={n} ...");
        let corpus = search_corpus(n);
        let entries: Vec<_> = corpus.entries.iter().take(n).collect();

        let mut baseline = Baseline {
            ids: Vec::with_capacity(n),
            desc: Vec::with_capacity(n),
            spt: Vec::with_capacity(n),
            reacc: Vec::with_capacity(n),
        };
        let ix = SearchIndexes::new();
        for e in &entries {
            let d = emb.embed(&e.description);
            let s = Spt::parse_source(&e.code).feature_vec();
            let r = reacc_model.embed_code(&e.code);
            baseline.ids.push(e.id);
            baseline.desc.push(d.clone());
            baseline.spt.push(s.clone());
            baseline.reacc.push(r.clone());
            ix.upsert_embedded(e.id, EntryKind::Pe, d, s, r);
        }

        for (modality, baseline_us, engine_us) in [
            (
                "semantic",
                time_us(|| baseline.rank_dense(&baseline.desc, &qtext)),
                time_us(|| ix.rank_semantic(&qtext, Some(EntryKind::Pe), K)),
            ),
            (
                "spt",
                time_us(|| baseline.rank_spt(&qspt)),
                time_us(|| ix.rank_spt(&qspt, Some(EntryKind::Pe), K)),
            ),
            (
                "reacc",
                time_us(|| baseline.rank_dense(&baseline.reacc, &qcode)),
                time_us(|| ix.rank_reacc(&qcode, Some(EntryKind::Pe), K)),
            ),
        ] {
            eprintln!(
                "  {modality:<9} baseline {baseline_us:>9.1} us  engine {engine_us:>9.1} us  \
                 ({:.1}x)",
                baseline_us / engine_us
            );
            report.results.push(ModalityResult {
                n,
                modality,
                baseline_us,
                engine_us,
                speedup: baseline_us / engine_us,
            });
        }

        // Upsert: overwrite an existing entry (the O(1) slot-map path that
        // used to be an O(n) scan under the write lock).
        let e0 = entries[0];
        let d0 = emb.embed(&e0.description);
        let s0 = Spt::parse_source(&e0.code).feature_vec();
        let r0 = reacc_model.embed_code(&e0.code);
        let upsert_us = time_us(|| {
            ix.upsert_embedded(e0.id, EntryKind::Pe, d0.clone(), s0.clone(), r0.clone())
        });
        eprintln!("  upsert    {upsert_us:>9.2} us");
        report.upserts.push(UpsertResult { n, upsert_us });

        // LSH prefilter on the SPT path.
        let lsh_ix = SearchIndexes::with_spt_prefilter(aroma::LshConfig::default(), 0);
        for (i, e) in entries.iter().enumerate() {
            lsh_ix.upsert_embedded(
                e.id,
                EntryKind::Pe,
                baseline.desc[i].clone(),
                baseline.spt[i].clone(),
                baseline.reacc[i].clone(),
            );
        }
        let exact_us = time_us(|| ix.rank_spt(&qspt, Some(EntryKind::Pe), K));
        let prefiltered_us = time_us(|| lsh_ix.rank_spt(&qspt, Some(EntryKind::Pe), K));
        let (_, stats) = lsh_ix.rank_spt_with_stats(&qspt, Some(EntryKind::Pe), K);
        let candidate_fraction = stats
            .map(|s| s.candidates as f64 / s.indexed.max(1) as f64)
            .unwrap_or(1.0);
        eprintln!(
            "  lsh       exact {exact_us:>9.1} us  prefiltered {prefiltered_us:>9.1} us  \
             (pool {:.1}%)",
            candidate_fraction * 100.0
        );
        report.lsh.push(LshResult {
            n,
            exact_us,
            prefiltered_us,
            candidate_fraction,
        });
    }

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    println!("{json}");
    eprintln!("wrote BENCH_search.json");
}
