//! Quantized two-phase search vs the exact f32 scan, with the numbers
//! written to `BENCH_quant.json`.
//!
//! For each corpus size (10k / 100k / 500k rows by default; pass sizes as
//! CLI arguments to override) this measures the full server-shaped query
//! path — embed the query text, then rank top-k — under three
//! configurations:
//!
//! * **f32** — exact slab scan (`SearchIndexes::new`);
//! * **two-phase** — int8 candidate pass + exact rescore of a `4·k`
//!   window (`IndexOptions { quantized: true, .. }`);
//! * **two-phase+cache** — the same index behind the opt-in
//!   [`QueryCache`]: embedding LRU + generation-scoped result LRU, cycling
//!   a fixed query pool so the steady state is cache hits.
//!
//! Reported per configuration: single-thread QPS and p50/p95/p99 per-query
//! latency; per corpus size: the bytes/row each scan tier streams (the
//! acceptance bar is f32 ≥ 3× i8).
//!
//! The corpus is synthetic (deterministic LCG vectors, L2-normalised) so
//! 500k rows build in seconds; the scan cost it exercises is identical to
//! real embeddings. Expect ~2.5 GB peak RSS at 500k rows.
//!
//! Run with `cargo run --release -p laminar-bench --bin bench_quant`.

use embed::{DenseVec, Embedder, UniXcoderSim, DIM};
use laminar_server::indexes::{
    EntryKind, IndexOptions, SearchIndexes, DEFAULT_RESCORE_WINDOW,
};
use laminar_server::{QueryCache, QueryModality, ResultKey, ResultOp};
use serde::Serialize;
use spt::Spt;
use std::time::Instant;

/// The server's default per-query result bound.
const K: usize = 5;
/// Distinct query texts cycled by every configuration.
const POOL: usize = 64;
/// Timed passes over the pool (after one untimed warmup pass).
const ROUNDS: usize = 3;
/// Result/embedding cache capacity for the cached configuration.
const CACHE_ENTRIES: usize = 256;

#[derive(Serialize)]
struct VariantResult {
    n: usize,
    variant: &'static str,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct TierResult {
    n: usize,
    f32_bytes_per_row: usize,
    i8_bytes_per_row: usize,
    ratio: f64,
}

#[derive(Serialize)]
struct Report {
    k: usize,
    rescore_window: usize,
    cache_entries: usize,
    sizes: Vec<usize>,
    variants: Vec<VariantResult>,
    tiers: Vec<TierResult>,
}

fn lcg_vec(seed: &mut u64) -> DenseVec {
    let mut values = vec![0.0f32; DIM];
    for v in &mut values {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0;
    }
    DenseVec::normalised(values)
}

/// Populate `ix` with `n` synthetic rows in bounded-memory batches.
fn fill(ix: &SearchIndexes, n: usize) {
    let spt = Spt::parse_source("x = 1\n").feature_vec();
    let mut seed = 0x1a317a2_u64 ^ n as u64;
    let mut id = 0u64;
    while (id as usize) < n {
        let batch: Vec<_> = (0..10_000.min(n - id as usize))
            .map(|_| {
                let row = (id, EntryKind::Pe, lcg_vec(&mut seed), spt.clone(), lcg_vec(&mut seed));
                id += 1;
                row
            })
            .collect();
        ix.bulk_upsert_embedded(batch);
    }
}

/// Per-query latencies of `ROUNDS` passes over the query pool (one
/// untimed warmup pass first), and the derived summary row.
fn measure(
    n: usize,
    variant: &'static str,
    queries: &[String],
    mut query_once: impl FnMut(&str) -> usize,
) -> VariantResult {
    for q in queries {
        std::hint::black_box(query_once(q));
    }
    let mut samples = Vec::with_capacity(ROUNDS * queries.len());
    for _ in 0..ROUNDS {
        for q in queries {
            let start = Instant::now();
            std::hint::black_box(query_once(q));
            samples.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| samples[((p / 100.0) * (samples.len() - 1) as f64).round() as usize];
    let result = VariantResult {
        n,
        variant,
        qps: 1e6 / mean,
        p50_us: pct(50.0),
        p95_us: pct(95.0),
        p99_us: pct(99.0),
    };
    eprintln!(
        "  {variant:<15} {:>9.0} qps  p50 {:>8.1} us  p95 {:>8.1} us  p99 {:>8.1} us",
        result.qps, result.p50_us, result.p95_us, result.p99_us
    );
    result
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if args.is_empty() {
            vec![10_000, 100_000, 500_000]
        } else {
            args
        }
    };

    let emb = UniXcoderSim::new();
    let queries: Vec<String> = (0..POOL)
        .map(|i| format!("detect anomalies in sensor stream number {i}"))
        .collect();

    let mut report = Report {
        k: K,
        rescore_window: DEFAULT_RESCORE_WINDOW,
        cache_entries: CACHE_ENTRIES,
        sizes: sizes.clone(),
        variants: Vec::new(),
        tiers: Vec::new(),
    };

    for &n in &sizes {
        eprintln!("n={n}");
        // Exact baseline first, dropped before the quantized index is
        // built, so peak RSS stays one corpus + one tier.
        {
            let exact = SearchIndexes::new();
            eprintln!("  building f32 corpus ...");
            fill(&exact, n);
            report.variants.push(measure(n, "f32", &queries, |q| {
                exact.rank_semantic(&emb.embed(q), None, K).len()
            }));
        }

        let quant = SearchIndexes::with_options(IndexOptions {
            quantized: true,
            ..IndexOptions::default()
        });
        eprintln!("  building quantized corpus ...");
        fill(&quant, n);
        report.variants.push(measure(n, "two-phase", &queries, |q| {
            quant.rank_semantic(&emb.embed(q), None, K).len()
        }));

        // The server's cached query path: embedding LRU in front of the
        // embedder, result LRU scoped to the index snapshot generation.
        let cache = QueryCache::new(CACHE_ENTRIES);
        report
            .variants
            .push(measure(n, "two-phase+cache", &queries, |q| {
                let norm = QueryCache::normalize(q);
                let key = ResultKey {
                    generation: quant.generation(),
                    op: ResultOp::Semantic,
                    kind: None,
                    k: K,
                    score_bits: 0.0f32.to_bits(),
                    query: norm.clone(),
                };
                if let Some(hits) = cache.results(&key) {
                    return hits.len();
                }
                let qvec = match cache.embedding(QueryModality::Text, &norm) {
                    Some(v) => v,
                    None => {
                        let v = emb.embed(&norm);
                        cache.store_embedding(QueryModality::Text, norm, v.clone());
                        v
                    }
                };
                let hits = quant.rank_semantic(&qvec, None, K);
                let len = hits.len();
                cache.store_results(key, hits);
                len
            }));

        let tb = quant.tier_bytes();
        let tier = TierResult {
            n,
            f32_bytes_per_row: tb.desc_f32 / tb.rows.max(1),
            i8_bytes_per_row: tb.desc_i8 / tb.rows.max(1),
            ratio: tb.desc_f32 as f64 / tb.desc_i8.max(1) as f64,
        };
        eprintln!(
            "  tier bytes/row  f32 {}  i8 {}  ({:.1}x smaller)",
            tier.f32_bytes_per_row, tier.i8_bytes_per_row, tier.ratio
        );
        report.tiers.push(tier);
    }

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_quant.json", &json).expect("write BENCH_quant.json");
    println!("{json}");
    eprintln!("wrote BENCH_quant.json");
}
