//! Ingestion-throughput benchmark: rows/sec for the v6 `RegisterBatch`
//! path at increasing batch sizes, against the sequential one-request-
//! per-PE baseline, under both WAL sync policies. Written to
//! `BENCH_ingest.json`.
//!
//! The batched path amortises three costs that the sequential path pays
//! per row: the analysis stage (parse → feature → embed, pipelined
//! across items with rayon), the WAL fsync (one group commit per batch)
//! and the search-index publication (one RCU snapshot swap per batch).
//! Under `--wal-fsync` the group commit dominates, so rows/sec should
//! scale nearly linearly with batch size until the analysis stage
//! saturates the cores.
//!
//! Run with `cargo run --release -p laminar-bench --bin bench_ingest`.
//! Pass a row count to override the default (`bench_ingest 4096`).

use laminar_core::{Laminar, LaminarConfig};
use laminar_server::protocol::{BatchItemWire, PeSubmission};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Timed repetitions per cell; the median elapsed time is reported.
const REPS: usize = 3;

/// Batch sizes swept for the `RegisterBatch` path. `1` prices the fixed
/// per-batch overhead; `2048` (== the default row count) is one giant
/// group commit.
const BATCH_SIZES: &[usize] = &[1, 32, 256, 2048];

#[derive(Serialize)]
struct Cell {
    /// `os-buffered` or `fsync` (the `--wal-fsync` ladder rung).
    sync: &'static str,
    /// `sequential` (one `RegisterPe` request per row) or `batch`.
    mode: &'static str,
    /// Rows per `RegisterBatch` request; 0 for the sequential baseline.
    batch_size: usize,
    rows: usize,
    elapsed_ms: f64,
    rows_per_s: f64,
    wal_bytes: u64,
    fsyncs: u64,
}

#[derive(Serialize)]
struct Report {
    rows: usize,
    cells: Vec<Cell>,
    /// The acceptance headline: batch=256 over batch=1 rows/sec under
    /// per-append fsync, where group commit matters most.
    speedup_fsync_batch256_vs_batch1: f64,
}

fn bench_dir(tag: &str, rep: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laminar-bench-ingest-{tag}-{rep}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One synthetic PE per row. The description is left out so every row
/// exercises the full analysis stage: parse, feature extraction,
/// description generation and both embeddings.
fn row(i: usize) -> PeSubmission {
    PeSubmission {
        name: format!("IngestPe{i}"),
        code: format!(
            "class IngestPe{i}(IterativePE):\n    def _process(self, data):\n        return data + {i}\n"
        ),
        description: None,
    }
}

/// Deploy a durable stack, ingest `rows` PEs — sequentially when
/// `batch_size` is `None`, else in `RegisterBatch` chunks — and return
/// elapsed ms plus the WAL counters.
fn ingest_run(fsync: bool, batch_size: Option<usize>, rows: usize, rep: usize) -> (f64, u64, u64) {
    let tag = match batch_size {
        None => "seq".to_string(),
        Some(b) => format!("b{b}"),
    };
    let dir = bench_dir(&tag, rep);
    let laminar = Laminar::try_deploy(LaminarConfig {
        data_dir: Some(dir.clone()),
        wal_fsync: fsync,
        snapshot_every: 0,
        stock_workflows: false,
        ..LaminarConfig::default()
    })
    .expect("open bench registry");
    let mut client = laminar.client();
    client.register("bench", "pw").expect("register bench user");

    let items: Vec<PeSubmission> = (0..rows).map(row).collect();
    let start = Instant::now();
    match batch_size {
        None => {
            for pe in &items {
                client
                    .register_pe(&pe.name, &pe.code, None)
                    .expect("unique names never collide");
            }
        }
        Some(b) => {
            for chunk in items.chunks(b) {
                let batch: Vec<BatchItemWire> =
                    chunk.iter().cloned().map(BatchItemWire::Pe).collect();
                for outcome in client.register_batch(batch).expect("batch accepted") {
                    assert!(
                        matches!(
                            outcome,
                            laminar_server::protocol::BatchOutcomeWire::Registered { .. }
                        ),
                        "every synthetic row registers"
                    );
                }
            }
        }
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let (wal_bytes, fsyncs) = laminar
        .server()
        .registry()
        .persist_stats()
        .map(|s| (s.wal_bytes, s.fsyncs))
        .unwrap_or((0, 0));
    drop(laminar);
    let _ = std::fs::remove_dir_all(&dir);
    (elapsed_ms, wal_bytes, fsyncs)
}

/// Median-elapsed run of a cell; WAL counters come from the median rep.
fn cell(sync: &'static str, fsync: bool, batch_size: Option<usize>, rows: usize) -> Cell {
    let mut runs: Vec<(f64, u64, u64)> = (0..REPS)
        .map(|rep| ingest_run(fsync, batch_size, rows, rep))
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (elapsed_ms, wal_bytes, fsyncs) = runs[REPS / 2];
    let rows_per_s = rows as f64 / (elapsed_ms / 1e3).max(1e-9);
    Cell {
        sync,
        mode: if batch_size.is_some() { "batch" } else { "sequential" },
        batch_size: batch_size.unwrap_or(0),
        rows,
        elapsed_ms,
        rows_per_s,
        wal_bytes,
        fsyncs,
    }
}

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_048);

    let mut report = Report {
        rows,
        cells: Vec::new(),
        speedup_fsync_batch256_vs_batch1: 0.0,
    };

    println!("# ingestion throughput — {rows} PE rows per cell\n");
    println!(
        "{:<12} {:<12} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "sync", "mode", "batch", "elapsed ms", "rows/s", "wal bytes", "fsyncs"
    );
    for (sync, fsync) in [("os-buffered", false), ("fsync", true)] {
        let mut sweep = vec![cell(sync, fsync, None, rows)];
        for &b in BATCH_SIZES {
            sweep.push(cell(sync, fsync, Some(b), rows));
        }
        for c in sweep {
            println!(
                "{:<12} {:<12} {:>10} {:>12.1} {:>12.0} {:>12} {:>8}",
                c.sync, c.mode, c.batch_size, c.elapsed_ms, c.rows_per_s, c.wal_bytes, c.fsyncs
            );
            report.cells.push(c);
        }
    }

    let speedup = {
        let rate = |batch: usize| {
            report
                .cells
                .iter()
                .find(|c| c.sync == "fsync" && c.batch_size == batch)
                .map(|c| c.rows_per_s)
                .unwrap_or(0.0)
        };
        rate(256) / rate(1).max(1e-9)
    };
    report.speedup_fsync_batch256_vs_batch1 = speedup;
    println!(
        "\nfsync speedup, batch=256 vs batch=1: {:.1}x",
        report.speedup_fsync_batch256_vs_batch1
    );

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    eprintln!("wrote BENCH_ingest.json");
}
