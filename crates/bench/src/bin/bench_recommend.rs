//! The served Aroma recommendation pipeline vs the old flat-scan
//! shortcut, with the numbers written to `BENCH_recommend.json`.
//!
//! For each corpus size (1k / 10k / 100k snippets by default; pass sizes
//! as CLI arguments to override) this measures the server-shaped
//! recommendation path under three configurations:
//!
//! * **flat-scan** — the pre-v9 shortcut: rank every snippet by feature
//!   overlap, keep the top-k (no prune, no cluster, no intersection);
//! * **full-pipeline** — [`AromaEngine::recommend`]: retrieve → prune &
//!   rerank → cluster → intersect, exactly what the server now serves;
//! * **full-pipeline+cache** — the same engine behind the server's
//!   generation-keyed [`QueryCache`] recommendation LRU, cycling a fixed
//!   query pool so the steady state is cache hits.
//!
//! Reported per configuration: single-thread QPS and p50/p95/p99
//! per-query latency.
//!
//! A second section guards the workflow-scope aggregation rewrite: the
//! old O(workflows × hits × pe_ids) `contains` scan vs the inverted
//! hash-map sweep ([`sweep_workflows`]) over 10k synthetic workflows,
//! asserting the two agree bit-for-bit before timing them.
//!
//! Run with `cargo run --release -p laminar-bench --bin bench_recommend`.

use aroma::{AromaConfig, AromaEngine, Snippet};
use laminar_server::protocol::{EmbeddingType, RecommendationHit, SearchScope};
use laminar_server::{sweep_workflows, QueryCache, RecoKey};
use serde::Serialize;
use spt::Spt;
use std::time::Instant;

/// The server's default per-query result bound.
const K: usize = 5;
/// Distinct query snippets cycled by every configuration.
const POOL: usize = 32;
/// Timed passes over the pool (after one untimed warmup pass).
const ROUNDS: usize = 3;
/// Recommendation cache capacity for the cached configuration.
const CACHE_ENTRIES: usize = 256;
/// Workflows in the aggregation-sweep guard.
const SWEEP_WORKFLOWS: usize = 10_000;

#[derive(Serialize)]
struct VariantResult {
    n: usize,
    variant: &'static str,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct SweepResult {
    workflows: usize,
    pe_hits: usize,
    naive_us: f64,
    inverted_us: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    k: usize,
    cache_entries: usize,
    sizes: Vec<usize>,
    variants: Vec<VariantResult>,
    sweep: SweepResult,
}

/// A synthetic PE whose statement mix varies with `i`, so feature
/// vectors differ across the corpus while every snippet parses.
fn synth_snippet(i: usize) -> String {
    let mut body = format!(
        "        total = {}\n        for item in data:\n            total += item * {}\n",
        i % 7,
        i % 5 + 1
    );
    if i % 3 == 0 {
        body.push_str("        if total > 10:\n            return total\n");
    }
    if i % 4 == 0 {
        body.push_str(&format!("        print('pe {} saw', total)\n", i % 11));
    }
    body.push_str("        return None\n");
    format!("class Pe{i}(IterativePE):\n    def _process(self, data):\n{body}")
}

/// Per-query latencies of `ROUNDS` passes over the query pool (one
/// untimed warmup pass first), and the derived summary row.
fn measure(
    n: usize,
    variant: &'static str,
    queries: &[String],
    mut query_once: impl FnMut(&str) -> usize,
) -> VariantResult {
    for q in queries {
        std::hint::black_box(query_once(q));
    }
    let mut samples = Vec::with_capacity(ROUNDS * queries.len());
    for _ in 0..ROUNDS {
        for q in queries {
            let start = Instant::now();
            std::hint::black_box(query_once(q));
            samples.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| samples[((p / 100.0) * (samples.len() - 1) as f64).round() as usize];
    let result = VariantResult {
        n,
        variant,
        qps: 1e6 / mean,
        p50_us: pct(50.0),
        p95_us: pct(95.0),
        p99_us: pct(99.0),
    };
    eprintln!(
        "  {variant:<20} {:>9.0} qps  p50 {:>8.1} us  p95 {:>8.1} us  p99 {:>8.1} us",
        result.qps, result.p50_us, result.p95_us, result.p99_us
    );
    result
}

/// The pre-inversion workflow aggregation, verbatim from the old server.
fn naive_sweep(pe_hits: &[(u64, f32)], workflows: &[(u64, Vec<u64>)]) -> Vec<(u64, f32, usize)> {
    let mut out: Vec<(u64, f32, usize)> = workflows
        .iter()
        .filter_map(|(wf_id, pe_ids)| {
            let matching: Vec<&(u64, f32)> = pe_hits
                .iter()
                .filter(|(id, _)| pe_ids.contains(id))
                .collect();
            if matching.is_empty() {
                return None;
            }
            Some((
                *wf_id,
                matching.iter().map(|(_, s)| s).sum(),
                matching.len(),
            ))
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

fn sweep_guard() -> SweepResult {
    // 10k workflows of 8 members each over a 40k-PE id space; hits cover
    // every 16th PE, so ~2k hits spread across the memberships.
    let workflows: Vec<(u64, Vec<u64>)> = (0..SWEEP_WORKFLOWS as u64)
        .map(|w| {
            (
                100_000 + w,
                (0..8).map(|m| (w * 5 + m * 3) % 40_000).collect(),
            )
        })
        .collect();
    let pe_hits: Vec<(u64, f32)> = (0..40_000u64)
        .filter(|id| id % 16 == 0)
        .map(|id| (id, 6.0 + (id % 97) as f32 * 0.125))
        .collect();
    let run_inverted = || {
        sweep_workflows(
            &pe_hits,
            workflows.iter().map(|(id, pes)| (*id, pes.as_slice())),
        )
    };
    // Equivalence first: the rewrite must agree bit-for-bit.
    let naive = naive_sweep(&pe_hits, &workflows);
    let inverted = run_inverted();
    assert_eq!(naive.len(), inverted.len(), "sweep results diverge");
    for (a, b) in naive.iter().zip(&inverted) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "wf {} score diverges", a.0);
        assert_eq!(a.2, b.2);
    }
    let time = |f: &mut dyn FnMut() -> usize| {
        let mut best = f64::MAX;
        for _ in 0..ROUNDS {
            let start = Instant::now();
            std::hint::black_box(f());
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        best
    };
    let naive_us = time(&mut || naive_sweep(&pe_hits, &workflows).len());
    let inverted_us = time(&mut || run_inverted().len());
    let result = SweepResult {
        workflows: SWEEP_WORKFLOWS,
        pe_hits: pe_hits.len(),
        naive_us,
        inverted_us,
        speedup: naive_us / inverted_us.max(1e-9),
    };
    eprintln!(
        "workflow sweep ({} workflows, {} hits): naive {:.0} us, inverted {:.0} us ({:.1}x)",
        result.workflows, result.pe_hits, result.naive_us, result.inverted_us, result.speedup
    );
    result
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1_000, 10_000, 100_000]
        } else {
            args
        }
    };

    let mut report = Report {
        k: K,
        cache_entries: CACHE_ENTRIES,
        sizes: sizes.clone(),
        variants: Vec::new(),
        sweep: sweep_guard(),
    };

    for &n in &sizes {
        eprintln!("n={n}");
        eprintln!("  building corpus ...");
        let mut engine = AromaEngine::new(AromaConfig {
            max_recommendations: K,
            ..AromaConfig::default()
        });
        engine.add_batch(
            (0..n)
                .map(|i| Snippet::new(i as u64, format!("Pe{i}"), synth_snippet(i)))
                .collect(),
        );
        // Queries are corpus members, evenly spread, so retrieval always
        // has strong matches to prune and cluster.
        let queries: Vec<String> = (0..POOL)
            .map(|j| synth_snippet(j * n.max(POOL) / POOL))
            .collect();

        report.variants.push(measure(n, "flat-scan", &queries, |q| {
            let qvec = Spt::parse_source(q).feature_vec();
            engine.index().search_vec(&qvec, K).len()
        }));

        report
            .variants
            .push(measure(n, "full-pipeline", &queries, |q| {
                engine.recommend(q).len()
            }));

        // The server's cached path: full answers keyed by snippet text
        // and both snapshot generations.
        let cache = QueryCache::new(CACHE_ENTRIES);
        report
            .variants
            .push(measure(n, "full-pipeline+cache", &queries, |q| {
                let key = RecoKey {
                    generation: 0,
                    reco_generation: 1,
                    scope: SearchScope::Pe,
                    embedding: EmbeddingType::Spt,
                    k: K,
                    snippet: QueryCache::normalize(q),
                };
                if let Some(hits) = cache.recommendations(&key) {
                    return hits.len();
                }
                let hits: Vec<RecommendationHit> = engine
                    .recommend(q)
                    .into_iter()
                    .map(|r| RecommendationHit {
                        id: r.seed_id,
                        name: r.seed_name,
                        description: String::new(),
                        score: r.retrieval_score,
                        occurrences: 1,
                        similar_code: String::new(),
                        cluster_size: r.cluster_size,
                        common_core: r.code,
                    })
                    .collect();
                let len = hits.len();
                cache.store_recommendations(key, hits);
                len
            }));
    }

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_recommend.json", &json).expect("write BENCH_recommend.json");
    println!("{json}");
    eprintln!("wrote BENCH_recommend.json");
}
