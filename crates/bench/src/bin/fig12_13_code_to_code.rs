//! E3/E4 — regenerate **Fig. 12** (Aroma) and **Fig. 13** (ReACC-py):
//! precision-recall for code-to-code search at 0 / 50 / 75 / 90 % of the
//! query snippet dropped (paper §VII-D).
//!
//! Expected shape: Aroma holds precision with full and partial snippets;
//! ReACC declines steeply as code is omitted. Paper best F1: Aroma 0.63,
//! ReACC 0.24.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin fig12_13_code_to_code
//! ```

use csn::best_f1;
use laminar_bench::{
    code_to_code_eval, corpus_from_args, render_curve, CodeRetriever, OMISSION_LEVELS,
};

fn main() {
    let corpus = corpus_from_args();
    eprintln!(
        "corpus: {} PEs across {} families",
        corpus.len(),
        corpus.family_keys.len()
    );

    let mut summary = Vec::new();
    for (retriever, figure, paper_f1) in [
        (CodeRetriever::Aroma, "Fig. 12 — Aroma", 0.63),
        (CodeRetriever::Reacc, "Fig. 13 — ReACC-py retriever", 0.24),
    ] {
        let mut max_f1: f64 = 0.0;
        for &omission in OMISSION_LEVELS {
            let curve = code_to_code_eval(&corpus, retriever, omission);
            println!(
                "{}",
                render_curve(
                    &format!("{figure} @ {:.0}% code dropped", omission * 100.0),
                    &curve
                )
            );
            max_f1 = max_f1.max(best_f1(&curve).0);
        }
        summary.push(format!(
            "{figure}: measured max F1 = {max_f1:.4} (paper: {paper_f1})"
        ));
    }
    println!("# Summary");
    for line in summary {
        println!("{line}");
    }
}
