//! E1 — regenerate **Fig. 10**: description generation from the
//! `_process()` method only (Laminar 1.0) vs the full PE class
//! (Laminar 2.0), paper §VII-B.
//!
//! Fig. 10 is qualitative (two screenshots of generated text); the
//! reproduction shows sample descriptions side by side *and* quantifies
//! the gap with keyword recall against the ground-truth family
//! descriptions.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin fig10_descriptions
//! ```

use embed::{CodeT5Sim, DescriptionContext};
use laminar_bench::{description_quality, standard_corpus};

fn main() {
    let corpus = standard_corpus();

    // Qualitative half: the paper's own IsPrime example plus corpus samples.
    let isprime = "class IsPrime(IterativePE):\n    \"\"\"Checks whether a given number is prime and returns the number if it is.\"\"\"\n    def _process(self, num):\n        if all(num % i != 0 for i in range(2, num)):\n            return num\n";
    let full = CodeT5Sim::new(DescriptionContext::FullClass);
    let proc = CodeT5Sim::new(DescriptionContext::ProcessMethodOnly);

    println!("# Fig. 10 — descriptions generated from different code contexts\n");
    println!("## IsPrime (paper Listing 1)");
    println!("  (a) _process() only : {}", proc.describe_pe(isprime));
    println!("  (b) full class      : {}\n", full.describe_pe(isprime));

    for entry in corpus.entries.iter().step_by(97).take(4) {
        println!("## {}", entry.name);
        println!("  ground truth        : {}", entry.description);
        println!("  (a) _process() only : {}", proc.describe_pe(&entry.code));
        println!("  (b) full class      : {}\n", full.describe_pe(&entry.code));
    }

    // Quantitative half.
    let q_full = description_quality(&corpus, DescriptionContext::FullClass);
    let q_proc = description_quality(&corpus, DescriptionContext::ProcessMethodOnly);
    println!("# Keyword recall vs ground-truth descriptions ({} PEs)", corpus.len());
    println!("  _process() only (Laminar 1.0): {q_proc:.4}");
    println!("  full class      (Laminar 2.0): {q_full:.4}");
    println!(
        "  improvement: {:+.1}%",
        (q_full / q_proc.max(1e-9) - 1.0) * 100.0
    );
}
