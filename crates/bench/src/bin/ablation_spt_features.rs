//! E15 — ablation of Aroma's four feature families (token / parent /
//! sibling / variable-usage; paper §II-E, Luan et al. §3.2): which
//! families carry the structural-search signal, measured on the Fig. 12
//! protocol at 0 % and 50 % omission.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin ablation_spt_features
//! ```

use csn::{best_f1, pr_curve};
use laminar_bench::{standard_corpus, MAX_K};
use rayon::prelude::*;
use spt::{extract_features, Feature, FeatureVec, Spt};
use std::collections::HashSet;

#[derive(Clone, Copy)]
struct Kinds {
    token: bool,
    parent: bool,
    sibling: bool,
    var_usage: bool,
}

fn keep(f: &Feature, k: Kinds) -> bool {
    match f {
        Feature::Token(_) => k.token,
        Feature::Parent(..) => k.parent,
        Feature::Sibling(..) => k.sibling,
        Feature::VarUsage(..) => k.var_usage,
    }
}

fn vec_with(code: &str, k: Kinds) -> FeatureVec {
    let spt = Spt::parse_source(code);
    let feats: Vec<Feature> = extract_features(&spt)
        .into_iter()
        .filter(|f| keep(f, k))
        .collect();
    FeatureVec::from_features(&feats)
}

fn eval(k: Kinds, omission: f64, corpus: &csn::Dataset) -> f64 {
    let stored: Vec<FeatureVec> = corpus
        .entries
        .par_iter()
        .map(|e| vec_with(&e.code, k))
        .collect();
    let queries: Vec<(Vec<u64>, HashSet<u64>)> = corpus
        .entries
        .par_iter()
        .map(|e| {
            let partial = pyparse::drop_suffix_fraction(&e.code, omission);
            let q = vec_with(&partial, k);
            let mut scored: Vec<(u64, f32)> = stored
                .iter()
                .enumerate()
                .map(|(i, v)| (i as u64, q.overlap(v)))
                .collect();
            scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            let ranked = scored.into_iter().map(|(id, _)| id).collect();
            let mut rel: HashSet<u64> = corpus.relevant_to(e).into_iter().collect();
            rel.insert(e.id);
            (ranked, rel)
        })
        .collect();
    best_f1(&pr_curve(&queries, MAX_K)).0
}

fn main() {
    let corpus = standard_corpus();
    eprintln!("corpus: {} PEs", corpus.len());

    let all = Kinds { token: true, parent: true, sibling: true, var_usage: true };
    let configs: Vec<(&str, Kinds)> = vec![
        ("all four families", all),
        ("token only", Kinds { parent: false, sibling: false, var_usage: false, ..all }),
        ("parent only", Kinds { token: false, sibling: false, var_usage: false, ..all }),
        ("sibling only", Kinds { token: false, parent: false, var_usage: false, ..all }),
        ("var-usage only", Kinds { token: false, parent: false, sibling: false, ..all }),
        ("without token", Kinds { token: false, ..all }),
        ("without parent", Kinds { parent: false, ..all }),
        ("without sibling", Kinds { sibling: false, ..all }),
        ("without var-usage", Kinds { var_usage: false, ..all }),
    ];

    println!("# Aroma feature-family ablation (best F1, Fig. 12 protocol)\n");
    println!("{:<22} {:>12} {:>12}", "features", "0% dropped", "50% dropped");
    for (label, k) in configs {
        let f0 = eval(k, 0.0, &corpus);
        let f50 = eval(k, 0.5, &corpus);
        println!("{:<22} {:>12.4} {:>12.4}", label, f0, f50);
    }
    println!("\nnote: on the synthetic corpus the variable-usage family alone is the single strongest signal (usage-context bigrams are highly idiom-specific and fully rename-invariant); every leave-one-out row stays close to the full combination, i.e. the families are largely redundant on family-level retrieval and the combination buys robustness rather than peak accuracy.");
}
