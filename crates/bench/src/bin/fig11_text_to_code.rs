//! E2 — regenerate **Fig. 11**: precision-recall for text-to-code search.
//!
//! Protocol (paper §VII-C): every corpus PE gets a CodeT5-generated
//! description embedded with UniXcoder; queries are the CodeSearchNet-style
//! natural-language descriptions; ranking is by cosine similarity.
//! The paper reports a best F1 of **0.61**.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin fig11_text_to_code
//! ```

use embed::DescriptionContext;
use laminar_bench::{corpus_from_args, render_curve, text_to_code_eval};

fn main() {
    let corpus = corpus_from_args();
    eprintln!(
        "corpus: {} PEs across {} families",
        corpus.len(),
        corpus.family_keys.len()
    );
    let curve = text_to_code_eval(&corpus, DescriptionContext::FullClass);
    println!(
        "{}",
        render_curve("Fig. 11 — text-to-code search (paper best F1: 0.61)", &curve)
    );
}
