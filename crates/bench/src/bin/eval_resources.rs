//! E9 — the §IV-F resource-management claim: bytes on the wire for E
//! repeated executions of a workflow needing R resources, Laminar 1.0
//! (inline resend every run) vs Laminar 2.0 (content-hash cache +
//! multipart upload of missing files only).
//!
//! Expected shape: 2.0 transmits each resource once; 1.0 transmits
//! R×S bytes per execution, so the ratio grows linearly with E.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin eval_resources
//! ```

use laminar_core::{Laminar, LaminarConfig};
use laminar_server::protocol::content_hash;
use laminar_server::{Request, Response};
use laminar_server::protocol::{FaultPolicyWire, Ident, ResourceRefWire, RunInputWire, RunMode};

const RESOURCE_SIZE: usize = 256 * 1024; // 256 KiB per resource
const N_RESOURCES: usize = 3;

fn setup() -> (std::sync::Arc<laminar_server::LaminarServer>, u64) {
    let laminar = Laminar::deploy(LaminarConfig {
        prewarmed: 2,
        ..LaminarConfig::default()
    });
    let server = laminar.server();
    let token = match server
        .handle(Request::RegisterUser {
            username: "bench".into(),
            password: "pw".into(),
        })
        .value()
    {
        Response::Token(t) => t,
        other => panic!("{other:?}"),
    };
    server
        .handle(Request::RegisterWorkflow {
            token,
            name: "doubler_wf".into(),
            code: String::new(),
            description: Some("doubles".into()),
            pes: vec![],
        })
        .value();
    (server, token)
}

fn resources() -> Vec<(String, Vec<u8>)> {
    (0..N_RESOURCES)
        .map(|i| {
            (
                format!("input_{i}.bin"),
                vec![i as u8 + 1; RESOURCE_SIZE],
            )
        })
        .collect()
}

fn main() {
    println!("# §IV-F — resource transmission: Laminar 1.0 (inline) vs 2.0 (cached)\n");
    println!(
        "{:>6}  {:>16}  {:>16}  {:>8}",
        "runs", "1.0 bytes sent", "2.0 bytes sent", "ratio"
    );
    for executions in [1usize, 2, 5, 10, 20] {
        // ---- Laminar 1.0 baseline: everything inline, every run.
        let (server_v1, token1) = setup();
        for _ in 0..executions {
            let reply = server_v1.handle(Request::RunWithInlineResources {
                token: token1,
                ident: Ident::Name("doubler_wf".into()),
                input: RunInputWire::Iterations(2),
                mode: RunMode::Sequential,
                resources: resources(),
            });
            let (_, _, _, ok) = reply.drain();
            assert!(ok);
        }
        let v1_bytes = server_v1.resources().stats().bytes_received;

        // ---- Laminar 2.0: references + upload-on-miss.
        let (server_v2, token2) = setup();
        for _ in 0..executions {
            let refs: Vec<ResourceRefWire> = resources()
                .iter()
                .map(|(n, b)| ResourceRefWire {
                    name: n.clone(),
                    content_hash: content_hash(b),
                })
                .collect();
            let run = |srv: &laminar_server::LaminarServer| {
                srv.handle(Request::Run {
                    token: token2,
                    ident: Ident::Name("doubler_wf".into()),
                    input: RunInputWire::Iterations(2),
                    mode: RunMode::Sequential,
                    streaming: true,
                    verbose: false,
                    resources: refs.clone(),
                    fault: FaultPolicyWire::default(),
                    task_timeout_ms: None,
                })
            };
            match run(&server_v2) {
                laminar_server::Reply::Value(Response::NeedResources(missing)) => {
                    for name in missing {
                        let bytes = resources()
                            .into_iter()
                            .find(|(n, _)| *n == name)
                            .unwrap()
                            .1;
                        server_v2
                            .handle(Request::UploadResource {
                                token: token2,
                                name,
                                bytes,
                            })
                            .value();
                    }
                    let (_, _, _, ok) = run(&server_v2).drain();
                    assert!(ok);
                }
                reply => {
                    let (_, _, _, ok) = reply.drain();
                    assert!(ok);
                }
            }
        }
        let v2_bytes = server_v2.resources().stats().bytes_received;
        println!(
            "{:>6}  {:>16}  {:>16}  {:>7.1}x",
            executions,
            v1_bytes,
            v2_bytes,
            v1_bytes as f64 / v2_bytes.max(1) as f64
        );
    }
    println!(
        "\nshape check: 2.0 bytes stay constant ({} KiB total); the ratio grows ≈ linearly with runs.",
        N_RESOURCES * RESOURCE_SIZE / 1024
    );
}
