//! E12 — ablation: Laminar 2.0's simplified cosine/overlap-over-SPT search
//! (paper §VI-A: "without the need for complex clustering or reranking
//! steps") vs the full Aroma pipeline with prune-and-rerank, at each
//! omission level.
//!
//! This quantifies what the simplification gives up (or doesn't) — the
//! design choice the paper asserts but does not measure.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin ablation_aroma_variants
//! ```

use aroma::prune::{granulated_vec, prune_and_rerank};
use csn::{best_f1, pr_curve};
use laminar_bench::{code_to_code_eval, standard_corpus, CodeRetriever, MAX_K, OMISSION_LEVELS};
use rayon::prelude::*;
use spt::{FeatureVec, Spt};
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    let corpus = standard_corpus();
    eprintln!("corpus: {} PEs", corpus.len());

    println!("# Ablation — simplified (Laminar 2.0) vs full Aroma (retrieve→prune→rerank)\n");
    println!(
        "{:>10}  {:>16}  {:>16}  {:>14}  {:>14}",
        "omission", "simplified F1", "full-aroma F1", "simplified ms", "full ms"
    );

    for &omission in OMISSION_LEVELS {
        // Simplified: straight overlap ranking (what the server ships).
        let t0 = Instant::now();
        let simple_curve = code_to_code_eval(&corpus, CodeRetriever::Aroma, omission);
        let t_simple = t0.elapsed();
        let simple_f1 = best_f1(&simple_curve).0;

        // Full pipeline: retrieve top-50 by overlap, prune & rerank each
        // candidate against the granulated query, rank by rerank score.
        let stored: Vec<FeatureVec> = corpus
            .entries
            .par_iter()
            .map(|e| Spt::parse_source(&e.code).feature_vec())
            .collect();
        let t1 = Instant::now();
        let queries: Vec<(Vec<u64>, HashSet<u64>)> = corpus
            .entries
            .par_iter()
            .map(|e| {
                let partial = pyparse::drop_suffix_fraction(&e.code, omission);
                let qvec = Spt::parse_source(&partial).feature_vec();
                // Stage 1: light-weight retrieval.
                let mut scored: Vec<(u64, f32)> = stored
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i as u64, qvec.overlap(v)))
                    .collect();
                scored.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0))
                });
                let top: Vec<u64> = scored.iter().take(50).map(|(id, _)| *id).collect();
                // Stage 2: prune & rerank in granule space.
                let gq = granulated_vec(&partial);
                let mut reranked: Vec<(u64, f32)> = top
                    .iter()
                    .map(|&id| {
                        let pruned =
                            prune_and_rerank(id, &corpus.entries[id as usize].code, &gq);
                        (id, pruned.rerank_score)
                    })
                    .collect();
                reranked.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0))
                });
                let ranked: Vec<u64> = reranked.into_iter().map(|(id, _)| id).collect();
                let mut relevant: HashSet<u64> = corpus.relevant_to(e).into_iter().collect();
                relevant.insert(e.id);
                (ranked, relevant)
            })
            .collect();
        let t_full = t1.elapsed();
        let full_f1 = best_f1(&pr_curve(&queries, MAX_K)).0;

        println!(
            "{:>9.0}%  {:>16.4}  {:>16.4}  {:>14.1}  {:>14.1}",
            omission * 100.0,
            simple_f1,
            full_f1,
            t_simple.as_secs_f64() * 1e3,
            t_full.as_secs_f64() * 1e3
        );
    }
    println!("\nshape check: the simplified variant should stay near the full pipeline's F1 at a fraction of its cost — the §VI-A design claim.");
}
