//! E13 — ablation coupling Fig. 10 to Fig. 11: how the description-
//! generation context (process-only vs full class) changes downstream
//! text-to-code search accuracy. This is the paper's implied causal chain
//! ("Improved automated description generation …, boosting search
//! accuracy") made measurable.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin ablation_description_context
//! ```

use csn::best_f1;
use embed::DescriptionContext;
use laminar_bench::{description_quality, standard_corpus, text_to_code_eval};

fn main() {
    let corpus = standard_corpus();
    eprintln!("corpus: {} PEs", corpus.len());

    println!("# Ablation — description context → search accuracy\n");
    println!(
        "{:<28} {:>16} {:>16}",
        "context", "keyword recall", "search best F1"
    );
    for (label, ctx) in [
        ("_process() only (v1.0)", DescriptionContext::ProcessMethodOnly),
        ("full class (v2.0)", DescriptionContext::FullClass),
    ] {
        let recall = description_quality(&corpus, ctx);
        let f1 = best_f1(&text_to_code_eval(&corpus, ctx)).0;
        println!("{:<28} {:>16.4} {:>16.4}", label, recall, f1);
    }
    println!("\nshape check: the full-class row must dominate both columns.");
}
