//! Supervision-overhead benchmark: enactment throughput per mapping at
//! 0% / 1% / 10% injected fault rates, written to `BENCH_faults.json`.
//!
//! Each (mapping, fault rate) cell runs the same three-PE pipeline under
//! `FaultPolicy::DeadLetter` with permanently-faulty datums injected by
//! the seeded chaos harness, so the run always completes: surviving
//! datums become output lines, faulty ones land in the dead-letter queue
//! after `max_attempts` tries. The 0% row is the supervised-but-clean
//! baseline — its gap to unsupervised enactment is the price of
//! `catch_unwind` isolation; the 1%/10% rows show how retry + DLQ traffic
//! scales.
//!
//! Run with `cargo run --release -p laminar-bench --bin bench_faults`.
//! Pass an item count to override the default (`bench_faults 20000`).

use d4py::{
    inject_chaos, run_with_options, ChaosConfig, ConsumerPE, Context, Data, DynamicConfig,
    FaultPolicy, IterativePE, Mapping, OutputSink, ProducerPE, RunInput, RunOptions, RunResult,
    WorkflowGraph, INPUT, OUTPUT,
};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 42;
const MAX_ATTEMPTS: u32 = 2;
/// Timed repetitions per cell; the median elapsed time is reported.
const REPS: usize = 3;

#[derive(Serialize)]
struct FaultRateResult {
    mapping: &'static str,
    fault_rate: f64,
    items: u64,
    elapsed_ms: f64,
    throughput_items_per_s: f64,
    lines: usize,
    dead_letters: usize,
    faults: u64,
    retries: u64,
}

#[derive(Serialize)]
struct Report {
    items: u64,
    seed: u64,
    policy: String,
    results: Vec<FaultRateResult>,
}

/// Src (0..n) → Worker (doubles; chaos-wrapped) → Out. One line per
/// surviving datum, one DLQ entry per permanently-faulty one.
fn graph(rate: f64) -> WorkflowGraph {
    let mut g = WorkflowGraph::new("bench_faults_wf");
    let src = g.add(ProducerPE::new("Src", |i| Some(Data::from(i as i64))));
    let worker = g.add(IterativePE::new("Worker", |d: Data| {
        let n = d.as_int()?;
        Some(Data::from(n.wrapping_mul(2)))
    }));
    let out = g.add(ConsumerPE::new("Out", |d: Data, ctx: &mut Context<'_>| {
        ctx.log(format!("out {d}"));
    }));
    g.connect(src, OUTPUT, worker, INPUT).expect("ports exist");
    g.connect(worker, OUTPUT, out, INPUT).expect("ports exist");
    if rate > 0.0 {
        inject_chaos(
            &mut g,
            worker,
            ChaosConfig {
                seed: SEED,
                panic_rate: rate,
                fail_attempts: 0,
                ..ChaosConfig::default()
            },
        );
    }
    g
}

fn enact(rate: f64, mapping: &Mapping, items: u64) -> (f64, RunResult) {
    let g = graph(rate);
    let options = RunOptions {
        fault_policy: FaultPolicy::DeadLetter {
            max_attempts: MAX_ATTEMPTS,
        },
        ..RunOptions::default()
    };
    let start = Instant::now();
    let res = run_with_options(
        &g,
        RunInput::Iterations(items),
        mapping,
        OutputSink::new(),
        &options,
    )
    .expect("dead-letter enactment must not abort");
    (start.elapsed().as_secs_f64() * 1e3, res)
}

fn main() {
    let items: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    let mappings: Vec<(&'static str, Mapping)> = vec![
        ("simple", Mapping::Simple),
        ("multi", Mapping::Multi { processes: 3 }),
        ("dynamic", Mapping::Dynamic(DynamicConfig::default())),
    ];
    let rates = [0.0, 0.01, 0.10];

    let mut report = Report {
        items,
        seed: SEED,
        policy: format!("dead-letter(max_attempts={MAX_ATTEMPTS})"),
        results: Vec::new(),
    };

    println!("# fault-rate sweep — {items} items, seed {SEED}\n");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>8} {:>7} {:>8}",
        "mapping", "rate", "elapsed ms", "items/s", "lines", "dlq", "retries"
    );
    for (name, mapping) in &mappings {
        for &rate in &rates {
            // Median of REPS timed runs; faults are seeded, so every rep
            // does the identical work.
            let mut runs: Vec<(f64, RunResult)> =
                (0..REPS).map(|_| enact(rate, mapping, items)).collect();
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (elapsed_ms, res) = runs.swap_remove(REPS / 2);
            let throughput = items as f64 / (elapsed_ms / 1e3).max(1e-9);
            println!(
                "{:<8} {:>5.0}% {:>12.1} {:>12.0} {:>8} {:>7} {:>8}",
                name,
                rate * 100.0,
                elapsed_ms,
                throughput,
                res.lines().len(),
                res.dead_letters.len(),
                res.fault_stats.retries,
            );
            report.results.push(FaultRateResult {
                mapping: name,
                fault_rate: rate,
                items,
                elapsed_ms,
                throughput_items_per_s: throughput,
                lines: res.lines().len(),
                dead_letters: res.dead_letters.len(),
                faults: res.fault_stats.faults,
                retries: res.fault_stats.retries,
            });
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    eprintln!("wrote BENCH_faults.json");
}
