//! E5 — regenerate **Table I**: the client function inventory, with a live
//! smoke-check that every function actually works against a deployed stack.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin table1_client_functions
//! ```

use laminar_core::{EmbeddingType, Laminar, LaminarConfig, SearchScope};

fn main() {
    let laminar = Laminar::deploy(LaminarConfig::default());
    let mut client = laminar.client();

    // Exercise every Table I function in dependency order, recording status.
    let mut rows: Vec<(&str, &str, &str, bool)> = Vec::new();
    let mut ok_reg = client.register("table1_user", "pw").is_ok();
    rows.push(("register", "Registers a new user", "", ok_reg));
    ok_reg &= client.login("table1_user", "pw").is_ok();
    rows.push(("login", "Logs in an existing user", "", ok_reg));

    let wf = client
        .register_workflow("isprime_wf", laminar_core::ISPRIME_WORKFLOW_SOURCE)
        .ok();
    rows.push((
        "register_Workflow",
        "Registers a new workflow",
        "**",
        wf.is_some(),
    ));
    let pe_id = client
        .register_pe(
            "WordCounter",
            "class WordCounter(IterativePE):\n    def _process(self, text):\n        return len(text.split())\n",
            None,
        )
        .ok();
    rows.push(("register_PE", "Registers a new PE", "*", pe_id.is_some()));

    let wf = wf.expect("workflow registered");
    let pe_id = pe_id.expect("pe registered");
    rows.push((
        "get_PE",
        "Retrieves a PE by name or ID",
        "",
        client.get_pe(pe_id).is_ok() && client.get_pe("WordCounter").is_ok(),
    ));
    rows.push((
        "get_Workflow",
        "Retrieves a workflow by name or ID",
        "",
        client.get_workflow(wf.workflow.1).is_ok(),
    ));
    rows.push((
        "get_PEs_By_Workflow",
        "Retrieves all PEs associated with a workflow",
        "",
        client
            .get_pes_by_workflow(wf.workflow.1)
            .map(|p| p.len() == 3)
            .unwrap_or(false),
    ));
    rows.push((
        "get_Registry",
        "Retrieves all items in the registry",
        "",
        client.get_registry().map(|(p, w)| p.len() == 4 && w.len() == 1).unwrap_or(false),
    ));
    rows.push((
        "describe",
        "Provides a description of a PE or workflow",
        "",
        client
            .describe(SearchScope::Pe, "IsPrime")
            .map(|d| d.contains("class IsPrime"))
            .unwrap_or(false),
    ));
    rows.push((
        "update_PE_Description",
        "Updates a PE's description",
        "*",
        client.update_pe_description(pe_id, "counts words in a text").is_ok(),
    ));
    rows.push((
        "update_Workflow_Description",
        "Updates a workflow's description",
        "*",
        client
            .update_workflow_description(wf.workflow.1, "prime number pipeline")
            .is_ok(),
    ));
    rows.push((
        "search_Registry_Literal",
        "Performs a literal search",
        "**",
        client
            .search_registry_literal(SearchScope::Both, "prime")
            .map(|(p, w)| !p.is_empty() && !w.is_empty())
            .unwrap_or(false),
    ));
    rows.push((
        "search_Registry_Semantic",
        "Performs a semantic search",
        "**",
        client
            .search_registry_semantic(SearchScope::Pe, "count the words in a text")
            .map(|h| !h.is_empty())
            .unwrap_or(false),
    ));
    rows.push((
        "code_Recommendation",
        "Performs a code recommendation",
        "*",
        client
            .code_recommendation(SearchScope::Pe, "random.randint(1, 1000)", EmbeddingType::Spt)
            .map(|h| !h.is_empty())
            .unwrap_or(false),
    ));
    rows.push((
        "run",
        "Executes a workflow sequentially",
        "**",
        client.run("isprime_wf", 10).map(|o| o.ok).unwrap_or(false),
    ));
    rows.push((
        "run_multiprocess",
        "Executes a workflow in parallel",
        "*",
        client
            .run_multiprocess("isprime_wf", 10, 9)
            .map(|o| o.ok)
            .unwrap_or(false),
    ));
    rows.push((
        "run_dynamic",
        "Executes a workflow using REDIS",
        "*",
        client.run_dynamic("isprime_wf", 10).map(|o| o.ok).unwrap_or(false),
    ));
    rows.push((
        "remove_PE",
        "Removes an existing PE",
        "",
        client.remove_pe(pe_id).is_ok(),
    ));
    rows.push((
        "remove_Workflow",
        "Removes an existing workflow",
        "",
        client.remove_workflow(wf.workflow.1).is_ok(),
    ));
    rows.push((
        "remove_All",
        "Removes all PEs and workflows",
        "*",
        client.remove_all().is_ok(),
    ));

    println!("# Table I — client functions (*new, **improved in 2.0) with live status\n");
    println!("{:<28} {:<48} {:<4} Works", "Function", "Description", "Mark");
    let mut all_ok = true;
    for (name, desc, mark, ok) in &rows {
        println!("{:<28} {:<48} {:<4} {}", name, desc, mark, if *ok { "yes" } else { "NO" });
        all_ok &= ok;
    }
    println!(
        "\n{} / {} client functions verified live.",
        rows.iter().filter(|r| r.3).count(),
        rows.len()
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
